//! Accuracy and determinism properties of the shared scalar math kernels.
//!
//! [`fast_tanh`] is the engine-wide activation (both the interpreted
//! graph and the compiled-tape replay route through it), so its contract
//! is pinned here independently of any flow test: tight relative error
//! against libm, exact odd symmetry, saturation, special-value behavior
//! matching libm, and monotonicity where the slope is meaningful.

use nofis_parallel::math::{fast_tanh, tanh};

/// Deterministic LCG over a value range (no RNG dependency needed).
fn lcg_stream(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            lo + u * (hi - lo)
        })
        .collect()
}

#[test]
fn dense_sweep_matches_libm_to_5e13_relative() {
    // Uniform grid across every branch (rational, exp-based, saturated)
    // plus random draws concentrated in the training-relevant range.
    let mut xs: Vec<f64> = (0..200_001)
        .map(|i| -25.0 + i as f64 * (50.0 / 200_000.0))
        .collect();
    xs.extend(lcg_stream(7, 100_000, -6.0, 6.0));
    xs.extend(lcg_stream(11, 10_000, -0.7, 0.7));
    let mut worst = 0.0f64;
    for &x in &xs {
        let got = fast_tanh(x);
        let want = x.tanh();
        let denom = want.abs().max(f64::MIN_POSITIVE);
        let rel = (got - want).abs() / denom;
        if rel > worst {
            worst = rel;
        }
        assert!(
            rel < 5e-13,
            "fast_tanh({x:e}) = {got:e}, libm = {want:e}, rel err {rel:e}"
        );
    }
    // The implementation targets ~2e-15; 5e-13 leaves margin for platform
    // libm differences in the *reference* values, not in fast_tanh.
    assert!(worst < 5e-13, "worst rel err {worst:e}");
}

#[test]
fn odd_symmetry_is_bitwise_exact() {
    for x in lcg_stream(13, 50_000, 0.0, 25.0) {
        let p = fast_tanh(x);
        let n = fast_tanh(-x);
        assert_eq!(p.to_bits(), (-n).to_bits(), "symmetry broke at x = {x:e}");
    }
}

#[test]
fn range_and_saturation() {
    for x in lcg_stream(17, 50_000, -40.0, 40.0) {
        let y = fast_tanh(x);
        assert!(
            (-1.0..=1.0).contains(&y),
            "fast_tanh({x:e}) = {y:e} out of range"
        );
    }
    for x in [20.0, 25.0, 100.0, 1e300] {
        assert_eq!(fast_tanh(x), 1.0);
        assert_eq!(fast_tanh(-x), -1.0);
    }
}

#[test]
fn special_values_match_libm() {
    assert!(fast_tanh(f64::NAN).is_nan());
    assert_eq!(fast_tanh(f64::INFINITY), 1.0);
    assert_eq!(fast_tanh(f64::NEG_INFINITY), -1.0);
    // Signed zero is preserved bitwise, like libm.
    assert_eq!(fast_tanh(0.0).to_bits(), 0.0f64.to_bits());
    assert_eq!(fast_tanh(-0.0).to_bits(), (-0.0f64).to_bits());
}

#[test]
fn monotone_where_slope_dominates() {
    // Step 1e-3 over [-3, 3]: the true increment (≥ ~1e-5) dwarfs the
    // ~1e-15 approximation error, so any non-monotonic wiggle is a bug.
    let mut prev = fast_tanh(-3.0);
    let mut x = -3.0;
    while x < 3.0 {
        x += 1e-3;
        let y = fast_tanh(x);
        assert!(y > prev, "not increasing at x = {x:e}");
        prev = y;
    }
}

#[test]
fn dispatcher_uses_fast_path_without_reference_env() {
    // The test process does not set NOFIS_REFERENCE_MATH, so the
    // dispatcher must resolve to the fast kernel, bitwise.
    for x in lcg_stream(19, 10_000, -10.0, 10.0) {
        assert_eq!(tanh(x).to_bits(), fast_tanh(x).to_bits());
    }
}

#[test]
fn branch_seams_are_smooth() {
    // No visible step at the 0.625 rational/exp seam or the 20.0
    // saturation boundary (tanh(20) rounds to 1.0 in f64 anyway).
    for seam in [0.625, 20.0] {
        let below = fast_tanh(seam - 1e-9);
        let at = fast_tanh(seam);
        assert!(
            (at - below).abs() < 1e-8,
            "seam at {seam}: {below:e} vs {at:e}"
        );
    }
    assert_eq!(fast_tanh(20.0), 1.0);
    assert_eq!((19.999999f64).tanh(), 1.0); // libm agrees the region is saturated
}
