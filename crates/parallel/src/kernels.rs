//! Shared numeric kernels executed on a [`ThreadPool`].
//!
//! The matmul kernel here is the single implementation behind both
//! `nofis_linalg::Matrix::matmul` and `nofis_autograd::Tensor::matmul`.
//! It is **row-partitioned**: each chunk owns a disjoint block of output
//! rows, and each output row is computed by exactly the same inner loop the
//! serial path uses. Because no accumulator is ever shared between chunks,
//! the parallel result is bitwise identical to the serial one for any
//! thread count — row partitioning needs no reduction at all.

use crate::ThreadPool;

/// Below this many multiply-adds (`m * k * n`), `matmul_into` stays serial:
/// the dispatch overhead of even one channel send dwarfs the work.
pub const PAR_FLOPS_THRESHOLD: usize = 64 * 1024;

/// Output rows per parallel chunk. Chosen once, as a function of nothing:
/// chunk boundaries must never depend on the thread count.
pub const MATMUL_BLOCK_ROWS: usize = 8;

/// Serial reference kernel: `out = a * b` for row-major buffers, where `a`
/// is `m x k`, `b` is `k x n` and `out` is `m x n`.
///
/// The `aik == 0.0` skip is load-bearing for callers that multiply by
/// sparse masks; the parallel kernel preserves it exactly.
///
/// # Panics
///
/// Panics if the buffer lengths do not match the given dimensions.
pub fn matmul_serial_into(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer length");
    assert_eq!(b.len(), k * n, "rhs buffer length");
    assert_eq!(out.len(), m * n, "out buffer length");
    out.fill(0.0);
    matmul_rows(a, b, out, 0, m, k, n);
}

/// Computes output rows `[row_start, row_start + rows)` of `a * b` into
/// `out_rows` (which holds exactly those rows, row-major).
fn matmul_rows(
    a: &[f64],
    b: &[f64],
    out_rows: &mut [f64],
    row_start: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    for local_i in 0..rows {
        let i = row_start + local_i;
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            let out_row = &mut out_rows[local_i * n..(local_i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
}

/// Blocked, row-partitioned parallel matmul: `out = a * b` with `a` being
/// `m x k`, `b` being `k x n`, all row-major.
///
/// Falls back to the serial kernel when `m * k * n` is below
/// [`PAR_FLOPS_THRESHOLD`] or the pool has a single lane. The result is
/// bitwise identical to [`matmul_serial_into`] in every case.
///
/// # Panics
///
/// Panics if the buffer lengths do not match the given dimensions.
pub fn matmul_into(
    pool: &ThreadPool,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "lhs buffer length");
    assert_eq!(b.len(), k * n, "rhs buffer length");
    assert_eq!(out.len(), m * n, "out buffer length");
    if pool.threads() == 1 || m.saturating_mul(k).saturating_mul(n) < PAR_FLOPS_THRESHOLD {
        out.fill(0.0);
        matmul_rows(a, b, out, 0, m, k, n);
        return;
    }
    out.fill(0.0);
    // Each chunk is MATMUL_BLOCK_ROWS complete output rows (the final chunk
    // may be shorter) — disjoint `&mut` slices of `out`, no reduction.
    pool.for_each_chunk_mut(out, MATMUL_BLOCK_ROWS * n, |chunk_idx, out_rows| {
        let row_start = chunk_idx * MATMUL_BLOCK_ROWS;
        let rows = out_rows.len() / n;
        matmul_rows(a, b, out_rows, row_start, rows, k, n);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (no RNG dependency in this crate).
    fn fill(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    fn naive(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn serial_kernel_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (8, 8, 8), (17, 9, 23)] {
            let a = fill(m * k, 7);
            let b = fill(k * n, 13);
            let mut out = vec![f64::NAN; m * n];
            matmul_serial_into(&a, &b, &mut out, m, k, n);
            let expect = naive(&a, &b, m, k, n);
            for (x, y) in out.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn parallel_bitwise_matches_serial_across_thread_counts() {
        // Shapes straddling the threshold and not divisible by the block.
        for &(m, k, n) in &[(4, 4, 4), (37, 19, 29), (64, 64, 64), (130, 33, 65)] {
            let a = fill(m * k, 42);
            let b = fill(k * n, 99);
            let mut serial = vec![0.0; m * n];
            matmul_serial_into(&a, &b, &mut serial, m, k, n);
            for threads in [1, 2, 8] {
                let pool = ThreadPool::new(threads);
                let mut par = vec![f64::NAN; m * n];
                matmul_into(&pool, &a, &b, &mut par, m, k, n);
                for (x, y) in par.iter().zip(&serial) {
                    assert_eq!(x.to_bits(), y.to_bits(), "({m}x{k}x{n}) threads={threads}");
                }
            }
        }
    }

    #[test]
    fn zero_skip_is_preserved() {
        // A row of zeros in `a` must leave inf/nan in `b` untouched, exactly
        // like the serial kernel's `aik == 0.0` skip.
        let (m, k, n) = (130, 33, 65); // above threshold
        let mut a = fill(m * k, 5);
        for v in a[..k].iter_mut() {
            *v = 0.0;
        }
        let mut b = fill(k * n, 6);
        b[0] = f64::INFINITY;
        let pool = ThreadPool::new(4);
        let mut out = vec![f64::NAN; m * n];
        matmul_into(&pool, &a, &b, &mut out, m, k, n);
        assert!(out[..n].iter().all(|&v| v == 0.0), "zero row stays zero");
    }

    #[test]
    fn degenerate_shapes() {
        let pool = ThreadPool::new(4);
        let mut out = vec![];
        matmul_into(&pool, &[], &[], &mut out, 0, 0, 0);
        assert!(out.is_empty());
        let mut out = vec![0.0; 3];
        matmul_into(&pool, &[2.0], &[1.0, 2.0, 3.0], &mut out, 1, 1, 3);
        assert_eq!(out, vec![2.0, 4.0, 6.0]);
    }
}
