//! Shared numeric kernels executed on a [`ThreadPool`].
//!
//! The matmul kernels here are the single implementation behind both
//! `nofis_linalg::Matrix::matmul` and `nofis_autograd::Tensor::matmul`,
//! plus the transpose-free backward products `a @ bᵀ` and `aᵀ @ b`.
//! All of them are **row-partitioned**: each chunk owns a disjoint block of
//! output rows, and each output row is computed by exactly the same inner
//! loop the serial path uses. Because no accumulator is ever shared between
//! chunks, the parallel result is bitwise identical to the serial one for
//! any thread count — row partitioning needs no reduction at all.
//!
//! # Accumulation-order contract
//!
//! Every kernel in this file computes each output element as a sum over the
//! reduction index `kk` **in ascending order**, starting from `0.0`, with
//! one `mul` and one `add` per term (never a fused multiply-add), and skips
//! the term whenever the `a`-side factor is exactly `0.0`. The blocked
//! microkernel ([`matmul_serial_into`] / [`matmul_into`]) only changes
//! *which register* holds the running sum — a 4-wide accumulator tile
//! instead of the output row — so its per-element add sequence is
//! identical to the scalar reference ([`matmul_scalar_into`]) and the
//! results are bitwise equal. The `aik == 0.0` skip is load-bearing for
//! callers that multiply by sparse masks (`0.0 * inf` would poison the row
//! with NaN); every kernel preserves it exactly.

use crate::ThreadPool;

/// Below this many multiply-adds (`m * k * n`), `matmul_into` stays serial:
/// the dispatch overhead of even one channel send dwarfs the work.
pub const PAR_FLOPS_THRESHOLD: usize = 64 * 1024;

/// Output rows per parallel chunk. Chosen once, as a function of nothing:
/// chunk boundaries must never depend on the thread count.
pub const MATMUL_BLOCK_ROWS: usize = 8;

/// Output columns per register tile in the blocked microkernel — four
/// hand-unrolled f64 lanes, the widest tile that still vectorizes cleanly
/// on baseline x86-64 (two SSE2 registers) without spilling.
pub const MATMUL_LANES: usize = 4;

/// Reduction-panel depth of the cache-blocked microkernel: how many `b`
/// rows a register tile consumes before its accumulators spill to `out`.
/// A 512-row panel of a 4-wide tile touches 16 KiB of `b` — inside L1 on
/// every current x86-64/aarch64 part. Blocks are visited in ascending
/// order, so the per-element add sequence is unchanged.
const MATMUL_KC: usize = 512;

/// Scalar reference kernel: `out = a * b` for row-major buffers, where `a`
/// is `m x k`, `b` is `k x n` and `out` is `m x n`.
///
/// This is the pre-blocking inner loop, kept verbatim as the ground truth
/// the blocked microkernel is tested against bitwise (see
/// `crates/linalg/tests/simd_kernel.rs`). Production callers go through
/// [`matmul_serial_into`] / [`matmul_into`].
///
/// # Panics
///
/// Panics if the buffer lengths do not match the given dimensions.
pub fn matmul_scalar_into(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer length");
    assert_eq!(b.len(), k * n, "rhs buffer length");
    assert_eq!(out.len(), m * n, "out buffer length");
    out.fill(0.0);
    for local_i in 0..m {
        for kk in 0..k {
            let aik = a[local_i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            let out_row = &mut out[local_i * n..(local_i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
}

/// Serial kernel: `out = a * b` through the blocked microkernel; bitwise
/// identical to [`matmul_scalar_into`] (see the module-level
/// accumulation-order contract).
///
/// # Panics
///
/// Panics if the buffer lengths do not match the given dimensions.
pub fn matmul_serial_into(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer length");
    assert_eq!(b.len(), k * n, "rhs buffer length");
    assert_eq!(out.len(), m * n, "out buffer length");
    matmul_rows(a, b, out, 0, m, k, n);
}

/// Blocked microkernel computing output rows `[row_start, row_start + rows)`
/// of `a * b` into `out_rows` (which holds exactly those rows, row-major).
///
/// Register tiling: each output row is produced in [`MATMUL_LANES`]-wide
/// column tiles whose running sums live in a hand-unrolled `[f64; 4]`
/// accumulator, consuming the reduction in [`MATMUL_KC`]-deep panels; the
/// tile is written back once per panel. Every element is written (never
/// read-modify-written across calls), so callers need not pre-zero `out`.
fn matmul_rows(
    a: &[f64],
    b: &[f64],
    out_rows: &mut [f64],
    row_start: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    if k == 0 {
        out_rows.fill(0.0);
        return;
    }
    let split = n - n % MATMUL_LANES;
    for local_i in 0..rows {
        let i = row_start + local_i;
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out_rows[local_i * n..(local_i + 1) * n];
        let mut kb = 0;
        while kb < k {
            let k_end = (kb + MATMUL_KC).min(k);
            let first = kb == 0;
            let a_panel = &a_row[kb..k_end];
            let b_panel = &b[kb * n..k_end * n];
            let mut j = 0;
            while j < split {
                let mut acc = if first {
                    [0.0f64; MATMUL_LANES]
                } else {
                    [out_row[j], out_row[j + 1], out_row[j + 2], out_row[j + 3]]
                };
                for (&aik, b_row) in a_panel.iter().zip(b_panel.chunks_exact(n)) {
                    if aik == 0.0 {
                        continue;
                    }
                    let bt = &b_row[j..j + MATMUL_LANES];
                    acc[0] += aik * bt[0];
                    acc[1] += aik * bt[1];
                    acc[2] += aik * bt[2];
                    acc[3] += aik * bt[3];
                }
                out_row[j..j + MATMUL_LANES].copy_from_slice(&acc);
                j += MATMUL_LANES;
            }
            for j in split..n {
                let mut acc = if first { 0.0 } else { out_row[j] };
                for (&aik, b_row) in a_panel.iter().zip(b_panel.chunks_exact(n)) {
                    if aik == 0.0 {
                        continue;
                    }
                    acc += aik * b_row[j];
                }
                out_row[j] = acc;
            }
            kb = k_end;
        }
    }
}

/// Blocked, row-partitioned parallel matmul: `out = a * b` with `a` being
/// `m x k`, `b` being `k x n`, all row-major.
///
/// Falls back to the serial kernel when `m * k * n` is below
/// [`PAR_FLOPS_THRESHOLD`] or the pool has a single lane. The result is
/// bitwise identical to [`matmul_serial_into`] (and therefore to
/// [`matmul_scalar_into`]) in every case.
///
/// # Panics
///
/// Panics if the buffer lengths do not match the given dimensions.
pub fn matmul_into(
    pool: &ThreadPool,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "lhs buffer length");
    assert_eq!(b.len(), k * n, "rhs buffer length");
    assert_eq!(out.len(), m * n, "out buffer length");
    if crate::math::reference_math() {
        // `NOFIS_REFERENCE_MATH=1`: run the scalar reference directly
        // (bitwise identical, just slower) — see [`crate::math`].
        matmul_scalar_into(a, b, out, m, k, n);
        return;
    }
    if pool.threads() == 1 || m.saturating_mul(k).saturating_mul(n) < PAR_FLOPS_THRESHOLD {
        matmul_rows(a, b, out, 0, m, k, n);
        return;
    }
    // Each chunk is MATMUL_BLOCK_ROWS complete output rows (the final chunk
    // may be shorter) — disjoint `&mut` slices of `out`, no reduction.
    pool.for_each_chunk_mut(out, MATMUL_BLOCK_ROWS * n, |chunk_idx, out_rows| {
        let row_start = chunk_idx * MATMUL_BLOCK_ROWS;
        let rows = out_rows.len() / n;
        matmul_rows(a, b, out_rows, row_start, rows, k, n);
    });
}

/// Microkernel for output rows of `a * bᵀ` with `a` being `m x k` and `b`
/// being `n x k` (`out` is `m x n`): `out[i][j] = Σ_kk a[i,kk] * b[j,kk]`.
///
/// Both factors are read along contiguous rows (the transposed-B layout for
/// the backward pass — each output element is a row-row dot product), so no
/// reduction panel is needed; a 4-wide tile of `b` rows shares each `a`
/// load. The `kk` order, the `a[i,kk] == 0.0` skip, and the start-from-zero
/// accumulators match `transpose(b)` followed by the forward kernel
/// exactly, so the result is bitwise identical to that composition.
fn matmul_bt_rows(
    a: &[f64],
    b: &[f64],
    out_rows: &mut [f64],
    row_start: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    let split = n - n % MATMUL_LANES;
    for local_i in 0..rows {
        let i = row_start + local_i;
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out_rows[local_i * n..(local_i + 1) * n];
        let mut j = 0;
        while j < split {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let mut acc = [0.0f64; MATMUL_LANES];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                acc[0] += aik * b0[kk];
                acc[1] += aik * b1[kk];
                acc[2] += aik * b2[kk];
                acc[3] += aik * b3[kk];
            }
            out_row[j..j + MATMUL_LANES].copy_from_slice(&acc);
            j += MATMUL_LANES;
        }
        for j in split..n {
            let bj = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                acc += aik * bj[kk];
            }
            out_row[j] = acc;
        }
    }
}

/// Row-partitioned `out = a * bᵀ` with `a` being `m x k` and `b` being
/// `n x k`, all row-major (`out` is `m x n`).
///
/// This is the transpose-free backward product (`grad_lhs = upstream * bᵀ`):
/// bitwise identical to materializing `transpose(b)` and calling
/// [`matmul_into`], with the same serial-fallback threshold
/// (`m * k * n < `[`PAR_FLOPS_THRESHOLD`]) and the same
/// [`MATMUL_BLOCK_ROWS`]-row chunking, so the determinism contract holds at
/// any thread count.
///
/// # Panics
///
/// Panics if the buffer lengths do not match the given dimensions.
pub fn matmul_bt_into(
    pool: &ThreadPool,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "lhs buffer length");
    assert_eq!(b.len(), n * k, "rhs buffer length");
    assert_eq!(out.len(), m * n, "out buffer length");
    if crate::math::reference_math() {
        // `NOFIS_REFERENCE_MATH=1`: materialize `bᵀ` and run the scalar
        // reference — the composition this kernel is pinned against.
        let mut bt = vec![0.0; k * n];
        for r in 0..n {
            for c in 0..k {
                bt[c * n + r] = b[r * k + c];
            }
        }
        matmul_scalar_into(a, &bt, out, m, k, n);
        return;
    }
    if pool.threads() == 1 || m.saturating_mul(k).saturating_mul(n) < PAR_FLOPS_THRESHOLD {
        matmul_bt_rows(a, b, out, 0, m, k, n);
        return;
    }
    pool.for_each_chunk_mut(out, MATMUL_BLOCK_ROWS * n, |chunk_idx, out_rows| {
        let row_start = chunk_idx * MATMUL_BLOCK_ROWS;
        let rows = out_rows.len() / n;
        matmul_bt_rows(a, b, out_rows, row_start, rows, k, n);
    });
}

/// Microkernel for output rows of `aᵀ * b` with `a` being `k x m` and `b`
/// being `k x n` (`out` is `m x n`): `out[i][j] = Σ_kk a[kk,i] * b[kk,j]`.
///
/// The reduction streams whole rows of `a` and `b` (ascending `kk`), so
/// the composed `transpose(a)` + forward-kernel zero-skip — `at[i,kk]`,
/// i.e. `a[kk,i]` — is expressed directly on `a`'s column and the result
/// is bitwise identical to that composition.
#[allow(clippy::too_many_arguments)] // kernel entry mirrors the (a, b, out, range, dims) calling convention
fn matmul_at_rows(
    a: &[f64],
    b: &[f64],
    out_rows: &mut [f64],
    row_start: usize,
    rows: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    if k == 0 {
        out_rows.fill(0.0);
        return;
    }
    let split = n - n % MATMUL_LANES;
    for local_i in 0..rows {
        let i = row_start + local_i;
        let out_row = &mut out_rows[local_i * n..(local_i + 1) * n];
        let mut j = 0;
        while j < split {
            let mut acc = [0.0f64; MATMUL_LANES];
            for (a_row, b_row) in a.chunks_exact(m).zip(b.chunks_exact(n)) {
                let aik = a_row[i];
                if aik == 0.0 {
                    continue;
                }
                let bt = &b_row[j..j + MATMUL_LANES];
                acc[0] += aik * bt[0];
                acc[1] += aik * bt[1];
                acc[2] += aik * bt[2];
                acc[3] += aik * bt[3];
            }
            out_row[j..j + MATMUL_LANES].copy_from_slice(&acc);
            j += MATMUL_LANES;
        }
        for j in split..n {
            let mut acc = 0.0;
            for (a_row, b_row) in a.chunks_exact(m).zip(b.chunks_exact(n)) {
                let aik = a_row[i];
                if aik == 0.0 {
                    continue;
                }
                acc += aik * b_row[j];
            }
            out_row[j] = acc;
        }
    }
}

/// Row-partitioned `out = aᵀ * b` with `a` being `k x m` and `b` being
/// `k x n`, all row-major (`out` is `m x n`).
///
/// This is the transpose-free backward product (`grad_rhs = aᵀ * upstream`):
/// bitwise identical to materializing `transpose(a)` and calling
/// [`matmul_into`], with the same serial-fallback threshold
/// (`m * k * n < `[`PAR_FLOPS_THRESHOLD`]) and the same
/// [`MATMUL_BLOCK_ROWS`]-row chunking, so the determinism contract holds at
/// any thread count.
///
/// # Panics
///
/// Panics if the buffer lengths do not match the given dimensions.
pub fn matmul_at_into(
    pool: &ThreadPool,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    k: usize,
    m: usize,
    n: usize,
) {
    assert_eq!(a.len(), k * m, "lhs buffer length");
    assert_eq!(b.len(), k * n, "rhs buffer length");
    assert_eq!(out.len(), m * n, "out buffer length");
    if crate::math::reference_math() {
        // `NOFIS_REFERENCE_MATH=1`: materialize `aᵀ` and run the scalar
        // reference — the composition this kernel is pinned against.
        let mut at = vec![0.0; m * k];
        for r in 0..k {
            for c in 0..m {
                at[c * k + r] = a[r * m + c];
            }
        }
        matmul_scalar_into(&at, b, out, m, k, n);
        return;
    }
    if pool.threads() == 1 || m.saturating_mul(k).saturating_mul(n) < PAR_FLOPS_THRESHOLD {
        matmul_at_rows(a, b, out, 0, m, k, m, n);
        return;
    }
    pool.for_each_chunk_mut(out, MATMUL_BLOCK_ROWS * n, |chunk_idx, out_rows| {
        let row_start = chunk_idx * MATMUL_BLOCK_ROWS;
        let rows = out_rows.len() / n;
        matmul_at_rows(a, b, out_rows, row_start, rows, k, m, n);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (no RNG dependency in this crate).
    fn fill(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    fn naive(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn transpose(src: &[f64], rows: usize, cols: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(rows * cols);
        for c in 0..cols {
            out.extend((0..rows).map(|r| src[r * cols + c]));
        }
        out
    }

    #[test]
    fn serial_kernel_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (8, 8, 8), (17, 9, 23)] {
            let a = fill(m * k, 7);
            let b = fill(k * n, 13);
            let mut out = vec![f64::NAN; m * n];
            matmul_serial_into(&a, &b, &mut out, m, k, n);
            let expect = naive(&a, &b, m, k, n);
            for (x, y) in out.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn blocked_microkernel_matches_scalar_reference_bitwise() {
        // Shapes covering sub-tile widths, tile remainders, and a reduction
        // longer than one MATMUL_KC panel.
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 3),
            (5, 7, 4),
            (3, 9, 6),
            (8, 8, 8),
            (17, 9, 23),
            (11, 600, 7),
            (4, 1025, 9),
        ] {
            let a = fill(m * k, 21);
            let b = fill(k * n, 22);
            let mut scalar = vec![f64::NAN; m * n];
            matmul_scalar_into(&a, &b, &mut scalar, m, k, n);
            let mut blocked = vec![f64::NAN; m * n];
            matmul_serial_into(&a, &b, &mut blocked, m, k, n);
            for (x, y) in blocked.iter().zip(&scalar) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m}x{k}x{n})");
            }
        }
    }

    #[test]
    fn parallel_bitwise_matches_serial_across_thread_counts() {
        // Shapes straddling the threshold and not divisible by the block.
        for &(m, k, n) in &[(4, 4, 4), (37, 19, 29), (64, 64, 64), (130, 33, 65)] {
            let a = fill(m * k, 42);
            let b = fill(k * n, 99);
            let mut serial = vec![0.0; m * n];
            matmul_serial_into(&a, &b, &mut serial, m, k, n);
            for threads in [1, 2, 8] {
                let pool = ThreadPool::new(threads);
                let mut par = vec![f64::NAN; m * n];
                matmul_into(&pool, &a, &b, &mut par, m, k, n);
                for (x, y) in par.iter().zip(&serial) {
                    assert_eq!(x.to_bits(), y.to_bits(), "({m}x{k}x{n}) threads={threads}");
                }
            }
        }
    }

    #[test]
    fn bt_kernel_matches_transpose_composition_bitwise() {
        // out = a @ bᵀ vs transpose(b) then the forward kernel.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 4), (17, 9, 23), (130, 33, 65)] {
            let a = fill(m * k, 3);
            let b = fill(n * k, 4); // n x k
            let bt = transpose(&b, n, k); // k x n
            let mut composed = vec![0.0; m * n];
            matmul_scalar_into(&a, &bt, &mut composed, m, k, n);
            for threads in [1, 2, 8] {
                let pool = ThreadPool::new(threads);
                let mut direct = vec![f64::NAN; m * n];
                matmul_bt_into(&pool, &a, &b, &mut direct, m, k, n);
                for (x, y) in direct.iter().zip(&composed) {
                    assert_eq!(x.to_bits(), y.to_bits(), "({m}x{k}x{n}) threads={threads}");
                }
            }
        }
    }

    #[test]
    fn at_kernel_matches_transpose_composition_bitwise() {
        // out = aᵀ @ b vs transpose(a) then the forward kernel.
        for &(k, m, n) in &[(1, 1, 1), (5, 3, 4), (9, 17, 23), (33, 130, 65)] {
            let a = fill(k * m, 5); // k x m
            let b = fill(k * n, 6); // k x n
            let at = transpose(&a, k, m); // m x k
            let mut composed = vec![0.0; m * n];
            matmul_scalar_into(&at, &b, &mut composed, m, k, n);
            for threads in [1, 2, 8] {
                let pool = ThreadPool::new(threads);
                let mut direct = vec![f64::NAN; m * n];
                matmul_at_into(&pool, &a, &b, &mut direct, k, m, n);
                for (x, y) in direct.iter().zip(&composed) {
                    assert_eq!(x.to_bits(), y.to_bits(), "({k}x{m}x{n}) threads={threads}");
                }
            }
        }
    }

    #[test]
    fn zero_skip_is_preserved() {
        // A row of zeros in `a` must leave inf/nan in `b` untouched, exactly
        // like the serial kernel's `aik == 0.0` skip.
        let (m, k, n) = (130, 33, 65); // above threshold
        let mut a = fill(m * k, 5);
        for v in a[..k].iter_mut() {
            *v = 0.0;
        }
        let mut b = fill(k * n, 6);
        b[0] = f64::INFINITY;
        let pool = ThreadPool::new(4);
        let mut out = vec![f64::NAN; m * n];
        matmul_into(&pool, &a, &b, &mut out, m, k, n);
        assert!(out[..n].iter().all(|&v| v == 0.0), "zero row stays zero");
    }

    #[test]
    fn zero_skip_is_preserved_in_backward_kernels() {
        let (m, k, n) = (65, 33, 40);
        let mut a = fill(m * k, 15);
        for v in a[..k].iter_mut() {
            *v = 0.0;
        }
        let mut b = fill(n * k, 16); // n x k for bt
        b[0] = f64::INFINITY;
        let pool = ThreadPool::new(4);
        let mut out = vec![f64::NAN; m * n];
        matmul_bt_into(&pool, &a, &b, &mut out, m, k, n);
        assert!(out[..n].iter().all(|&v| v == 0.0), "bt zero row stays zero");

        // at: zero out column 0 of `a` (k x m); out row 0 must stay zero.
        let (k2, m2, n2) = (33, 65, 40);
        let mut a2 = fill(k2 * m2, 17);
        for kk in 0..k2 {
            a2[kk * m2] = 0.0;
        }
        let mut b2 = fill(k2 * n2, 18);
        b2[0] = f64::INFINITY;
        let mut out2 = vec![f64::NAN; m2 * n2];
        matmul_at_into(&pool, &a2, &b2, &mut out2, k2, m2, n2);
        assert!(
            out2[..n2].iter().all(|&v| v == 0.0),
            "at zero column stays zero"
        );
    }

    #[test]
    fn degenerate_shapes() {
        let pool = ThreadPool::new(4);
        let mut out = vec![];
        matmul_into(&pool, &[], &[], &mut out, 0, 0, 0);
        assert!(out.is_empty());
        let mut out = vec![0.0; 3];
        matmul_into(&pool, &[2.0], &[1.0, 2.0, 3.0], &mut out, 1, 1, 3);
        assert_eq!(out, vec![2.0, 4.0, 6.0]);
        // Empty reduction must still produce zeros (write-once kernels).
        let mut out = vec![f64::NAN; 6];
        matmul_into(&pool, &[], &[], &mut out, 2, 0, 3);
        assert_eq!(out, vec![0.0; 6]);
        let mut out = vec![f64::NAN; 6];
        matmul_bt_into(&pool, &[], &[], &mut out, 2, 0, 3);
        assert_eq!(out, vec![0.0; 6]);
        let mut out = vec![f64::NAN; 6];
        matmul_at_into(&pool, &[], &[], &mut out, 0, 2, 3);
        assert_eq!(out, vec![0.0; 6]);
    }
}
