//! Chunked thread-pool execution layer for the NOFIS hot paths.
//!
//! NOFIS spends nearly all of its wall-clock in two places: coupling-net
//! matmuls during M-stage flow training, and limit-state oracle calls
//! `g(x)` during sampling/estimation. Both are embarrassingly parallel
//! across rows/samples. This crate provides the shared execution substrate:
//!
//! * [`ThreadPool`] — a small, work-stealing-free pool built from
//!   `std::thread` and `std::sync::mpsc` channels only (consistent with the
//!   workspace's vendored-offline dependency policy). Work is split into
//!   *chunks*; idle workers claim whole chunks from a shared atomic cursor,
//!   never from each other's queues.
//! * [`chunks`] — chunk partitioning arithmetic and chunk-ordered
//!   reductions. Chunk boundaries depend only on the workload size, never
//!   on the thread count, so every reduction is **bitwise identical**
//!   regardless of how many threads execute it.
//! * [`kernels`] — a blocked, row-partitioned parallel `matmul` over
//!   row-major `f64` buffers with a serial fallback below a size threshold;
//!   the shared kernel behind both `nofis_linalg::Matrix::matmul` and
//!   `nofis_autograd::Tensor::matmul` (forward *and* backward).
//! * [`math`] — deterministic scalar transcendentals ([`math::fast_tanh`]
//!   and the once-read `NOFIS_REFERENCE_MATH` switch back to libm) shared
//!   by the interpreted graph and the compiled-tape replay engine.
//! * [`global`] / [`default_threads`] — a process-wide pool sized from (in
//!   precedence order) the `NOFIS_THREADS` environment variable, an
//!   explicit [`set_thread_override`] (wired to `NofisConfig::threads`),
//!   or `std::thread::available_parallelism()`.
//!
//! # Determinism contract
//!
//! Every operation in this crate is deterministic in its *outputs*:
//! results land in chunk-index-ordered slots and reductions sum partials
//! in chunk order. Only the execution schedule (which worker runs which
//! chunk, and when) varies between runs and thread counts. See DESIGN.md
//! §8 for the workspace-wide contract and the test suite that locks it.
//!
//! # Example
//!
//! ```
//! use nofis_parallel::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.map_chunks(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![deny(missing_docs)]

pub mod chunks;
pub mod kernels;
pub mod math;
mod pool;

pub use pool::{LaneGuard, PoolUsage, ThreadPool};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// `NOFIS_THREADS` was set to something other than a positive integer.
///
/// Invalid values are a configuration error, not a preference to be
/// silently ignored: a CI job that typos `NOFIS_THREADS=fourx` must fail
/// loudly rather than quietly benchmark on the wrong thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadsEnvError {
    /// The rejected value of the environment variable.
    pub raw: String,
}

impl std::fmt::Display for ThreadsEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid NOFIS_THREADS value {:?}: expected a positive integer",
            self.raw
        )
    }
}

impl std::error::Error for ThreadsEnvError {}

/// Unset sentinel for the explicit thread-count override.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The lazily built process-wide pool.
static GLOBAL_POOL: OnceLock<ThreadPool> = OnceLock::new();

/// Records an explicit thread-count preference (e.g. from
/// `NofisConfig::threads`).
///
/// Returns `true` if the preference can still influence the global pool
/// (i.e. [`global`] has not been called yet); once the global pool exists
/// its size is fixed for the lifetime of the process and this call only
/// updates the recorded preference. The `NOFIS_THREADS` environment
/// variable, when set and valid, takes precedence over this override so
/// operators and CI can pin the thread count from outside.
///
/// A zero `threads` clears the override.
pub fn set_thread_override(threads: usize) -> bool {
    THREAD_OVERRIDE.store(threads, Ordering::SeqCst);
    GLOBAL_POOL.get().is_none()
}

/// The currently recorded explicit override, if any.
pub fn thread_override() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => None,
        n => Some(n),
    }
}

/// Parses `NOFIS_THREADS` from the environment with typed rejection.
///
/// Returns `Ok(None)` when the variable is unset or empty (an empty value
/// is treated as "cleared", matching `VAR= cmd` shell usage), `Ok(Some(n))`
/// for a positive integer, and [`ThreadsEnvError`] for anything else —
/// callers surface this as a configuration error instead of silently
/// falling back to a default thread count.
pub fn env_threads_checked() -> Result<Option<usize>, ThreadsEnvError> {
    match std::env::var("NOFIS_THREADS") {
        Ok(raw) => parse_threads(&raw),
        Err(_) => Ok(None),
    }
}

/// Parsing half of [`env_threads_checked`], split out for direct testing.
fn parse_threads(raw: &str) -> Result<Option<usize>, ThreadsEnvError> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n > 0 => Ok(Some(n)),
        _ => Err(ThreadsEnvError {
            raw: raw.to_string(),
        }),
    }
}

/// Where the resolved default thread count came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadSource {
    /// The `NOFIS_THREADS` environment variable.
    Env,
    /// An explicit [`set_thread_override`] (e.g. `NofisConfig::threads`).
    Override,
    /// `std::thread::available_parallelism()` (or 1 when unknown).
    Available,
}

impl ThreadSource {
    /// Short label used in telemetry events.
    pub fn as_str(self) -> &'static str {
        match self {
            ThreadSource::Env => "env",
            ThreadSource::Override => "override",
            ThreadSource::Available => "available_parallelism",
        }
    }
}

/// Resolves the default worker count and where it came from:
/// `NOFIS_THREADS` env var, else the explicit [`set_thread_override`],
/// else `available_parallelism()`.
///
/// # Panics
///
/// Panics on an invalid `NOFIS_THREADS` value. Configuration front doors
/// (e.g. `Nofis::new`) validate via [`env_threads_checked`] first and
/// return a typed error; the panic here is the backstop for code paths
/// that reach the global pool without passing through validation.
pub fn resolve_default_threads() -> (usize, ThreadSource) {
    let env = env_threads_checked().unwrap_or_else(|e| panic!("{e}"));
    if let Some(n) = env {
        return (n.max(1), ThreadSource::Env);
    }
    if let Some(n) = thread_override() {
        return (n.max(1), ThreadSource::Override);
    }
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (n.max(1), ThreadSource::Available)
}

/// Resolves the default worker count; see [`resolve_default_threads`].
///
/// # Panics
///
/// Panics on an invalid `NOFIS_THREADS` value (see
/// [`resolve_default_threads`]).
pub fn default_threads() -> usize {
    resolve_default_threads().0
}

/// Initializes the global pool with an explicit thread count, returning
/// `true` when this call performed the initialization.
///
/// The first of `init_global` / [`global`] to run fixes the pool size for
/// the process; later calls are no-ops returning `false`. Tests use this to
/// pin the global pool before exercising code paths that reach it.
pub fn init_global(threads: usize) -> bool {
    let mut initialized = false;
    GLOBAL_POOL.get_or_init(|| {
        initialized = true;
        ThreadPool::new(threads.max(1))
    });
    initialized
}

/// The process-wide shared pool, built on first use with
/// [`default_threads`] workers.
///
/// Pool construction emits a one-shot `parallel.pool.init` telemetry
/// startup event recording the resolved thread count and where it came
/// from (`NOFIS_THREADS`, an explicit override, or the machine default).
pub fn global() -> &'static ThreadPool {
    GLOBAL_POOL.get_or_init(|| {
        let (threads, source) = resolve_default_threads();
        nofis_telemetry::event(nofis_telemetry::Level::Info, "parallel.pool.init")
            .field("threads", threads)
            .field("source", source.as_str())
            .emit();
        ThreadPool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn override_round_trip() {
        // Note: global-pool interaction is covered by integration tests;
        // here we only exercise the recorded preference.
        set_thread_override(3);
        assert_eq!(thread_override(), Some(3));
        set_thread_override(0);
        assert_eq!(thread_override(), None);
    }

    #[test]
    fn threads_env_parsing_is_typed() {
        assert_eq!(parse_threads("4"), Ok(Some(4)));
        assert_eq!(parse_threads("  2 "), Ok(Some(2)));
        assert_eq!(parse_threads(""), Ok(None));
        assert_eq!(parse_threads("   "), Ok(None));
        for bad in ["0", "-1", "four", "2.5", "2x"] {
            let err = parse_threads(bad).unwrap_err();
            assert_eq!(err.raw, bad);
            assert!(err.to_string().contains("NOFIS_THREADS"));
            assert!(err.to_string().contains(bad));
        }
    }

    #[test]
    fn thread_source_labels() {
        assert_eq!(ThreadSource::Env.as_str(), "env");
        assert_eq!(ThreadSource::Override.as_str(), "override");
        assert_eq!(ThreadSource::Available.as_str(), "available_parallelism");
    }

    #[test]
    fn global_pool_is_usable_and_stable() {
        let p1 = global();
        let out = p1.map_chunks(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        let p2 = global();
        assert!(std::ptr::eq(p1, p2));
        assert!(!init_global(17), "global pool already fixed");
    }
}
