//! Chunk partitioning arithmetic and chunk-ordered reductions.
//!
//! The determinism contract hinges on one rule: **chunk boundaries are a
//! function of the workload size only** — never of the thread count or the
//! runtime schedule. Given that, any chunked computation whose results land
//! in chunk-indexed slots, reduced by summing those slots in chunk order,
//! produces bitwise-identical output on 1 thread or 100.

/// Number of chunks needed to cover `n` items with `chunk_len`-sized chunks.
///
/// `chunk_len` is clamped to at least 1. `n == 0` yields zero chunks.
pub fn chunk_count(n: usize, chunk_len: usize) -> usize {
    let chunk_len = chunk_len.max(1);
    n.div_ceil(chunk_len)
}

/// Half-open item range `[start, end)` covered by chunk `idx`.
///
/// The final chunk is truncated to `n`.
pub fn chunk_range(n: usize, chunk_len: usize, idx: usize) -> (usize, usize) {
    let chunk_len = chunk_len.max(1);
    let start = (idx * chunk_len).min(n);
    let end = ((idx + 1) * chunk_len).min(n);
    (start, end)
}

/// Sums `f64` partials **in slice order** with plain sequential addition.
///
/// This is the only reduction the workspace uses over parallel partials:
/// because the partials arrive in chunk-indexed slots, the floating-point
/// addition order is fixed regardless of which thread produced which
/// partial, making the sum bitwise reproducible across thread counts.
pub fn sum_chunk_ordered(partials: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &p in partials {
        acc += p;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_count_covers_everything() {
        assert_eq!(chunk_count(0, 32), 0);
        assert_eq!(chunk_count(1, 32), 1);
        assert_eq!(chunk_count(32, 32), 1);
        assert_eq!(chunk_count(33, 32), 2);
        assert_eq!(chunk_count(103, 32), 4);
        assert_eq!(chunk_count(5, 0), 5, "chunk_len clamps to 1");
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        let (n, chunk_len) = (103, 32);
        let mut covered = 0;
        for idx in 0..chunk_count(n, chunk_len) {
            let (start, end) = chunk_range(n, chunk_len, idx);
            assert_eq!(start, covered, "ranges are contiguous");
            assert!(end > start, "no empty chunks");
            covered = end;
        }
        assert_eq!(covered, n);
    }

    #[test]
    fn out_of_range_chunk_is_empty() {
        let (s, e) = chunk_range(10, 4, 99);
        assert_eq!(s, e);
    }

    #[test]
    fn chunk_ordered_sum_matches_sequential() {
        let xs: Vec<f64> = (0..57).map(|i| (i as f64).sin() * 1e-3 + 1.0).collect();
        let seq: f64 = {
            let mut acc = 0.0;
            for &x in &xs {
                acc += x;
            }
            acc
        };
        assert_eq!(sum_chunk_ordered(&xs).to_bits(), seq.to_bits());
    }
}
