//! A small, work-stealing-free chunked thread pool.
//!
//! Built from `std::thread` and `std::sync::mpsc` channels only. Workers
//! are spawned once and parked on a shared job channel; a chunked run
//! enqueues one helper job per participating worker, and every participant
//! (including the caller's thread) claims chunk *indices* from a shared
//! atomic cursor. There are no per-worker deques and no stealing — the only
//! shared state is the cursor, so the set of chunks each thread executes is
//! irrelevant to the results, which always land in chunk-indexed slots.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Cumulative utilization counters for a [`ThreadPool`], read via
/// [`ThreadPool::usage`]. Purely observational (telemetry gauges):
/// counters never influence scheduling, so chunk assignment and results
/// are unaffected by whether anyone reads them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolUsage {
    /// Chunked runs executed (`run_chunks` calls with work).
    pub runs: u64,
    /// Total chunks executed across all runs.
    pub chunks: u64,
    /// Runs small enough (or pools small enough) to execute entirely on
    /// the calling thread without dispatching helpers.
    pub inline_runs: u64,
    /// Helper jobs dispatched to worker threads across all runs.
    pub helper_dispatches: u64,
    /// Runs whose helper allotment was reduced by fair-share lane
    /// accounting (two or more [`LaneGuard`]s alive at dispatch time).
    pub shared_runs: u64,
}

/// Registration of one logical client (e.g. a scheduler job) on a shared
/// pool, returned by [`ThreadPool::lane_guard`]. While two or more guards
/// are alive, each chunked run's *helper* allotment shrinks to
/// `(threads - 1) / active` so co-tenants split the worker lanes instead
/// of queueing behind each other; every caller still participates on its
/// own thread, so no client is ever starved below one lane. Purely a
/// scheduling hint: chunk results land in chunk-indexed slots, so the
/// helper count never affects computed values (DESIGN.md §8).
#[must_use = "the lane registration is released when the guard drops"]
#[derive(Debug)]
pub struct LaneGuard<'a> {
    pool: &'a ThreadPool,
}

impl Drop for LaneGuard<'_> {
    fn drop(&mut self) {
        self.pool.active_clients.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Type-erased unit of work executed by a pool worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, ignoring poisoning: the pool's own state transitions are
/// trivially exception-safe (counters and option slots), and a poisoned
/// latch would otherwise deadlock the panic unwind itself.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Countdown latch: `wait` blocks until `count_down` has been called once
/// per registered helper, even when helpers panic.
#[derive(Debug)]
struct Latch {
    pending: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(pending: usize) -> Self {
        Latch {
            pending: Mutex::new(pending),
            all_done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut pending = lock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut pending = lock(&self.pending);
        while *pending > 0 {
            pending = self
                .all_done
                .wait(pending)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Counts the latch down when dropped — including during a panic unwind,
/// in which case the panic is recorded for the caller to re-raise.
struct CountDownGuard {
    latch: Arc<Latch>,
}

impl Drop for CountDownGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.latch.panicked.store(true, Ordering::SeqCst);
        }
        self.latch.count_down();
    }
}

/// A fixed-size thread pool executing chunked jobs.
///
/// `threads` counts the caller's thread too: a pool of size `N` spawns
/// `N - 1` workers and the thread calling [`ThreadPool::run_chunks`]
/// participates as the `N`-th. A pool of size 1 therefore spawns nothing
/// and runs everything inline — the serial path and the parallel path are
/// the same code.
///
/// # Example
///
/// ```
/// use nofis_parallel::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// let mut data = vec![0u64; 100];
/// pool.for_each_chunk_mut(&mut data, 10, |chunk_idx, chunk| {
///     for (j, v) in chunk.iter_mut().enumerate() {
///         *v = (chunk_idx * 10 + j) as u64;
///     }
/// });
/// assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
/// ```
#[derive(Debug)]
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    runs: AtomicU64,
    chunks: AtomicU64,
    inline_runs: AtomicU64,
    helper_dispatches: AtomicU64,
    shared_runs: AtomicU64,
    active_clients: AtomicUsize,
}

impl ThreadPool {
    /// Creates a pool of `threads` total execution lanes (min 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..threads - 1)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("nofis-par-{i}"))
                    .spawn(move || loop {
                        // Take the lock only to receive; never hold it while
                        // running a job.
                        let job = { lock(&rx).recv() };
                        match job {
                            // A panicking job must not take the worker down
                            // with it: the panic is recorded by the job's
                            // CountDownGuard and re-raised on the caller.
                            Ok(job) => drop(catch_unwind(AssertUnwindSafe(job))),
                            Err(_) => break, // pool dropped, channel closed
                        }
                    })
                    .expect("failed to spawn nofis-parallel worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            handles,
            threads,
            runs: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            inline_runs: AtomicU64::new(0),
            helper_dispatches: AtomicU64::new(0),
            shared_runs: AtomicU64::new(0),
            active_clients: AtomicUsize::new(0),
        }
    }

    /// Total execution lanes (spawned workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of cumulative utilization counters.
    pub fn usage(&self) -> PoolUsage {
        PoolUsage {
            runs: self.runs.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            inline_runs: self.inline_runs.load(Ordering::Relaxed),
            helper_dispatches: self.helper_dispatches.load(Ordering::Relaxed),
            shared_runs: self.shared_runs.load(Ordering::Relaxed),
        }
    }

    /// Registers the calling client for fair-share lane accounting; see
    /// [`LaneGuard`]. Cheap (one atomic increment) and reentrant — nested
    /// guards just count as extra clients.
    pub fn lane_guard(&self) -> LaneGuard<'_> {
        self.active_clients.fetch_add(1, Ordering::Relaxed);
        LaneGuard { pool: self }
    }

    /// Clients currently registered via [`ThreadPool::lane_guard`].
    pub fn active_clients(&self) -> usize {
        self.active_clients.load(Ordering::Relaxed)
    }

    /// Runs `f(chunk_index)` for every index in `0..n_chunks`, spreading
    /// chunks across the pool. Blocks until every chunk has run.
    ///
    /// Chunk indices are claimed dynamically from a shared cursor, so load
    /// imbalance between chunks is absorbed without work stealing. `f` must
    /// confine its effects to per-chunk state (indexed slots, disjoint
    /// slices); the *assignment* of chunks to threads is unspecified.
    ///
    /// # Panics
    ///
    /// Re-raises on the calling thread if `f` panicked on any worker (after
    /// all other chunks finished or were drained).
    pub fn run_chunks<F>(&self, n_chunks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n_chunks == 0 {
            return;
        }
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.chunks.fetch_add(n_chunks as u64, Ordering::Relaxed);
        // Fair-share: with several registered clients, each run claims only
        // its share of the worker lanes (the caller's own lane is always
        // available, so the floor is zero helpers, never zero lanes).
        // Helper count cannot affect results — see LaneGuard.
        let active = self.active_clients.load(Ordering::Relaxed);
        let lane_budget = if active > 1 {
            self.shared_runs.fetch_add(1, Ordering::Relaxed);
            (self.threads - 1) / active
        } else {
            self.threads - 1
        };
        let helpers = lane_budget.min(n_chunks - 1);
        if helpers == 0 {
            self.inline_runs.fetch_add(1, Ordering::Relaxed);
            for i in 0..n_chunks {
                f(i);
            }
            return;
        }
        self.helper_dispatches
            .fetch_add(helpers as u64, Ordering::Relaxed);

        let latch = Arc::new(Latch::new(helpers));
        let next = Arc::new(AtomicUsize::new(0));

        // SAFETY: the helper jobs borrow `f` through a lifetime-erased
        // reference. The `WaitGuard` below blocks — even during a panic
        // unwind of this frame — until every helper job has dropped its
        // `CountDownGuard`, i.e. has finished running. `f` (and everything
        // it borrows) therefore strictly outlives every use on the workers.
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f_ref) };

        struct WaitGuard<'a> {
            latch: &'a Latch,
        }
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.latch.wait();
            }
        }
        let wait_guard = WaitGuard { latch: &latch };

        let tx = self.tx.as_ref().expect("pool channel alive");
        for _ in 0..helpers {
            let latch = Arc::clone(&latch);
            let next = Arc::clone(&next);
            tx.send(Box::new(move || {
                let _guard = CountDownGuard { latch };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_chunks {
                        break;
                    }
                    // Fault-injection seam: a scheduled WorkerPanic takes
                    // this helper down mid-claim, exercising the
                    // CountDownGuard + re-raise recovery path from a real
                    // worker thread (the caller's lane is never targeted).
                    if nofis_faults::active() {
                        if let Some(kind @ nofis_faults::FaultKind::WorkerPanic) =
                            nofis_faults::check(nofis_faults::Site::WorkerChunk)
                        {
                            nofis_telemetry::event(nofis_telemetry::Level::Warn, "fault.injected")
                                .field("site", nofis_faults::Site::WorkerChunk.as_str())
                                .field("kind", kind.as_str())
                                .field("chunk", i)
                                .emit();
                            panic!("injected fault: worker panic (nofis-faults)");
                        }
                    }
                    f_static(i);
                }
            }))
            .expect("pool workers alive");
        }

        // The calling thread is a full participant.
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_chunks {
                break;
            }
            f(i);
        }

        drop(wait_guard); // block until all helpers are done
        if latch.panicked.load(Ordering::SeqCst) {
            panic!("a chunk panicked on a nofis-parallel worker thread");
        }
    }

    /// Maps `f` over `0..n_chunks` and returns the results **in chunk
    /// order**, regardless of which thread computed which chunk.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` like [`ThreadPool::run_chunks`].
    pub fn map_chunks<T, F>(&self, n_chunks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let slots: Vec<Mutex<Option<T>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
        self.run_chunks(n_chunks, |i| {
            *lock(&slots[i]) = Some(f(i));
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every chunk ran exactly once")
            })
            .collect()
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements (the
    /// final chunk may be shorter) and runs `f(chunk_index, chunk)` on each,
    /// in parallel. Chunks are disjoint `&mut` slices, so no synchronization
    /// is needed inside `f`.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` like [`ThreadPool::run_chunks`].
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        let chunk_len = chunk_len.max(1);
        let slots: Vec<Mutex<Option<&mut [T]>>> = data
            .chunks_mut(chunk_len)
            .map(|c| Mutex::new(Some(c)))
            .collect();
        self.run_chunks(slots.len(), |i| {
            let chunk = lock(&slots[i]).take().expect("chunk claimed exactly once");
            f(i, chunk);
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel wakes every parked worker with RecvError.
        drop(self.tx.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_of_one_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        let seen = Mutex::new(Vec::new());
        pool.run_chunks(4, |i| {
            assert_eq!(std::thread::current().id(), caller);
            lock(&seen).push(i);
        });
        assert_eq!(seen.into_inner().unwrap(), vec![0usize, 1, 2, 3]);
    }

    #[test]
    fn all_chunks_run_exactly_once() {
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let counters: Vec<AtomicU64> = (0..37).map(|_| AtomicU64::new(0)).collect();
            pool.run_chunks(counters.len(), |i| {
                counters[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counters.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn map_chunks_preserves_order() {
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.map_chunks(100, |i| i * 3);
            assert_eq!(out.len(), 100);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
        }
    }

    #[test]
    fn for_each_chunk_mut_covers_disjoint_slices() {
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let mut data = vec![0usize; 103]; // not divisible by chunk_len
            pool.for_each_chunk_mut(&mut data, 10, |ci, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = ci * 10 + j;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i));
        }
    }

    #[test]
    fn zero_chunks_is_a_no_op() {
        let pool = ThreadPool::new(4);
        pool.run_chunks(0, |_| panic!("must not run"));
        let out: Vec<u8> = pool.map_chunks(0, |_| 1u8);
        assert!(out.is_empty());
        pool.for_each_chunk_mut(&mut [] as &mut [u8], 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_chunks(64, |i| {
                if i == 13 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The pool remains fully usable afterwards.
        let out = pool.map_chunks(8, |i| i);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn caller_borrows_are_visible_to_workers() {
        let pool = ThreadPool::new(4);
        let input: Vec<u64> = (0..1000).collect();
        let total = AtomicU64::new(0);
        pool.run_chunks(10, |i| {
            let s: u64 = input[i * 100..(i + 1) * 100].iter().sum();
            total.fetch_add(s, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 1000 * 999 / 2);
    }

    #[test]
    fn usage_counters_track_runs_and_chunks() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.usage(), PoolUsage::default());
        pool.run_chunks(5, |_| {});
        pool.run_chunks(0, |_| {}); // no-op, not counted
        let u = pool.usage();
        assert_eq!(u.runs, 1);
        assert_eq!(u.chunks, 5);
        assert_eq!(u.inline_runs, 1);
        assert_eq!(u.helper_dispatches, 0);

        let pool = ThreadPool::new(4);
        pool.run_chunks(10, |_| {});
        pool.run_chunks(1, |_| {}); // single chunk runs inline even on a big pool
        let u = pool.usage();
        assert_eq!(u.runs, 2);
        assert_eq!(u.chunks, 11);
        assert_eq!(u.inline_runs, 1);
        assert_eq!(u.helper_dispatches, 3);
    }

    #[test]
    fn lane_guards_split_helpers_between_clients() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.active_clients(), 0);

        // One client (or none): full helper allotment, not a shared run.
        let g1 = pool.lane_guard();
        assert_eq!(pool.active_clients(), 1);
        pool.run_chunks(10, |_| {});
        assert_eq!(pool.usage().helper_dispatches, 3);
        assert_eq!(pool.usage().shared_runs, 0);

        // Two clients: (4 - 1) / 2 = 1 helper each; results still complete.
        let g2 = pool.lane_guard();
        let counters: Vec<AtomicU64> = (0..10).map(|_| AtomicU64::new(0)).collect();
        pool.run_chunks(counters.len(), |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert_eq!(pool.usage().helper_dispatches, 4);
        assert_eq!(pool.usage().shared_runs, 1);

        // Four clients: 3 / 4 = 0 helpers — the run goes inline, but the
        // caller's own lane keeps it making progress.
        let g3 = pool.lane_guard();
        let g4 = pool.lane_guard();
        pool.run_chunks(10, |_| {});
        assert_eq!(pool.usage().helper_dispatches, 4);
        assert_eq!(pool.usage().inline_runs, 1);

        // Guards release their registration on drop.
        drop((g1, g2, g3, g4));
        assert_eq!(pool.active_clients(), 0);
        pool.run_chunks(10, |_| {});
        assert_eq!(pool.usage().helper_dispatches, 7);
    }

    #[test]
    fn more_chunks_than_threads_and_vice_versa() {
        let pool = ThreadPool::new(8);
        assert_eq!(pool.map_chunks(2, |i| i), vec![0, 1]);
        let pool = ThreadPool::new(2);
        assert_eq!(pool.map_chunks(64, |i| i).len(), 64);
    }
}
