//! Deterministic scalar math kernels shared by every execution engine.
//!
//! The NOFIS forward pass is dominated by `tanh`: at the default stage-3
//! configuration the fused `matmul+bias+tanh` layers spend ~70% of a
//! train step inside the activation (libm `tanh` costs ~25 ns/element at
//! realistic pre-activation magnitudes). [`fast_tanh`] replaces it with a
//! branch-free-per-range polynomial evaluation that is ~2–3× faster while
//! staying within ~2e-15 relative error of libm.
//!
//! # Determinism contract
//!
//! Everything here is plain `f64` arithmetic in a fixed evaluation order:
//! no FMA, no lookup into platform libm, no data-dependent reassociation.
//! Two calls with the same input bits produce the same output bits on any
//! machine and at any thread count — the same contract the matmul kernels
//! in [`crate::kernels`] pin. Both the interpreted [`Graph`] ops and the
//! compiled-tape replay engine route their activations through
//! [`tanh`], so interpreted ↔ compiled bitwise equivalence is preserved
//! by construction.
//!
//! [`Graph`]: ../../nofis_autograd/struct.Graph.html
//!
//! # Reference mode
//!
//! Setting `NOFIS_REFERENCE_MATH=1` (read once per process) switches
//! [`tanh`] back to libm and the matmul dispatchers in
//! [`crate::kernels`] back to the scalar reference composition — i.e. the
//! numeric stack exactly as it existed before the compiled-tape engine
//! landed. The train-step benchmark uses this lane to reconstruct the
//! old path for honest A/B speedup numbers; it is also a debugging aid
//! when a numeric question needs a second, independent implementation.

use std::sync::OnceLock;

/// `2^(j/32)` for `j = 0..32`, the table half of the `exp` range
/// reduction. Decimal literals carry 17 significant digits, so each
/// parses to the correctly rounded `f64`.
const EXP2_TABLE: [f64; 32] = [
    1.0,
    1.0218971486541166,
    1.0442737824274138,
    1.0671404006768237,
    1.0905077326652577,
    1.1143867425958924,
    1.1387886347566916,
    1.1637248587775775,
    1.189207115002721,
    1.215247359980469,
    1.241857812073484,
    1.2690509571917332,
    1.2968395546510096,
    1.3252366431597413,
    1.3542555469368927,
    1.383909881963832,
    std::f64::consts::SQRT_2, // 2^(16/32) exactly
    1.4451808069770467,
    1.4768261459394993,
    1.5091644275934228,
    1.5422108254079407,
    1.5759808451078865,
    1.6104903319492543,
    1.645755478153965,
    1.681792830507429,
    1.718619298122478,
    1.7562521603732995,
    1.7947090750031072,
    1.8340080864093424,
    1.8741676341103,
    1.9152065613971474,
    1.9571441241754002,
];

/// High part of `ln(2)/32` (low 27 mantissa bits zeroed), so that
/// `n * LN2_32_HI` is exact for the reduction multiples used here.
const LN2_32_HI: f64 = 0.02166084898635745;
/// Low part of `ln(2)/32`; `LN2_32_HI + LN2_32_LO` carries the constant
/// to ~107 bits.
const LN2_32_LO: f64 = 4.06140840434059e-10;
/// `32 / ln(2)`.
const INV_LN2_32: f64 = 46.16624130844683;

/// `exp(x)` for `x ∈ [1.25, 40]` via table-assisted range reduction:
/// `x = (32k + j)·ln2/32 + r` with `|r| ≤ ln2/64`, then a degree-5
/// Taylor polynomial for `e^r` (remainder `< 3e-15` relative), scaled by
/// `2^(j/32)` from the table and `2^k` through the exponent bits.
///
/// Only called with positive arguments well inside the finite range, so
/// `k ∈ [1, 58]` and no subnormal/overflow handling is needed.
#[inline]
fn fast_exp_pos(x: f64) -> f64 {
    let n = (x * INV_LN2_32).round();
    let ni = n as i64;
    let j = (ni & 31) as usize;
    let k = ni >> 5;
    let r = (x - n * LN2_32_HI) - n * LN2_32_LO;
    // Horner, one mul + one add per step — no FMA contraction in Rust,
    // so the rounding sequence is fixed.
    let p = 1.0 + r * (1.0 + r * (0.5 + r * (1.0 / 6.0 + r * (1.0 / 24.0 + r * (1.0 / 120.0)))));
    let scale = f64::from_bits(((1023 + k) as u64) << 52);
    EXP2_TABLE[j] * p * scale
}

/// Numerator coefficients of the small-|x| rational approximation
/// (Cephes `tanh.c`, double precision).
const P: [f64; 3] = [
    -9.643_991_794_250_523e-1,
    -9.928_772_310_019_185e1,
    -1.614_687_684_417_084_5e3,
];
/// Denominator coefficients (monic) of the same rational approximation.
const Q: [f64; 3] = [
    1.128_116_784_916_329_3e2,
    2.235_488_390_601_004_5e3,
    4.844_063_053_251_255e3,
];

/// Deterministic `tanh(x)`, accurate to < 2e-15 relative error vs libm.
///
/// Three ranges:
/// - `|x| < 0.625`: Cephes-style rational `x + x³·P(x²)/Q(x²)`.
/// - `0.625 ≤ |x| < 20`: `e = exp(2|x|)` via [`fast_exp_pos`], then
///   `(e − 1)/(e + 1)` — `e ≥ e^1.25 ≈ 3.49`, so the subtraction never
///   cancels.
/// - `|x| ≥ 20`: `±1.0` (`tanh(20)` rounds to `1.0` in f64 anyway).
///
/// `NaN` propagates (the training loop's divergence detection relies on
/// it) and `±∞` saturates to `±1.0`, matching libm.
#[inline]
pub fn fast_tanh(x: f64) -> f64 {
    let t = x.abs();
    if t < 0.625 {
        if t == 0.0 {
            // Preserve the sign of zero (the polynomial would lose it).
            return x;
        }
        let z = x * x;
        let pn = (P[0] * z + P[1]) * z + P[2];
        let qd = ((z + Q[0]) * z + Q[1]) * z + Q[2];
        return x + x * z * (pn / qd);
    }
    let r = if t >= 20.0 {
        if t.is_nan() {
            return x;
        }
        1.0
    } else {
        let e = fast_exp_pos(2.0 * t);
        (e - 1.0) / (e + 1.0)
    };
    if x < 0.0 {
        -r
    } else {
        r
    }
}

static REFERENCE: OnceLock<bool> = OnceLock::new();

/// Whether `NOFIS_REFERENCE_MATH=1` was set when first checked.
///
/// Read once per process and cached; flipping the variable afterwards
/// has no effect (the same once-read discipline as `NOFIS_THREADS`).
#[inline]
pub fn reference_math() -> bool {
    *REFERENCE.get_or_init(|| std::env::var("NOFIS_REFERENCE_MATH").is_ok_and(|v| v.trim() == "1"))
}

/// The engine-wide activation: [`fast_tanh`], or libm `tanh` when
/// [`reference_math`] is on.
///
/// Every forward *and* backward site that evaluates a tanh — the
/// interpreted graph ops, the compiled-tape replay mirrors, and the
/// gradient-free coupling-layer conditioner — must call this function
/// (never `f64::tanh` directly), so that all engines agree bitwise in
/// either mode.
#[inline]
pub fn tanh(x: f64) -> f64 {
    if reference_math() {
        x.tanh()
    } else {
        fast_tanh(x)
    }
}
