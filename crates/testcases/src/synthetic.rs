//! The five synthetic test cases (#1–#5 of Table 1), all with analytic
//! gradients.
//!
//! Thresholds marked "calibrated" were chosen with the workspace's
//! `calibrate` binary (large-budget Monte Carlo / subset simulation) so
//! each golden probability lands near the paper's value; see
//! EXPERIMENTS.md for the calibration runs.

use nofis_prob::{normal_quantile, LimitState};

/// Test case #1 — "Leaf" (D = 2).
///
/// `g(x) = min((x₁+3.8)² + (x₂+3.8)², (x₁−3.8)² + (x₂−3.8)²) − 1`: the
/// failure region is two disks of radius 1 at `(±3.8, ±3.8)`, deep in the
/// Gaussian tail. This is exactly the case visualized in Figure 2(b) of
/// the paper; its golden probability is `4.74e-6`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Leaf;

impl Leaf {
    /// Center coordinate magnitude of the two disks.
    pub const CENTER: f64 = 3.8;
    /// Golden failure probability (paper Table 1; confirmed by a
    /// 4×10⁸-sample Monte Carlo run during calibration: 4.67e-6 ± 2.3%).
    pub const GOLDEN_PR: f64 = 4.74e-6;
}

impl LimitState for Leaf {
    fn dim(&self) -> usize {
        2
    }

    fn value(&self, x: &[f64]) -> f64 {
        let c = Self::CENTER;
        let d1 = (x[0] + c).powi(2) + (x[1] + c).powi(2);
        let d2 = (x[0] - c).powi(2) + (x[1] - c).powi(2);
        d1.min(d2) - 1.0
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let c = Self::CENTER;
        let d1 = (x[0] + c).powi(2) + (x[1] + c).powi(2);
        let d2 = (x[0] - c).powi(2) + (x[1] - c).powi(2);
        if d1 <= d2 {
            (d1 - 1.0, vec![2.0 * (x[0] + c), 2.0 * (x[1] + c)])
        } else {
            (d2 - 1.0, vec![2.0 * (x[0] - c), 2.0 * (x[1] - c)])
        }
    }

    fn name(&self) -> &str {
        "Leaf"
    }
}

/// Test case #2 — "Cube" (D = 6).
///
/// `g(x) = c − min_i x_i`: failure requires **every** coordinate to exceed
/// `c`, giving the analytic probability `(1 − Φ(c))^6`. The corner `c` is
/// chosen so the golden probability is exactly the paper's `2.15e-9`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cube {
    corner: f64,
}

impl Default for Cube {
    fn default() -> Self {
        Self::new()
    }
}

impl Cube {
    /// Golden failure probability (analytic, matching the paper).
    pub const GOLDEN_PR: f64 = 2.15e-9;

    /// Creates the case with the corner solving `(1−Φ(c))⁶ = 2.15e-9`.
    pub fn new() -> Self {
        let per_dim = Self::GOLDEN_PR.powf(1.0 / 6.0);
        Cube {
            corner: normal_quantile(1.0 - per_dim),
        }
    }

    /// The corner threshold `c`.
    pub fn corner(&self) -> f64 {
        self.corner
    }
}

impl LimitState for Cube {
    fn dim(&self) -> usize {
        6
    }

    fn value(&self, x: &[f64]) -> f64 {
        let min = x.iter().copied().fold(f64::INFINITY, f64::min);
        self.corner - min
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let (argmin, min) =
            x.iter()
                .copied()
                .enumerate()
                .fold(
                    (0, f64::INFINITY),
                    |acc, (i, v)| {
                        if v < acc.1 {
                            (i, v)
                        } else {
                            acc
                        }
                    },
                );
        let mut grad = vec![0.0; x.len()];
        grad[argmin] = -1.0;
        (self.corner - min, grad)
    }

    fn name(&self) -> &str {
        "Cube"
    }
}

/// Test case #3 — "Rosen" (D = 10).
///
/// Failure when the Rosenbrock function exceeds a calibrated threshold:
/// `g(x) = a − rosen(x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rosen {
    threshold: f64,
}

impl Default for Rosen {
    fn default() -> Self {
        // Calibrated so P[g <= 0] ≈ 4.7e-4 (paper: 4.69e-4).
        Rosen::with_threshold(Self::CALIBRATED_THRESHOLD)
    }
}

impl Rosen {
    /// Calibrated threshold (see EXPERIMENTS.md).
    pub const CALIBRATED_THRESHOLD: f64 = 33_719.0;
    /// Golden failure probability measured at the calibrated threshold.
    pub const GOLDEN_PR: f64 = 4.69e-4;

    /// Creates the case with an explicit threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        Rosen { threshold }
    }

    fn rosen_and_grad(x: &[f64]) -> (f64, Vec<f64>) {
        let n = x.len();
        let mut f = 0.0;
        let mut grad = vec![0.0; n];
        for i in 0..n - 1 {
            let t = x[i + 1] - x[i] * x[i];
            let u = 1.0 - x[i];
            f += 100.0 * t * t + u * u;
            grad[i] += -400.0 * x[i] * t - 2.0 * u;
            grad[i + 1] += 200.0 * t;
        }
        (f, grad)
    }
}

/// `g` is reported in kilo-units (the raw Rosenbrock values are O(10⁴));
/// a monotone rescale leaves the failure event untouched but keeps the
/// tempered NOFIS loss in the τ-range the paper's hyper-parameters assume.
const ROSEN_UNIT: f64 = 1e-3;

impl LimitState for Rosen {
    fn dim(&self) -> usize {
        10
    }

    fn value(&self, x: &[f64]) -> f64 {
        let (f, _) = Self::rosen_and_grad(x);
        (self.threshold - f) * ROSEN_UNIT
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let (f, mut grad) = Self::rosen_and_grad(x);
        for g in &mut grad {
            *g = -*g * ROSEN_UNIT;
        }
        ((self.threshold - f) * ROSEN_UNIT, grad)
    }

    fn name(&self) -> &str {
        "Rosen"
    }
}

/// Test case #4 — "Levy" (D = 20).
///
/// Failure when the Levy function exceeds a calibrated threshold:
/// `g(x) = a − levy(x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Levy {
    threshold: f64,
}

impl Default for Levy {
    fn default() -> Self {
        Levy::with_threshold(Self::CALIBRATED_THRESHOLD)
    }
}

impl Levy {
    /// Calibrated threshold (see EXPERIMENTS.md).
    pub const CALIBRATED_THRESHOLD: f64 = 53.13;
    /// Golden failure probability measured at the calibrated threshold.
    pub const GOLDEN_PR: f64 = 3.70e-6;

    /// Creates the case with an explicit threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        Levy { threshold }
    }

    fn levy_and_grad(x: &[f64]) -> (f64, Vec<f64>) {
        use std::f64::consts::PI;
        let n = x.len();
        let w: Vec<f64> = x.iter().map(|&v| 1.0 + (v - 1.0) / 4.0).collect();
        let mut grad_w = vec![0.0; n];

        let mut f = (PI * w[0]).sin().powi(2);
        grad_w[0] += 2.0 * (PI * w[0]).sin() * (PI * w[0]).cos() * PI;

        for i in 0..n - 1 {
            let s = (PI * w[i] + 1.0).sin();
            let a = (w[i] - 1.0).powi(2);
            let b = 1.0 + 10.0 * s * s;
            f += a * b;
            grad_w[i] += 2.0 * (w[i] - 1.0) * b + a * 20.0 * s * (PI * w[i] + 1.0).cos() * PI;
        }
        let s = (2.0 * PI * w[n - 1]).sin();
        let a = (w[n - 1] - 1.0).powi(2);
        let b = 1.0 + s * s;
        f += a * b;
        grad_w[n - 1] +=
            2.0 * (w[n - 1] - 1.0) * b + a * 2.0 * s * (2.0 * PI * w[n - 1]).cos() * 2.0 * PI;

        // dw/dx = 1/4.
        let grad: Vec<f64> = grad_w.iter().map(|g| g / 4.0).collect();
        (f, grad)
    }
}

impl LimitState for Levy {
    fn dim(&self) -> usize {
        20
    }

    fn value(&self, x: &[f64]) -> f64 {
        let (f, _) = Self::levy_and_grad(x);
        self.threshold - f
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let (f, mut grad) = Self::levy_and_grad(x);
        for g in &mut grad {
            *g = -*g;
        }
        (self.threshold - f, grad)
    }

    fn name(&self) -> &str {
        "Levy"
    }
}

/// Test case #5 — "Powell" (D = 40).
///
/// Failure when the Powell singular function exceeds a calibrated
/// threshold: `g(x) = a − powell(x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Powell {
    threshold: f64,
}

impl Default for Powell {
    fn default() -> Self {
        Powell::with_threshold(Self::CALIBRATED_THRESHOLD)
    }
}

impl Powell {
    /// Calibrated threshold (see EXPERIMENTS.md).
    pub const CALIBRATED_THRESHOLD: f64 = 22_674.0;
    /// Golden failure probability measured at the calibrated threshold.
    pub const GOLDEN_PR: f64 = 3.15e-5;

    /// Creates the case with an explicit threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        Powell { threshold }
    }

    fn powell_and_grad(x: &[f64]) -> (f64, Vec<f64>) {
        let n = x.len();
        debug_assert_eq!(n % 4, 0, "Powell needs a multiple of 4 dims");
        let mut f = 0.0;
        let mut grad = vec![0.0; n];
        for k in 0..n / 4 {
            let (i, j, l, m) = (4 * k, 4 * k + 1, 4 * k + 2, 4 * k + 3);
            let t1 = x[i] + 10.0 * x[j];
            let t2 = x[l] - x[m];
            let t3 = x[j] - 2.0 * x[l];
            let t4 = x[i] - x[m];
            f += t1 * t1 + 5.0 * t2 * t2 + t3.powi(4) + 10.0 * t4.powi(4);
            grad[i] += 2.0 * t1 + 40.0 * t4.powi(3);
            grad[j] += 20.0 * t1 + 4.0 * t3.powi(3);
            grad[l] += 10.0 * t2 - 8.0 * t3.powi(3);
            grad[m] += -10.0 * t2 - 40.0 * t4.powi(3);
        }
        (f, grad)
    }
}

/// Same kilo-unit monotone rescale as [`ROSEN_UNIT`].
const POWELL_UNIT: f64 = 1e-3;

impl LimitState for Powell {
    fn dim(&self) -> usize {
        40
    }

    fn value(&self, x: &[f64]) -> f64 {
        let (f, _) = Self::powell_and_grad(x);
        (self.threshold - f) * POWELL_UNIT
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let (f, mut grad) = Self::powell_and_grad(x);
        for g in &mut grad {
            *g = -*g * POWELL_UNIT;
        }
        ((self.threshold - f) * POWELL_UNIT, grad)
    }

    fn name(&self) -> &str {
        "Powell"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_autograd::check::{finite_difference, max_rel_error};
    use nofis_prob::normal_cdf;

    fn check_grad(ls: &impl LimitState, x: &[f64], tol: f64) {
        let (v, grad) = ls.value_grad(x);
        assert!((v - ls.value(x)).abs() < 1e-12);
        let fd = finite_difference(|p| ls.value(p), x, 1e-6);
        let err = max_rel_error(&grad, &fd);
        assert!(err < tol, "{}: gradient mismatch {err}", ls.name());
    }

    #[test]
    fn leaf_geometry() {
        assert!(Leaf.value(&[3.8, 3.8]) < 0.0);
        assert!(Leaf.value(&[-3.8, -3.8]) < 0.0);
        assert!(Leaf.value(&[0.0, 0.0]) > 0.0);
        assert!(Leaf.value(&[3.8, -3.8]) > 0.0); // off-diagonal corner is safe
    }

    #[test]
    fn leaf_gradient() {
        check_grad(&Leaf, &[1.0, 2.0], 1e-6);
        check_grad(&Leaf, &[-2.0, -1.5], 1e-6);
    }

    #[test]
    fn cube_analytic_probability() {
        let cube = Cube::new();
        let per_dim = 1.0 - normal_cdf(cube.corner());
        let pr = per_dim.powi(6);
        assert!((pr / Cube::GOLDEN_PR - 1.0).abs() < 1e-6);
        assert!(cube.corner() > 1.7 && cube.corner() < 1.9);
    }

    #[test]
    fn cube_failure_needs_all_coordinates() {
        let cube = Cube::new();
        let c = cube.corner();
        assert!(cube.value(&[c + 0.1; 6]) < 0.0);
        let mut x = [c + 0.1; 6];
        x[3] = c - 0.1;
        assert!(cube.value(&x) > 0.0);
    }

    #[test]
    fn cube_gradient() {
        check_grad(&Cube::new(), &[0.3, 1.0, -0.5, 2.0, 0.1, 0.9], 1e-6);
    }

    #[test]
    fn rosen_gradient() {
        let x: Vec<f64> = (0..10).map(|i| (i as f64 * 0.37).sin()).collect();
        check_grad(&Rosen::default(), &x, 1e-5);
    }

    #[test]
    fn levy_gradient() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.61).cos() * 1.5).collect();
        check_grad(&Levy::default(), &x, 1e-5);
    }

    #[test]
    fn powell_gradient() {
        let x: Vec<f64> = (0..40).map(|i| (i as f64 * 0.23).sin() * 2.0).collect();
        check_grad(&Powell::default(), &x, 1e-4);
    }

    #[test]
    fn thresholded_cases_are_rare_near_origin() {
        // The origin must be safe for every synthetic case.
        assert!(Rosen::default().value(&[0.0; 10]) > 0.0);
        assert!(Levy::default().value(&[0.0; 20]) > 0.0);
        assert!(Powell::default().value(&vec![0.0; 40]) > 0.0);
        assert!(Cube::new().value(&[0.0; 6]) > 0.0);
    }

    #[test]
    fn dims_match_paper() {
        assert_eq!(Leaf.dim(), 2);
        assert_eq!(Cube::new().dim(), 6);
        assert_eq!(Rosen::default().dim(), 10);
        assert_eq!(Levy::default().dim(), 20);
        assert_eq!(Powell::default().dim(), 40);
    }
}
