//! 2-D visualization cases for the qualitative study (Figure 2 of the
//! paper).
//!
//! Figure 2(b) is exactly [`Leaf`](crate::Leaf); the paper does not give
//! closed forms for panels (c)–(e), so this module provides three shapes
//! in the same spirit — failure sets of different topology placed at the
//! tail of `p`: a thin ring, four petals, and a curved banana band.

use nofis_prob::LimitState;

/// A thin annulus of radius `R` and half-thickness `t` centered at the
/// origin: `g = | ‖x‖ − R | − t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ring {
    /// Ring radius.
    pub radius: f64,
    /// Half-thickness of the annulus.
    pub half_thickness: f64,
}

impl Default for Ring {
    fn default() -> Self {
        Ring {
            radius: 4.0,
            half_thickness: 0.15,
        }
    }
}

impl LimitState for Ring {
    fn dim(&self) -> usize {
        2
    }

    fn value(&self, x: &[f64]) -> f64 {
        let r = x[0].hypot(x[1]);
        (r - self.radius).abs() - self.half_thickness
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let r = x[0].hypot(x[1]).max(1e-12);
        let s = if r >= self.radius { 1.0 } else { -1.0 };
        (
            (r - self.radius).abs() - self.half_thickness,
            vec![s * x[0] / r, s * x[1] / r],
        )
    }

    fn name(&self) -> &str {
        "Ring"
    }
}

/// Four disks of radius 1 at `(±c, ±c)` — the four-fold analogue of the
/// two-leaf case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FourPetal {
    /// Center coordinate magnitude.
    pub center: f64,
}

impl Default for FourPetal {
    fn default() -> Self {
        FourPetal { center: 3.8 }
    }
}

impl LimitState for FourPetal {
    fn dim(&self) -> usize {
        2
    }

    fn value(&self, x: &[f64]) -> f64 {
        let c = self.center;
        let mut best = f64::INFINITY;
        for sx in [-1.0, 1.0] {
            for sy in [-1.0, 1.0] {
                let d = (x[0] - sx * c).powi(2) + (x[1] - sy * c).powi(2);
                best = best.min(d);
            }
        }
        best - 1.0
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let c = self.center;
        let mut best = f64::INFINITY;
        let mut grad = vec![0.0; 2];
        for sx in [-1.0, 1.0] {
            for sy in [-1.0, 1.0] {
                let dx = x[0] - sx * c;
                let dy = x[1] - sy * c;
                let d = dx * dx + dy * dy;
                if d < best {
                    best = d;
                    grad = vec![2.0 * dx, 2.0 * dy];
                }
            }
        }
        (best - 1.0, grad)
    }

    fn name(&self) -> &str {
        "FourPetal"
    }
}

/// A curved band along the parabola `x₂ = b − a x₁²`:
/// `g = | x₂ + a x₁² − b | − t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Banana {
    /// Parabola curvature.
    pub curvature: f64,
    /// Parabola offset (places the band in the tail).
    pub offset: f64,
    /// Half-thickness of the band.
    pub half_thickness: f64,
}

impl Default for Banana {
    fn default() -> Self {
        Banana {
            curvature: 0.5,
            offset: 5.0,
            half_thickness: 0.15,
        }
    }
}

impl LimitState for Banana {
    fn dim(&self) -> usize {
        2
    }

    fn value(&self, x: &[f64]) -> f64 {
        (x[1] + self.curvature * x[0] * x[0] - self.offset).abs() - self.half_thickness
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let t = x[1] + self.curvature * x[0] * x[0] - self.offset;
        let s = if t >= 0.0 { 1.0 } else { -1.0 };
        (
            t.abs() - self.half_thickness,
            vec![s * 2.0 * self.curvature * x[0], s],
        )
    }

    fn name(&self) -> &str {
        "Banana"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_autograd::check::{finite_difference, max_rel_error};

    fn check_grad(ls: &impl LimitState, pts: &[[f64; 2]]) {
        for x in pts {
            let (_, grad) = ls.value_grad(x);
            let fd = finite_difference(|p| ls.value(p), x, 1e-6);
            assert!(
                max_rel_error(&grad, &fd) < 1e-5,
                "{} gradient mismatch at {x:?}",
                ls.name()
            );
        }
    }

    #[test]
    fn ring_membership() {
        let r = Ring::default();
        assert!(r.value(&[4.0, 0.0]) < 0.0);
        assert!(r.value(&[0.0, -4.1]) < 0.0);
        assert!(r.value(&[0.0, 0.0]) > 0.0);
        assert!(r.value(&[5.0, 0.0]) > 0.0);
    }

    #[test]
    fn four_petal_membership() {
        let f = FourPetal::default();
        for p in [[3.8, 3.8], [-3.8, 3.8], [3.8, -3.8], [-3.8, -3.8]] {
            assert!(f.value(&p) < 0.0);
        }
        assert!(f.value(&[0.0, 0.0]) > 0.0);
    }

    #[test]
    fn banana_membership() {
        let b = Banana::default();
        assert!(b.value(&[0.0, 5.0]) < 0.0);
        assert!(b.value(&[2.0, 3.0]) < 0.0); // 3 + 0.5·4 = 5
        assert!(b.value(&[0.0, 0.0]) > 0.0);
    }

    #[test]
    fn gradients() {
        check_grad(&Ring::default(), &[[3.0, 1.0], [-2.0, -4.0]]);
        check_grad(&FourPetal::default(), &[[2.0, 3.0], [-1.0, -2.5]]);
        check_grad(&Banana::default(), &[[1.0, 2.0], [-2.0, 4.0]]);
    }
}
