//! The ten quantitative test cases of the NOFIS paper (Table 1) plus the
//! 2-D visualization cases of Figure 2.
//!
//! Every case implements [`nofis_prob::LimitState`] **with gradients**
//! (analytic, adjoint, or autograd-backed), because the NOFIS training
//! loss differentiates through `g`. Cases whose original simulators are
//! proprietary (SPICE testbenches, photonic solvers, ResNet18) are backed
//! by the from-scratch substrates in `nofis-circuit`, `nofis-photonics`
//! and `nofis-autograd`; DESIGN.md documents each substitution.
//!
//! | # | case | type | dim |
//! |---|------|------|-----|
//! | 1 | [`Leaf`] | synthetic | 2 |
//! | 2 | [`Cube`] | synthetic (analytic golden) | 6 |
//! | 3 | [`Rosen`] | synthetic | 10 |
//! | 4 | [`Levy`] | synthetic | 20 |
//! | 5 | [`Powell`] | synthetic | 40 |
//! | 6 | [`Opamp`] | MNA circuit | 5 |
//! | 7 | [`Oscillator`] | physics | 6 |
//! | 8 | [`ChargePump`] | behavioral circuit | 16 |
//! | 9 | [`YBranchCase`] | photonic BPM | 26 |
//! | 10 | [`NeuralNet`] | NN degradation | 62 |
//!
//! Use [`registry::all_cases`] to iterate them in Table 1 order.

#![deny(missing_docs)]

mod circuits;
mod oscillator;
mod photonic;
pub mod registry;
mod resnet;
mod synthetic;
mod twod;

pub use circuits::{ChargePump, Opamp};
pub use oscillator::Oscillator;
pub use photonic::YBranchCase;
pub use resnet::NeuralNet;
pub use synthetic::{Cube, Leaf, Levy, Powell, Rosen};
pub use twod::{Banana, FourPetal, Ring};
