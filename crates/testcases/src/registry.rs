//! Registry of the ten quantitative test cases of Table 1.

use crate::{
    ChargePump, Cube, Leaf, Levy, NeuralNet, Opamp, Oscillator, Powell, Rosen, YBranchCase,
};
use nofis_prob::LimitState;

/// A boxed, thread-safe limit state.
pub type BoxedLimitState = Box<dyn LimitState + Send + Sync>;

/// Metadata for one of the ten Table 1 test cases.
pub struct CaseEntry {
    /// Table row number (1-based, matching the paper's `#`).
    pub id: usize,
    /// Case name as printed in the paper.
    pub name: &'static str,
    /// Variation-space dimensionality.
    pub dim: usize,
    /// Golden failure probability used by the log-error metric.
    pub golden_pr: f64,
    /// Constructs a fresh limit state.
    pub make: fn() -> BoxedLimitState,
}

impl std::fmt::Debug for CaseEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaseEntry")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("dim", &self.dim)
            .field("golden_pr", &self.golden_pr)
            .finish()
    }
}

/// All ten test cases in Table 1 order.
///
/// # Example
///
/// ```
/// use nofis_testcases::registry::all_cases;
///
/// let cases = all_cases();
/// assert_eq!(cases.len(), 10);
/// assert_eq!(cases[0].name, "Leaf");
/// let ls = (cases[0].make)();
/// assert_eq!(ls.dim(), 2);
/// ```
pub fn all_cases() -> Vec<CaseEntry> {
    vec![
        CaseEntry {
            id: 1,
            name: "Leaf",
            dim: 2,
            golden_pr: Leaf::GOLDEN_PR,
            make: || Box::new(Leaf),
        },
        CaseEntry {
            id: 2,
            name: "Cube",
            dim: 6,
            golden_pr: Cube::GOLDEN_PR,
            make: || Box::new(Cube::new()),
        },
        CaseEntry {
            id: 3,
            name: "Rosen",
            dim: 10,
            golden_pr: Rosen::GOLDEN_PR,
            make: || Box::new(Rosen::default()),
        },
        CaseEntry {
            id: 4,
            name: "Levy",
            dim: 20,
            golden_pr: Levy::GOLDEN_PR,
            make: || Box::new(Levy::default()),
        },
        CaseEntry {
            id: 5,
            name: "Powell",
            dim: 40,
            golden_pr: Powell::GOLDEN_PR,
            make: || Box::new(Powell::default()),
        },
        CaseEntry {
            id: 6,
            name: "Opamp",
            dim: 5,
            golden_pr: Opamp::GOLDEN_PR,
            make: || Box::new(Opamp::default()),
        },
        CaseEntry {
            id: 7,
            name: "Oscillator",
            dim: 6,
            golden_pr: Oscillator::GOLDEN_PR,
            make: || Box::new(Oscillator),
        },
        CaseEntry {
            id: 8,
            name: "Charge Pump",
            dim: 16,
            golden_pr: ChargePump::GOLDEN_PR,
            make: || Box::new(ChargePump::default()),
        },
        CaseEntry {
            id: 9,
            name: "Y-branch",
            dim: 26,
            golden_pr: YBranchCase::GOLDEN_PR,
            make: || Box::new(YBranchCase::default()),
        },
        CaseEntry {
            id: 10,
            name: "ResNet18",
            dim: 62,
            golden_pr: NeuralNet::GOLDEN_PR,
            make: || Box::new(NeuralNet::default()),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_match_table_one() {
        let dims: Vec<usize> = all_cases().iter().map(|c| c.dim).collect();
        assert_eq!(dims, vec![2, 6, 10, 20, 40, 5, 6, 16, 26, 62]);
    }

    #[test]
    fn constructed_cases_report_consistent_dims() {
        for case in all_cases() {
            let ls = (case.make)();
            assert_eq!(ls.dim(), case.dim, "case {}", case.name);
            assert!(case.golden_pr > 0.0 && case.golden_pr < 1e-3);
        }
    }

    #[test]
    fn all_cases_safe_at_origin() {
        for case in all_cases() {
            let ls = (case.make)();
            let origin = vec![0.0; case.dim];
            assert!(
                ls.value(&origin) > 0.0,
                "case {} fails at the origin",
                case.name
            );
        }
    }
}
