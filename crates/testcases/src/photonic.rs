//! Test case #9 — photonic Y-branch transmission under boundary
//! deformation (D = 26).

use nofis_photonics::{BpmConfig, BpmSolver, YBranch};
use nofis_prob::LimitState;

/// The Y-branch limit state: `g(x) = T(x) − spec`, failing when the power
/// transmission drops below the spec (32% in the paper).
///
/// Each evaluation runs the Crank–Nicolson BPM; gradients add one adjoint
/// sweep. The default grid is deliberately coarse (61 × 80) so Table 1
/// budgets stay laptop-scale — the physics (mode evolution through the
/// junction, radiation loss under sidewall deformation) is unchanged, as
/// the test suite's grid-refinement check confirms.
#[derive(Debug, Clone, PartialEq)]
pub struct YBranchCase {
    solver: BpmSolver,
    spec: f64,
}

impl Default for YBranchCase {
    fn default() -> Self {
        YBranchCase::with_spec(Self::SPEC)
    }
}

impl YBranchCase {
    /// Transmission spec, calibrated to 35.6% for our BPM device (the paper uses 32% on its proprietary solver; our nominal transmission differs, so the spec is tuned to match the paper golden probability).
    pub const SPEC: f64 = 0.3563;
    /// Golden failure probability at the paper spec with the calibrated
    /// deformation amplitude (see EXPERIMENTS.md).
    pub const GOLDEN_PR: f64 = 4.27e-5;
    /// Number of Fourier deformation modes (the paper's dimension).
    pub const DIM: usize = 26;

    /// Creates the case with an explicit transmission spec.
    pub fn with_spec(spec: f64) -> Self {
        let solver = BpmSolver::new(
            YBranch::new(Self::DIM),
            BpmConfig {
                nx: 61,
                nz: 80,
                ..Default::default()
            },
        );
        YBranchCase { solver, spec }
    }

    /// Borrows the underlying BPM solver (for visualization).
    pub fn solver(&self) -> &BpmSolver {
        &self.solver
    }

    /// The transmission spec.
    pub fn spec(&self) -> f64 {
        self.spec
    }
}

/// `g` is reported in percentage points of transmission.
const YB_UNIT: f64 = 100.0;

impl LimitState for YBranchCase {
    fn dim(&self) -> usize {
        Self::DIM
    }

    fn value(&self, x: &[f64]) -> f64 {
        let run = self.solver.run(x).expect("CN-BPM system is well-posed");
        (run.transmission - self.spec) * YB_UNIT
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let (t, grad) = self
            .solver
            .run_with_gradient(x)
            .expect("CN-BPM system is well-posed");
        let grad = grad.into_iter().map(|g| g * YB_UNIT).collect();
        ((t - self.spec) * YB_UNIT, grad)
    }

    fn name(&self) -> &str {
        "Y-branch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_safe() {
        let yb = YBranchCase::default();
        let g = yb.value(&vec![0.0; 26]);
        assert!(g > 0.0, "nominal transmission margin {g}");
        assert_eq!(yb.dim(), 26);
    }

    #[test]
    fn value_and_grad_agree() {
        let yb = YBranchCase::default();
        let x: Vec<f64> = (0..26).map(|i| 0.5 * (i as f64 * 0.31).sin()).collect();
        let (v, grad) = yb.value_grad(&x);
        assert!((v - yb.value(&x)).abs() < 1e-12);
        assert_eq!(grad.len(), 26);
        assert!(grad.iter().any(|g| g.abs() > 0.0));
    }

    #[test]
    fn coarse_grid_tracks_fine_grid() {
        // The default (coarse) grid must agree with a 2× finer grid on the
        // nominal transmission to a few percent.
        let coarse = YBranchCase::default();
        let fine = BpmSolver::new(
            YBranch::new(26),
            BpmConfig {
                nx: 121,
                nz: 160,
                ..Default::default()
            },
        );
        let zero = vec![0.0; 26];
        let tc = coarse.value(&zero) / 100.0 + YBranchCase::SPEC;
        let tf = fine.run(&zero).unwrap().transmission;
        assert!(
            (tc - tf).abs() < 0.06,
            "coarse {tc} vs fine {tf} nominal transmission"
        );
    }
}
