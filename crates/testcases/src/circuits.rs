//! Test cases #6 (Opamp) and #8 (Charge Pump), wrapping the MNA and
//! behavioral benches from `nofis-circuit`.

use nofis_circuit::{ChargePumpBench, OpampBench};
use nofis_prob::LimitState;

/// Test case #6 — Opamp gain under process variation (D = 5).
///
/// `g(x) = Gain_dB(x) − spec`: the op-amp fails its spec when the
/// small-signal gain drops below `spec` dB (the paper uses 72 dB on its
/// three-stage amplifier; our two-stage OTA nominal gain is ≈ 78 dB and
/// the calibrated spec puts the failure probability near the paper's
/// `1.3e-5`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Opamp {
    bench: OpampBench,
    spec_db: f64,
}

impl Default for Opamp {
    fn default() -> Self {
        Opamp::with_spec(Self::CALIBRATED_SPEC_DB)
    }
}

impl Opamp {
    /// Calibrated gain spec in dB (see EXPERIMENTS.md).
    pub const CALIBRATED_SPEC_DB: f64 = 72.96;
    /// Golden failure probability measured at the calibrated spec.
    pub const GOLDEN_PR: f64 = 1.30e-5;

    /// Creates the case with an explicit gain spec.
    pub fn with_spec(spec_db: f64) -> Self {
        Opamp {
            bench: OpampBench::new(),
            spec_db,
        }
    }

    /// The gain spec in dB.
    pub fn spec_db(&self) -> f64 {
        self.spec_db
    }
}

impl LimitState for Opamp {
    fn dim(&self) -> usize {
        OpampBench::DIM
    }

    fn value(&self, x: &[f64]) -> f64 {
        self.bench
            .gain_db(x)
            .expect("opamp small-signal analysis is well-posed")
            - self.spec_db
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let (gain, grad) = self
            .bench
            .gain_db_grad(x)
            .expect("opamp small-signal analysis is well-posed");
        (gain - self.spec_db, grad)
    }

    fn name(&self) -> &str {
        "Opamp"
    }
}

/// Test case #8 — Charge pump current mismatch (D = 16).
///
/// `g(x) = spec − |I_up(x) − I_down(x)|`: the charge pump fails when the
/// output current mismatch exceeds the spec (370 µA in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargePump {
    bench: ChargePumpBench,
    spec_amps: f64,
}

impl Default for ChargePump {
    fn default() -> Self {
        ChargePump::with_spec(Self::SPEC_AMPS)
    }
}

impl ChargePump {
    /// Mismatch spec from the paper: 370 µA.
    pub const SPEC_AMPS: f64 = 370e-6;
    /// Golden failure probability at the paper spec with the calibrated
    /// device sigmas (see EXPERIMENTS.md).
    pub const GOLDEN_PR: f64 = 5.75e-6;

    /// Creates the case with an explicit mismatch spec in amperes.
    pub fn with_spec(spec_amps: f64) -> Self {
        ChargePump {
            bench: ChargePumpBench::new(),
            spec_amps,
        }
    }

    /// The mismatch spec in amperes.
    pub fn spec_amps(&self) -> f64 {
        self.spec_amps
    }
}

/// `g` is reported in units of 100 µA (natural circuit units) so the
/// tempered NOFIS loss sees O(1) values rather than O(1e-4) amps.
const CP_UNIT: f64 = 1e4;

impl LimitState for ChargePump {
    fn dim(&self) -> usize {
        ChargePumpBench::DIM
    }

    fn value(&self, x: &[f64]) -> f64 {
        let (mismatch, _) = self.bench.abs_mismatch_grad(x);
        (self.spec_amps - mismatch) * CP_UNIT
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let (mismatch, mut grad) = self.bench.abs_mismatch_grad(x);
        for g in &mut grad {
            *g = -*g * CP_UNIT;
        }
        ((self.spec_amps - mismatch) * CP_UNIT, grad)
    }

    fn name(&self) -> &str {
        "ChargePump"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_autograd::check::{finite_difference, max_rel_error};

    #[test]
    fn opamp_nominal_is_safe() {
        let op = Opamp::default();
        assert!(op.value(&[0.0; 5]) > 0.0);
        assert_eq!(op.dim(), 5);
    }

    #[test]
    fn opamp_gradient_consistency() {
        let op = Opamp::default();
        let x = [0.5, -1.0, 0.2, 0.8, -0.3];
        let (v, grad) = op.value_grad(&x);
        assert!((v - op.value(&x)).abs() < 1e-12);
        let fd = finite_difference(|p| op.value(p), &x, 1e-6);
        assert!(max_rel_error(&grad, &fd) < 1e-5);
    }

    #[test]
    fn chargepump_nominal_is_safe() {
        let cp = ChargePump::default();
        assert!(cp.value(&[0.0; 16]) > 0.0);
        assert_eq!(cp.dim(), 16);
    }

    #[test]
    fn chargepump_gradient_consistency() {
        let cp = ChargePump::default();
        let x: Vec<f64> = (0..16).map(|i| 0.4 * (i as f64 * 0.9).sin()).collect();
        let (v, grad) = cp.value_grad(&x);
        assert!((v - cp.value(&x)).abs() < 1e-12);
        let fd = finite_difference(|p| cp.value(p), &x, 1e-6);
        assert!(max_rel_error(&grad, &fd) < 1e-5);
    }

    #[test]
    fn chargepump_fails_under_gross_mismatch() {
        let cp = ChargePump::default();
        let mut x = [0.0; 16];
        // Strong widening of the UP output device + narrowing of DOWN.
        x[6] = 5.0;
        x[14] = -5.0;
        assert!(cp.value(&x) < cp.value(&[0.0; 16]));
    }
}
