//! Test case #7 — a physical nonlinear oscillator under parameter
//! variation (D = 6).
//!
//! This is the standard undamped two-spring oscillator benchmark from the
//! active-learning/line-sampling reliability literature (Song et al.,
//! MSSP 2021 — the paper's reference [18]): a mass `m` on springs `c₁, c₂`
//! hit by a rectangular force pulse of magnitude `F₁` and duration `t₁`
//! fails when its peak displacement exceeds `3r`. The closed-form peak is
//! `(2F₁ / (m ω₀²)) · |sin(ω₀ t₁ / 2)|` with `ω₀ = √((c₁+c₂)/m)`; the test
//! suite verifies it against direct RK4 integration of the equation of
//! motion.
//!
//! The six standard-Gaussian inputs map to physical parameters through
//! independent Gaussians `pᵢ = µᵢ + σᵢ xᵢ`; the pulse statistics are tuned
//! so the failure probability sits near the paper's `1.81e-6`.

use nofis_prob::LimitState;

/// Per-parameter `(mean, sigma)` of the physical parameters
/// `[m, c1, c2, r, F1, t1]`.
pub const PARAMS: [(f64, f64); 6] = [
    (1.0, 0.05),
    (1.0, 0.10),
    (0.10, 0.01),
    (0.365, 0.05),
    (0.35, 0.06),
    (1.0, 0.20),
];

/// The oscillator limit state.
///
/// # Example
///
/// ```
/// use nofis_prob::LimitState;
/// use nofis_testcases::Oscillator;
///
/// let osc = Oscillator::default();
/// assert_eq!(osc.dim(), 6);
/// assert!(osc.value(&[0.0; 6]) > 0.0); // nominal design is safe
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Oscillator;

impl Oscillator {
    /// Calibrated margin offset aligning the golden probability with the
    /// paper's value (see EXPERIMENTS.md).
    pub const MARGIN_OFFSET: f64 = 0.0423;
    /// Golden failure probability at the tuned parameters (measured by
    /// large-budget Monte Carlo during calibration; paper: 1.81e-6).
    pub const GOLDEN_PR: f64 = 1.81e-6;

    /// Maps a standard-Gaussian point to positive physical parameters.
    fn physical(x: &[f64]) -> [f64; 6] {
        let mut p = [0.0; 6];
        for i in 0..6 {
            let (mu, sigma) = PARAMS[i];
            // Clamp far tails so m, c1+c2, t1 stay physical.
            p[i] = (mu + sigma * x[i]).max(0.05 * mu);
        }
        p
    }

    /// The closed-form peak displacement given the physical parameters.
    pub fn peak_displacement(p: &[f64; 6]) -> f64 {
        let [m, c1, c2, _r, f1, t1] = *p;
        let omega = ((c1 + c2) / m).sqrt();
        (2.0 * f1 / (m * omega * omega)) * (omega * t1 / 2.0).sin().abs()
    }

    /// Integrates the equation of motion `m ẍ = F(t) − (c₁+c₂)x` with RK4
    /// and returns the numerically observed peak displacement (used by the
    /// test suite to validate the closed form).
    pub fn peak_displacement_rk4(p: &[f64; 6], steps: usize) -> f64 {
        let [m, c1, c2, _r, f1, t1] = *p;
        let omega = ((c1 + c2) / m).sqrt();
        // Integrate over the pulse plus one free period.
        let t_end = t1 + 2.0 * std::f64::consts::PI / omega;
        let mut peak: f64 = 0.0;
        let _ = nofis_linalg::ode::rk4_integrate(
            0.0,
            t_end,
            &[0.0, 0.0],
            steps,
            |t, y, dy| {
                let force = if t < t1 { f1 } else { 0.0 };
                dy[0] = y[1];
                dy[1] = (force - (c1 + c2) * y[0]) / m;
            },
            |_, y| peak = peak.max(y[0].abs()),
        )
        .expect("valid integration bounds");
        peak
    }
}

impl LimitState for Oscillator {
    fn dim(&self) -> usize {
        6
    }

    fn value(&self, x: &[f64]) -> f64 {
        let p = Self::physical(x);
        // Scaled ×10 so the margin is O(1)-O(10) for the tempered loss.
        10.0 * (3.0 * p[3] - Self::peak_displacement(&p) + Self::MARGIN_OFFSET)
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let p = Self::physical(x);
        let [m, c1, c2, r, f1, t1] = p;
        let k = c1 + c2;
        let omega = (k / m).sqrt();
        let half = omega * t1 / 2.0;
        let s = half.sin();
        let sign_s = if s >= 0.0 { 1.0 } else { -1.0 };
        // peak = 2 f1 / k · |sin(ω t1/2)|   (m ω² = k)
        let peak = (2.0 * f1 / k) * s.abs();
        let g = 3.0 * r - peak + Self::MARGIN_OFFSET;

        // Partials of peak w.r.t. physical parameters.
        let dpeak_df1 = (2.0 / k) * s.abs();
        let dpeak_dt1 = (2.0 * f1 / k) * sign_s * half.cos() * (omega / 2.0);
        // dω/dm = -ω/(2m); dω/dc = 1/(2 m ω) = ω/(2k).
        let dhalf_dm = -(omega / (2.0 * m)) * t1 / 2.0;
        let dhalf_dc = (omega / (2.0 * k)) * t1 / 2.0;
        let dpeak_dm = (2.0 * f1 / k) * sign_s * half.cos() * dhalf_dm;
        let dpeak_dc =
            -(2.0 * f1 / (k * k)) * s.abs() + (2.0 * f1 / k) * sign_s * half.cos() * dhalf_dc;

        let dphys = [
            -dpeak_dm,  // dg/dm
            -dpeak_dc,  // dg/dc1
            -dpeak_dc,  // dg/dc2
            3.0,        // dg/dr
            -dpeak_df1, // dg/df1
            -dpeak_dt1, // dg/dt1
        ];
        let mut grad = vec![0.0; 6];
        for i in 0..6 {
            let (mu, sigma) = PARAMS[i];
            let active = if mu + sigma * x[i] > 0.05 * mu {
                1.0
            } else {
                0.0
            };
            grad[i] = 10.0 * dphys[i] * sigma * active;
        }
        (10.0 * g, grad)
    }

    fn name(&self) -> &str {
        "Oscillator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_autograd::check::{finite_difference, max_rel_error};

    #[test]
    fn closed_form_matches_rk4() {
        for x in [
            [0.0; 6],
            [1.0, -1.0, 0.5, 0.0, 2.0, -0.5],
            [-2.0, 1.5, -1.0, 1.0, 3.0, 2.0],
        ] {
            let p = Oscillator::physical(&x);
            let analytic = Oscillator::peak_displacement(&p);
            let numeric = Oscillator::peak_displacement_rk4(&p, 20_000);
            assert!(
                (analytic - numeric).abs() < 2e-4 * analytic.max(1e-6),
                "analytic {analytic} vs rk4 {numeric}"
            );
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let osc = Oscillator;
        for x in [
            [0.2, -0.4, 0.6, 0.1, 1.2, -0.8],
            [-1.0, 0.5, -0.2, -0.3, 2.5, 1.4],
        ] {
            let (_, grad) = osc.value_grad(&x);
            let fd = finite_difference(|p| osc.value(p), &x, 1e-6);
            let err = max_rel_error(&grad, &fd);
            assert!(err < 1e-5, "gradient mismatch {err}");
        }
    }

    #[test]
    fn failure_requires_large_force() {
        let osc = Oscillator;
        // Push F1 high and r low: should fail.
        let x = [0.0, 0.0, 0.0, -4.0, 6.0, 0.0];
        assert!(osc.value(&x) < 0.2, "g = {}", osc.value(&x));
        // Nominal and mild perturbations are safe.
        assert!(osc.value(&[1.0, 1.0, -1.0, 0.5, 1.0, 1.0]) > 0.0);
    }
}
