//! Test case #10 — neural-network performance degradation under parameter
//! variation (D = 62).
//!
//! The paper perturbs ResNet18 weights and measures accuracy degradation.
//! A GPU-scale vision model is far outside this reproduction's compute
//! envelope, so we substitute the same *phenomenon* at laptop scale: a
//! fixed, deterministically constructed MLP ("deployed network") whose 62
//! most significant first-layer weights are perturbed by the variation
//! vector, with performance measured as the mean-squared output deviation
//! from the unperturbed network over a fixed probe batch. Failure is
//! deviation exceeding a calibrated threshold — "the network's behaviour
//! drifted too far under parameter noise", the differentiable analogue of
//! an accuracy drop.

use nofis_autograd::{Graph, ParamStore, Tensor};
use nofis_prob::LimitState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Input feature count of the surrogate network.
const IN_DIM: usize = 8;
/// First hidden width.
const H1: usize = 16;
/// Second hidden width.
const H2: usize = 8;
/// Probe batch size.
const PROBE: usize = 64;
/// Per-weight perturbation scale.
const SIGMA_W: f64 = 0.09;
/// Deterministic construction seed.
const SEED: u64 = 0x5eed_ca5e;

/// The neural-network degradation limit state.
///
/// # Example
///
/// ```
/// use nofis_prob::LimitState;
/// use nofis_testcases::NeuralNet;
///
/// let nn = NeuralNet::default();
/// assert_eq!(nn.dim(), 62);
/// assert!(nn.value(&vec![0.0; 62]) > 0.0); // unperturbed net is itself
/// ```
#[derive(Debug, Clone)]
pub struct NeuralNet {
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
    w3: Tensor,
    b3: Tensor,
    probe: Tensor,
    reference: Tensor,
    mask: Tensor,
    threshold: f64,
}

impl Default for NeuralNet {
    fn default() -> Self {
        NeuralNet::with_threshold(Self::CALIBRATED_THRESHOLD)
    }
}

impl NeuralNet {
    /// Number of perturbed weights (the paper's variation dimension).
    pub const DIM: usize = 62;
    /// Calibrated deviation threshold (see EXPERIMENTS.md).
    pub const CALIBRATED_THRESHOLD: f64 = 0.0122;
    /// Golden failure probability at the calibrated threshold.
    pub const GOLDEN_PR: f64 = 6.00e-5;

    /// Creates the case with an explicit deviation threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(SEED);
        let mut sample = |rows: usize, cols: usize, scale: f64| {
            let data: Vec<f64> = (0..rows * cols)
                .map(|_| rng.gen_range(-1.0..1.0) * scale)
                .collect();
            Tensor::from_vec(rows, cols, data)
        };
        let w1 = sample(IN_DIM, H1, (1.0 / IN_DIM as f64).sqrt() * 1.7);
        let b1 = sample(1, H1, 0.3);
        let w2 = sample(H1, H2, (1.0 / H1 as f64).sqrt() * 1.7);
        let b2 = sample(1, H2, 0.3);
        let w3 = sample(H2, 1, (1.0 / H2 as f64).sqrt() * 1.7);
        let b3 = sample(1, 1, 0.1);
        let probe = sample(PROBE, IN_DIM, 1.0);
        // Mask: the first DIM entries of W1 in row-major order.
        let mask = Tensor::from_fn(
            IN_DIM,
            H1,
            |r, c| {
                if r * H1 + c < Self::DIM {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let mut case = NeuralNet {
            w1,
            b1,
            w2,
            b2,
            w3,
            b3,
            probe,
            reference: Tensor::zeros(PROBE, 1),
            mask,
            threshold,
        };
        case.reference = case.forward_plain(&Tensor::zeros(IN_DIM, H1));
        case
    }

    /// The deviation threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    fn perturbation_matrix(&self, x: &[f64]) -> Tensor {
        let mut p = Tensor::zeros(IN_DIM, H1);
        for (k, &v) in x.iter().enumerate() {
            let (r, c) = (k / H1, k % H1);
            p[(r, c)] = v;
        }
        p
    }

    /// Plain forward pass with a first-layer perturbation matrix.
    fn forward_plain(&self, delta: &Tensor) -> Tensor {
        let mut w1 = self.w1.clone();
        w1.axpy(SIGMA_W, delta);
        let h1 = add_bias(&self.probe.matmul(&w1), &self.b1).map(f64::tanh);
        let h2 = add_bias(&h1.matmul(&self.w2), &self.b2).map(f64::tanh);
        add_bias(&h2.matmul(&self.w3), &self.b3)
    }

    fn deviation(&self, x: &[f64]) -> f64 {
        let delta = self.perturbation_matrix(x);
        let y = self.forward_plain(&delta);
        y.zip_map(&self.reference, |a, b| (a - b) * (a - b)).mean()
    }
}

fn add_bias(x: &Tensor, b: &Tensor) -> Tensor {
    Tensor::from_fn(x.rows(), x.cols(), |r, c| x[(r, c)] + b[(0, c)])
}

/// `g` is reported in milli-deviation units so the tempered loss sees
/// O(1) values.
const NN_UNIT: f64 = 1e3;

impl LimitState for NeuralNet {
    fn dim(&self) -> usize {
        Self::DIM
    }

    fn value(&self, x: &[f64]) -> f64 {
        (self.threshold - self.deviation(x)) * NN_UNIT
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        // Differentiable deviation via the autograd tape.
        let mut store = ParamStore::new();
        let p = store.add(self.perturbation_matrix(x));
        let mut g = Graph::new();
        let pv = store.inject(&mut g, p);
        let mask = g.constant(self.mask.clone());
        let masked = g.mul(pv, mask);
        let scaled = g.scale(masked, SIGMA_W);
        let w1_base = g.constant(self.w1.clone());
        let w1 = g.add(w1_base, scaled);

        let probe = g.constant(self.probe.clone());
        let b1 = g.constant(self.b1.clone());
        let w2 = g.constant(self.w2.clone());
        let b2 = g.constant(self.b2.clone());
        let w3 = g.constant(self.w3.clone());
        let b3 = g.constant(self.b3.clone());
        let reference = g.constant(self.reference.clone());

        let z1 = g.matmul(probe, w1);
        let z1b = g.add_row(z1, b1);
        let h1 = g.tanh(z1b);
        let z2 = g.matmul(h1, w2);
        let z2b = g.add_row(z2, b2);
        let h2 = g.tanh(z2b);
        let z3 = g.matmul(h2, w3);
        let y = g.add_row(z3, b3);

        let diff = g.sub(y, reference);
        let sq = g.square(diff);
        let dev = g.mean_all(sq);
        g.backward(dev);

        let dev_value = g.value(dev).item();
        let (_, grad_p) = g.param_grads().remove(0);
        let mut grad = vec![0.0; Self::DIM];
        for (k, gv) in grad.iter_mut().enumerate() {
            let (r, c) = (k / H1, k % H1);
            *gv = -grad_p[(r, c)] * NN_UNIT;
        }
        ((self.threshold - dev_value) * NN_UNIT, grad)
    }

    fn name(&self) -> &str {
        "ResNet18 (surrogate)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_autograd::check::{finite_difference, max_rel_error};

    #[test]
    fn construction_is_deterministic() {
        let a = NeuralNet::default();
        let b = NeuralNet::default();
        let x: Vec<f64> = (0..62).map(|i| (i as f64 * 0.17).sin()).collect();
        assert_eq!(a.value(&x), b.value(&x));
    }

    #[test]
    fn zero_perturbation_has_zero_deviation() {
        let nn = NeuralNet::default();
        assert!((nn.value(&vec![0.0; 62]) - 1e3 * nn.threshold()).abs() < 1e-9);
    }

    #[test]
    fn larger_perturbations_deviate_more() {
        let nn = NeuralNet::default();
        let small: Vec<f64> = vec![0.5; 62];
        let large: Vec<f64> = vec![3.0; 62];
        assert!(nn.value(&small) > nn.value(&large));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let nn = NeuralNet::default();
        let x: Vec<f64> = (0..62).map(|i| 0.8 * (i as f64 * 0.37).cos()).collect();
        let (v, grad) = nn.value_grad(&x);
        assert!((v - nn.value(&x)).abs() < 1e-12);
        let fd = finite_difference(|p| nn.value(p), &x, 1e-5);
        let err = max_rel_error(&grad, &fd);
        assert!(err < 1e-6, "gradient mismatch {err}");
    }

    #[test]
    fn dim_is_62() {
        assert_eq!(NeuralNet::default().dim(), 62);
    }
}
