use nofis_autograd::ParamStore;
use nofis_flows::RealNvp;
use nofis_prob::Proposal;
use rand::RngCore;

/// Adapts a (prefix of a) trained [`RealNvp`] flow into a
/// [`Proposal`] usable with
/// [`importance_sampling`](nofis_prob::importance_sampling).
///
/// NOFIS's final estimator uses the full-depth flow; intermediate depths
/// expose the stage proposals `q_{mK}` for visualization and diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct FlowProposal<'a> {
    flow: &'a RealNvp,
    store: &'a ParamStore,
    depth: usize,
}

impl<'a> FlowProposal<'a> {
    /// Wraps the first `depth` layers of `flow` as a proposal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or exceeds `flow.n_layers()`.
    pub fn new(flow: &'a RealNvp, store: &'a ParamStore, depth: usize) -> Self {
        assert!(
            depth >= 1 && depth <= flow.n_layers(),
            "depth {depth} out of range 1..={}",
            flow.n_layers()
        );
        FlowProposal { flow, store, depth }
    }

    /// The prefix depth this proposal evaluates.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl Proposal for FlowProposal<'_> {
    fn dim(&self) -> usize {
        self.flow.dim()
    }

    fn sample(&self, mut rng: &mut dyn RngCore) -> Vec<f64> {
        self.flow.sample(self.store, self.depth, &mut rng).0
    }

    fn log_density(&self, x: &[f64]) -> f64 {
        self.flow.log_density(self.store, x, self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_prob::{importance_sampling, LimitState, StandardGaussian};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Everything;
    impl LimitState for Everything {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, _: &[f64]) -> f64 {
            -1.0 // always fails: P = 1
        }
    }

    #[test]
    fn identity_flow_proposal_estimates_total_mass() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let flow = RealNvp::new(&mut store, 2, 4, 8, 2.0, &mut rng);
        let proposal = FlowProposal::new(&flow, &store, 4);
        let p = StandardGaussian::new(2);
        let r = importance_sampling(&Everything, 0.0, &proposal, &p, 500, &mut rng);
        // Identity flow => q = p => all weights are exactly 1.
        assert!((r.estimate - 1.0).abs() < 1e-10);
        assert_eq!(r.hits, 500);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_depth() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let flow = RealNvp::new(&mut store, 2, 4, 8, 2.0, &mut rng);
        let _ = FlowProposal::new(&flow, &store, 5);
    }
}
