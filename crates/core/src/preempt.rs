//! Cooperative preemption of training runs.
//!
//! A supervisor (the `nofis-jobs` deadline watcher, a graceful-shutdown
//! handler) cannot safely stop a training run from outside — tearing a
//! thread down mid-minibatch would corrupt nothing durable but would lose
//! the run. Instead it *requests* preemption on a shared [`PreemptToken`];
//! the training loop polls the token at every minibatch boundary (the same
//! place mid-stage checkpoints are written) and, when a request is
//! pending, force-writes a checkpoint and returns
//! [`NofisError::Preempted`](crate::NofisError::Preempted). Resuming with
//! [`Nofis::run_or_resume`](crate::Nofis::run_or_resume) then finishes the
//! run bitwise-identically to an uninterrupted one — preemption reuses the
//! exact crash-recovery machinery of DESIGN.md §11, so it adds no new
//! state to the determinism contract.
//!
//! The token reaches the loop through a thread-local scope ([`attach`])
//! rather than a parameter: `Nofis::run` / `run_or_resume` keep their
//! public signatures, and a supervisor wraps the call site:
//!
//! ```
//! use nofis_core::preempt::{self, PreemptReason, PreemptToken};
//!
//! let token = PreemptToken::new();
//! let watcher = token.clone(); // hand this to the deadline thread
//! let _scope = preempt::attach(&token);
//! // ... run training on this thread; `watcher.request(...)` from any
//! // other thread makes it stop at the next minibatch boundary.
//! # watcher.request(PreemptReason::Deadline);
//! # assert_eq!(token.requested(), Some(PreemptReason::Deadline));
//! ```
//!
//! Estimation (the fallback ladder) is not preemptible: it runs after all
//! training finished, is short relative to training, and has no
//! checkpointable mid-state — a deadline that fires during estimation
//! lets the estimate complete (a small grace period by design).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Why a run is being asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptReason {
    /// The run's wall-clock deadline expired.
    Deadline,
    /// The process (or supervising runtime) is shutting down gracefully.
    Shutdown,
}

impl PreemptReason {
    /// Stable machine-readable name (used in telemetry fields and
    /// [`NofisError::Preempted`](crate::NofisError::Preempted)`::reason`).
    pub fn as_str(self) -> &'static str {
        match self {
            PreemptReason::Deadline => "deadline",
            PreemptReason::Shutdown => "shutdown",
        }
    }
}

const REASON_NONE: u8 = 0;
const REASON_DEADLINE: u8 = 1;
const REASON_SHUTDOWN: u8 = 2;

/// A shared, clonable preemption flag. Clones observe the same request;
/// the first [`PreemptToken::request`] wins (a deadline that fires during
/// shutdown keeps the reason it was first stopped for).
#[derive(Debug, Clone, Default)]
pub struct PreemptToken {
    flag: Arc<AtomicU8>,
}

impl PreemptToken {
    /// A fresh token with no request pending.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests preemption. Idempotent; the first reason sticks.
    pub fn request(&self, reason: PreemptReason) {
        let value = match reason {
            PreemptReason::Deadline => REASON_DEADLINE,
            PreemptReason::Shutdown => REASON_SHUTDOWN,
        };
        let _ = self
            .flag
            .compare_exchange(REASON_NONE, value, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// The pending request, if any.
    pub fn requested(&self) -> Option<PreemptReason> {
        match self.flag.load(Ordering::SeqCst) {
            REASON_DEADLINE => Some(PreemptReason::Deadline),
            REASON_SHUTDOWN => Some(PreemptReason::Shutdown),
            _ => None,
        }
    }

    /// Clears any pending request (a retry of a preempted attempt starts
    /// clean).
    pub fn clear(&self) {
        self.flag.store(REASON_NONE, Ordering::SeqCst);
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<PreemptToken>> = const { RefCell::new(Vec::new()) };
}

/// Scope guard returned by [`attach`]; dropping it detaches the token
/// (and any tokens attached after it on this thread).
#[must_use = "the token detaches when the guard drops"]
pub struct PreemptScope {
    restore_len: usize,
}

impl Drop for PreemptScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.borrow_mut().truncate(self.restore_len));
    }
}

/// Attaches `token` to the current thread: training loops run on this
/// thread observe its requests until the returned scope drops. Scopes
/// nest; the innermost attached token is the one polled.
pub fn attach(token: &PreemptToken) -> PreemptScope {
    CURRENT.with(|c| {
        let mut stack = c.borrow_mut();
        let restore_len = stack.len();
        stack.push(token.clone());
        PreemptScope { restore_len }
    })
}

/// The pending request on the innermost attached token, if any. This is
/// the training loop's poll — one thread-local read plus one atomic load,
/// and `None` forever when no supervisor attached a token.
pub(crate) fn current_requested() -> Option<PreemptReason> {
    CURRENT.with(|c| c.borrow().last().and_then(PreemptToken::requested))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_request_wins_and_clear_resets() {
        let token = PreemptToken::new();
        assert_eq!(token.requested(), None);
        token.request(PreemptReason::Deadline);
        token.request(PreemptReason::Shutdown);
        assert_eq!(token.requested(), Some(PreemptReason::Deadline));
        token.clear();
        assert_eq!(token.requested(), None);
        token.request(PreemptReason::Shutdown);
        assert_eq!(token.requested(), Some(PreemptReason::Shutdown));
    }

    #[test]
    fn clones_share_the_flag_across_threads() {
        let token = PreemptToken::new();
        let remote = token.clone();
        std::thread::spawn(move || remote.request(PreemptReason::Deadline))
            .join()
            .unwrap();
        assert_eq!(token.requested(), Some(PreemptReason::Deadline));
    }

    #[test]
    fn attach_scopes_nest_and_detach() {
        assert_eq!(current_requested(), None);
        let outer = PreemptToken::new();
        let inner = PreemptToken::new();
        let _s1 = attach(&outer);
        outer.request(PreemptReason::Shutdown);
        assert_eq!(current_requested(), Some(PreemptReason::Shutdown));
        {
            // The innermost token shadows the outer one.
            let _s2 = attach(&inner);
            assert_eq!(current_requested(), None);
            inner.request(PreemptReason::Deadline);
            assert_eq!(current_requested(), Some(PreemptReason::Deadline));
        }
        assert_eq!(current_requested(), Some(PreemptReason::Shutdown));
    }

    #[test]
    fn unattached_threads_observe_nothing() {
        let token = PreemptToken::new();
        token.request(PreemptReason::Deadline);
        let _scope = attach(&token);
        let other = std::thread::spawn(|| current_requested()).join().unwrap();
        assert_eq!(other, None);
    }
}
