use crate::checkpoint::CheckpointConfig;
use std::fmt;

/// How the nested subset-event thresholds `a_1 > a_2 > … > a_M = 0` are
/// chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum Levels {
    /// Hand-picked thresholds, the paper's default. Must be strictly
    /// decreasing and end at exactly `0.0` so `Ω_{a_M} = Ω`.
    Fixed(Vec<f64>),
    /// Automatic pilot-quantile schedule (the paper's "future work"
    /// direction, implemented here like subset simulation's adaptive
    /// levels): before each stage, `pilot` proposal samples are scored and
    /// the next threshold is their `p0`-quantile, clamped so the final
    /// stage lands on `0.0`.
    AdaptiveQuantile {
        /// Maximum number of stages.
        max_stages: usize,
        /// Quantile level, e.g. `0.1` to shrink each subset's probability
        /// by roughly 10× per stage (the paper's rule of thumb).
        p0: f64,
        /// Pilot samples drawn (and simulator calls spent) per stage to
        /// locate the quantile.
        pilot: usize,
    },
}

impl Levels {
    /// Number of training stages `M` (for fixed levels; the adaptive
    /// schedule reports its maximum).
    pub fn max_stages(&self) -> usize {
        match self {
            Levels::Fixed(v) => v.len(),
            Levels::AdaptiveQuantile { max_stages, .. } => *max_stages,
        }
    }
}

/// Full hyper-parameter set of Algorithm 1.
///
/// Field defaults follow the paper's nominal ranges (§3.2): `E = 15–20`,
/// `N = 100–400`, `M = 4–6`, `τ = 10–30`, `K = 8`.
#[derive(Debug, Clone, PartialEq)]
pub struct NofisConfig {
    /// Threshold schedule defining the nested subset events.
    pub levels: Levels,
    /// Coupling layers per stage (`K` in the paper; 8 in its experiments).
    pub layers_per_stage: usize,
    /// Hidden width of each coupling conditioner net.
    pub hidden: usize,
    /// Log-scale clamp of the coupling layers.
    pub s_max: f64,
    /// Training epochs per stage (`E`).
    pub epochs: usize,
    /// Fresh base samples drawn per epoch (`N`); each costs one simulator
    /// call, so training consumes `M·E·N` calls total.
    pub batch_size: usize,
    /// Samples for the final importance-sampling estimate (`N_IS`).
    pub n_is: usize,
    /// Temperature `τ` of the tempered targets `p_m^τ` (Eq. 6/9).
    pub tau: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Optimizer minibatch size: each epoch's `batch_size` fresh samples
    /// are consumed in chunks of this size, one Adam step per chunk. This
    /// multiplies gradient steps without extra simulator calls (the samples
    /// are still evaluated exactly once). Set equal to `batch_size` for the
    /// paper's literal one-step-per-epoch Algorithm 1.
    pub minibatch: usize,
    /// Freeze earlier stage blocks while training stage `m` (the paper's
    /// default policy; `false` reproduces the "NoFreeze" ablation).
    pub freeze: bool,
    /// Skip backward kernels (and gradient buffers) for subgraphs whose
    /// only parameters are frozen — when training stage `m`, the `m − 1`
    /// frozen coupling blocks then cost forward-only. The surviving
    /// gradients are bitwise identical with pruning on or off (see
    /// DESIGN.md §9), so this is purely a speed knob; `false` restores the
    /// exhaustive backward pass.
    pub prune_frozen: bool,
    /// Trace-once/replay execution (DESIGN.md §13): build the training tape
    /// once per (minibatch shape, stage depth, frozen mask), lower it to a
    /// flat `CompiledStep` instruction stream with preplanned buffers, and
    /// replay that for subsequent steps — no per-step tape construction.
    /// Replays are bitwise identical to the interpreted engine (enforced by
    /// `tests/compiled_equivalence.rs`), so this is purely a speed knob.
    /// The `NOFIS_COMPILE` environment variable (`0`/`1`) overrides it in
    /// [`Nofis::new`](crate::Nofis::new).
    pub compile_tape: bool,
    /// Optional hard cap on total simulator calls for
    /// [`Nofis::run`](crate::Nofis::run) /
    /// [`Nofis::train`](crate::Nofis::train). When the cap is hit, the
    /// pipeline truncates gracefully where possible (final-stage epochs,
    /// the estimation ladder) and otherwise returns
    /// [`NofisError::BudgetExhausted`](crate::NofisError::BudgetExhausted)
    /// — it never overruns. `None` (the default) leaves the schedule's own
    /// [`NofisConfig::training_budget`] as the only cost.
    pub max_calls: Option<u64>,
    /// Global-norm gradient clipping threshold passed to the optimizer
    /// (`None` disables clipping). The default `Some(100.0)` is far above
    /// healthy flow-training gradients and only engages on the exploding
    /// log-det gradients that precede divergence.
    pub max_grad_norm: Option<f64>,
    /// How many times a stage may roll back to its best checkpoint (with a
    /// halved learning rate) after a divergent epoch before training fails
    /// with [`NofisError::TrainingDiverged`](crate::NofisError::TrainingDiverged).
    pub stage_retries: usize,
    /// Worker threads for the parallel matmul and oracle-batch hot paths.
    /// `None` (the default) uses the process default — the `NOFIS_THREADS`
    /// environment variable when set, else
    /// `std::thread::available_parallelism()`. The thread count never
    /// affects results: see the determinism contract in `nofis_parallel`
    /// and DESIGN.md §8. Note the process-wide pool is sized once, on first
    /// use; [`Nofis::new`](crate::Nofis::new) records this preference, so
    /// construct the estimator before anything else touches the pool.
    pub threads: Option<usize>,
    /// Telemetry sink selection, applied (idempotently, process-wide) by
    /// [`Nofis::new`](crate::Nofis::new). The `NOFIS_LOG` and
    /// `NOFIS_TRACE_FILE` environment variables override the corresponding
    /// fields. The default is fully disabled — every telemetry site then
    /// costs a single relaxed atomic load. Telemetry observes the run but
    /// never influences it: with sinks on or off, all numeric results are
    /// bitwise identical (DESIGN.md §10).
    pub telemetry: nofis_telemetry::Settings,
    /// Durable checkpointing (DESIGN.md §11): when set, training writes
    /// atomic, CRC-guarded snapshots into
    /// [`CheckpointConfig::dir`] every
    /// [`CheckpointConfig::every_steps`] optimizer steps and at every stage
    /// boundary, and [`Nofis::run_or_resume`](crate::Nofis::run_or_resume)
    /// continues a killed run bitwise-identically from the newest valid
    /// one. The `NOFIS_CKPT_DIR`, `NOFIS_CKPT_EVERY`, and `NOFIS_CKPT_KEEP`
    /// environment variables override (or, for `NOFIS_CKPT_DIR` alone,
    /// enable) this field in [`Nofis::new`](crate::Nofis::new). `None` (the
    /// default) writes nothing and costs one branch per optimizer step.
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for NofisConfig {
    fn default() -> Self {
        NofisConfig {
            levels: Levels::AdaptiveQuantile {
                max_stages: 5,
                p0: 0.1,
                pilot: 200,
            },
            layers_per_stage: 8,
            hidden: 32,
            s_max: 2.0,
            epochs: 20,
            batch_size: 200,
            n_is: 1000,
            tau: 20.0,
            learning_rate: 5e-3,
            minibatch: 64,
            freeze: true,
            prune_frozen: true,
            compile_tape: true,
            max_calls: None,
            max_grad_norm: Some(100.0),
            stage_retries: 2,
            threads: None,
            telemetry: nofis_telemetry::Settings::default(),
            checkpoint: None,
        }
    }
}

impl NofisConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the levels are not strictly decreasing /
    /// do not end at zero, or any numeric hyper-parameter is out of range.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match &self.levels {
            Levels::Fixed(v) => {
                if v.is_empty() {
                    return Err(ConfigError::new("levels must be non-empty"));
                }
                if v.iter().any(|x| !x.is_finite()) {
                    return Err(ConfigError::new("levels must all be finite"));
                }
                if v.windows(2).any(|w| w[1] >= w[0]) {
                    return Err(ConfigError::new("levels must be strictly decreasing"));
                }
                if *v.last().expect("non-empty") != 0.0 {
                    return Err(ConfigError::new(
                        "the last level must be exactly 0.0 so that Ω_{a_M} = Ω",
                    ));
                }
            }
            Levels::AdaptiveQuantile {
                max_stages,
                p0,
                pilot,
            } => {
                if *max_stages == 0 {
                    return Err(ConfigError::new(
                        "adaptive schedule needs at least one stage",
                    ));
                }
                if !(*p0 > 0.0 && *p0 < 1.0) {
                    return Err(ConfigError::new("p0 must be in (0, 1)"));
                }
                if *pilot == 0 {
                    return Err(ConfigError::new("pilot sample count must be positive"));
                }
            }
        }
        if self.layers_per_stage == 0 {
            return Err(ConfigError::new("layers_per_stage must be positive"));
        }
        if self.hidden == 0 {
            return Err(ConfigError::new("hidden width must be positive"));
        }
        if self.s_max <= 0.0 || self.s_max.is_nan() {
            return Err(ConfigError::new("s_max must be positive"));
        }
        if self.epochs == 0 {
            return Err(ConfigError::new("epochs must be positive"));
        }
        if self.batch_size == 0 {
            return Err(ConfigError::new("batch_size must be positive"));
        }
        if self.n_is == 0 {
            return Err(ConfigError::new("n_is must be positive"));
        }
        if self.tau <= 0.0 || self.tau.is_nan() {
            return Err(ConfigError::new("tau must be positive"));
        }
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(ConfigError::new(
                "learning_rate must be positive and finite",
            ));
        }
        if self.minibatch == 0 {
            return Err(ConfigError::new("minibatch must be positive"));
        }
        if self.max_calls == Some(0) {
            return Err(ConfigError::new("max_calls must be positive when set"));
        }
        if let Some(m) = self.max_grad_norm {
            if !(m > 0.0 && m.is_finite()) {
                return Err(ConfigError::new(
                    "max_grad_norm must be positive and finite when set",
                ));
            }
        }
        if self.threads == Some(0) {
            return Err(ConfigError::new("threads must be positive when set"));
        }
        if let Some(ckpt) = &self.checkpoint {
            if ckpt.dir.as_os_str().is_empty() {
                return Err(ConfigError::new("checkpoint dir must be non-empty"));
            }
            if ckpt.every_steps == 0 {
                return Err(ConfigError::new("checkpoint every_steps must be positive"));
            }
            if ckpt.keep == 0 {
                return Err(ConfigError::new("checkpoint keep must be positive"));
            }
            if let Some(ns) = &ckpt.namespace {
                let ok = !ns.is_empty()
                    && ns
                        .bytes()
                        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'));
                if !ok {
                    return Err(ConfigError::new(
                        "checkpoint namespace must be non-empty and use only \
                         [A-Za-z0-9._-] (it becomes a directory name)",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Applies the `NOFIS_CKPT_DIR` / `NOFIS_CKPT_EVERY` / `NOFIS_CKPT_KEEP`
    /// environment overrides to [`NofisConfig::checkpoint`] (called by
    /// [`Nofis::new`](crate::Nofis::new)). `NOFIS_CKPT_DIR` enables
    /// checkpointing even when the field is `None`; the interval and
    /// rotation variables refine whichever configuration results.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a set variable does not parse as a
    /// positive integer.
    pub(crate) fn apply_checkpoint_env(&mut self) -> Result<(), ConfigError> {
        fn positive(name: &str) -> Result<Option<u64>, ConfigError> {
            match std::env::var(name) {
                Ok(raw) => match raw.trim().parse::<u64>() {
                    Ok(v) if v > 0 => Ok(Some(v)),
                    _ => Err(ConfigError::new(format!(
                        "{name} must be a positive integer, got {raw:?}"
                    ))),
                },
                Err(_) => Ok(None),
            }
        }
        if let Ok(dir) = std::env::var("NOFIS_CKPT_DIR") {
            if dir.is_empty() {
                return Err(ConfigError::new("NOFIS_CKPT_DIR must be non-empty"));
            }
            match &mut self.checkpoint {
                Some(ckpt) => ckpt.dir = dir.into(),
                None => self.checkpoint = Some(CheckpointConfig::new(dir)),
            }
        }
        if let Some(every) = positive("NOFIS_CKPT_EVERY")? {
            if let Some(ckpt) = &mut self.checkpoint {
                ckpt.every_steps = every;
            }
        }
        if let Some(keep) = positive("NOFIS_CKPT_KEEP")? {
            if let Some(ckpt) = &mut self.checkpoint {
                ckpt.keep = keep as usize;
            }
        }
        Ok(())
    }

    /// Applies the `NOFIS_COMPILE` environment override to
    /// [`NofisConfig::compile_tape`] (called by
    /// [`Nofis::new`](crate::Nofis::new)): `0` disables the compiled
    /// trace-once/replay engine, `1` enables it, unset leaves the field
    /// as configured.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the variable is set to anything other
    /// than `0` or `1`.
    pub(crate) fn apply_compile_env(&mut self) -> Result<(), ConfigError> {
        match std::env::var("NOFIS_COMPILE") {
            Ok(raw) => match raw.trim() {
                "0" => {
                    self.compile_tape = false;
                    Ok(())
                }
                "1" => {
                    self.compile_tape = true;
                    Ok(())
                }
                _ => Err(ConfigError::new(format!(
                    "NOFIS_COMPILE must be 0 or 1, got {raw:?}"
                ))),
            },
            Err(_) => Ok(()),
        }
    }

    /// The simulator-call budget training will consume (`M·E·N` plus any
    /// adaptive pilot calls); the final estimate adds `n_is` more.
    pub fn training_budget(&self) -> u64 {
        let stages = self.levels.max_stages() as u64;
        let pilot = match self.levels {
            Levels::AdaptiveQuantile { pilot, .. } => pilot as u64 * stages,
            Levels::Fixed(_) => 0,
        };
        stages * self.epochs as u64 * self.batch_size as u64 + pilot
    }
}

/// An invalid [`NofisConfig`] field combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid NOFIS configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(NofisConfig::default().validate().is_ok());
    }

    #[test]
    fn fixed_levels_must_decrease_to_zero() {
        let mut cfg = NofisConfig {
            levels: Levels::Fixed(vec![26.0, 15.0, 8.0, 3.0, 0.0]),
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());
        cfg.levels = Levels::Fixed(vec![26.0, 15.0, 15.0, 0.0]);
        assert!(cfg.validate().is_err());
        cfg.levels = Levels::Fixed(vec![26.0, 15.0, 1.0]);
        assert!(cfg.validate().is_err());
        cfg.levels = Levels::Fixed(vec![]);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn numeric_ranges_are_checked() {
        let base = NofisConfig::default();
        for bad in [
            NofisConfig {
                tau: 0.0,
                ..base.clone()
            },
            NofisConfig {
                epochs: 0,
                ..base.clone()
            },
            NofisConfig {
                batch_size: 0,
                ..base.clone()
            },
            NofisConfig {
                layers_per_stage: 0,
                ..base.clone()
            },
            NofisConfig {
                learning_rate: f64::NAN,
                ..base.clone()
            },
            NofisConfig {
                s_max: -1.0,
                ..base.clone()
            },
            NofisConfig {
                n_is: 0,
                ..base.clone()
            },
            NofisConfig {
                hidden: 0,
                ..base.clone()
            },
            NofisConfig {
                max_calls: Some(0),
                ..base.clone()
            },
            NofisConfig {
                max_grad_norm: Some(0.0),
                ..base.clone()
            },
            NofisConfig {
                max_grad_norm: Some(f64::NAN),
                ..base.clone()
            },
            NofisConfig {
                threads: Some(0),
                ..base.clone()
            },
            NofisConfig {
                minibatch: 0,
                ..base.clone()
            },
            NofisConfig {
                levels: Levels::Fixed(vec![f64::NAN, 0.0]),
                ..base.clone()
            },
            NofisConfig {
                levels: Levels::Fixed(vec![f64::INFINITY, 1.0, 0.0]),
                ..base.clone()
            },
            NofisConfig {
                checkpoint: Some(CheckpointConfig {
                    every_steps: 0,
                    ..CheckpointConfig::new("ckpts")
                }),
                ..base.clone()
            },
            NofisConfig {
                checkpoint: Some(CheckpointConfig {
                    keep: 0,
                    ..CheckpointConfig::new("ckpts")
                }),
                ..base.clone()
            },
            NofisConfig {
                checkpoint: Some(CheckpointConfig::new("")),
                ..base.clone()
            },
            NofisConfig {
                checkpoint: Some(CheckpointConfig::new("ckpts").with_namespace("")),
                ..base.clone()
            },
            NofisConfig {
                checkpoint: Some(CheckpointConfig::new("ckpts").with_namespace("a/b")),
                ..base.clone()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
        assert!(
            NofisConfig {
                minibatch: base.batch_size,
                ..base.clone()
            }
            .validate()
            .is_ok(),
            "minibatch == batch_size is the paper's one-step-per-epoch setting"
        );
        assert!(
            NofisConfig {
                minibatch: base.batch_size + 1,
                ..base.clone()
            }
            .validate()
            .is_ok(),
            "an oversized minibatch is clamped to batch_size by the train loop"
        );
        assert!(NofisConfig {
            checkpoint: Some(CheckpointConfig::new("ckpts")),
            ..base.clone()
        }
        .validate()
        .is_ok());
        assert!(NofisConfig {
            checkpoint: Some(CheckpointConfig::new("ckpts").with_namespace("job-3_v1.0")),
            ..base.clone()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn training_budget_counts_pilot() {
        let cfg = NofisConfig {
            levels: Levels::Fixed(vec![5.0, 0.0]),
            epochs: 10,
            batch_size: 100,
            ..Default::default()
        };
        assert_eq!(cfg.training_budget(), 2 * 10 * 100);
        let cfg = NofisConfig {
            levels: Levels::AdaptiveQuantile {
                max_stages: 3,
                p0: 0.1,
                pilot: 50,
            },
            epochs: 10,
            batch_size: 100,
            ..Default::default()
        };
        assert_eq!(cfg.training_budget(), 3 * 10 * 100 + 150);
    }

    #[test]
    fn config_error_displays() {
        let err = NofisConfig {
            tau: -1.0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert!(format!("{err}").contains("tau"));
    }
}
