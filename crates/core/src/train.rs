use crate::{ConfigError, FlowProposal, Levels, NofisConfig};
use nofis_autograd::{Graph, ParamStore, Tensor};
use nofis_flows::RealNvp;
use nofis_nn::Adam;
use nofis_prob::{
    importance_sampling, importance_sampling_detailed, quantile, IsResult, LimitState,
    StandardGaussian, WeightDiagnostics, LN_2PI,
};
use rand::Rng;

/// The NOFIS estimator (Algorithm 1 of the paper).
///
/// `Nofis` owns a validated [`NofisConfig`]; [`Nofis::train`] learns the
/// sequence of proposal distributions and [`TrainedNofis::estimate`]
/// produces the final importance-sampling estimate. The convenience method
/// [`Nofis::run`] does both.
///
/// # Example
///
/// ```
/// use nofis_core::{Levels, Nofis, NofisConfig};
/// use nofis_prob::{CountingOracle, LimitState};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), nofis_core::ConfigError> {
/// // A moderately rare half-space event: P[x0 >= 3] ≈ 1.35e-3.
/// struct HalfSpace;
/// impl LimitState for HalfSpace {
///     fn dim(&self) -> usize { 2 }
///     fn value(&self, x: &[f64]) -> f64 { 3.0 - x[0] }
///     fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
///         (3.0 - x[0], vec![-1.0, 0.0])
///     }
/// }
///
/// let config = NofisConfig {
///     levels: Levels::Fixed(vec![2.0, 1.0, 0.0]),
///     layers_per_stage: 4,
///     hidden: 16,
///     epochs: 8,
///     batch_size: 64,
///     n_is: 500,
///     ..Default::default()
/// };
/// let oracle = CountingOracle::new(&HalfSpace);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let (trained, result) = Nofis::new(config)?.run(&oracle, &mut rng);
/// assert_eq!(trained.levels().last(), Some(&0.0));
/// assert!(result.estimate > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Nofis {
    config: NofisConfig,
}

impl Nofis {
    /// Creates an estimator from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(config: NofisConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Nofis { config })
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &NofisConfig {
        &self.config
    }

    /// Runs the `M`-stage training of Algorithm 1, consuming `M·E·N`
    /// simulator calls (plus pilot calls under adaptive levels).
    ///
    /// Wrap `limit_state` in a
    /// [`CountingOracle`](nofis_prob::CountingOracle) to meter the budget.
    ///
    /// # Panics
    ///
    /// Panics if `limit_state.dim() < 2` (RealNVP coupling layers need at
    /// least two coordinates).
    pub fn train(
        &self,
        limit_state: &(impl LimitState + ?Sized),
        rng: &mut impl Rng,
    ) -> TrainedNofis {
        let dim = limit_state.dim();
        assert!(dim >= 2, "NOFIS requires dim >= 2, got {dim}");
        let cfg = &self.config;
        let k = cfg.layers_per_stage;
        let max_stages = cfg.levels.max_stages();

        let mut store = ParamStore::new();
        let flow = RealNvp::new(&mut store, dim, max_stages * k, cfg.hidden, cfg.s_max, rng);
        let base = StandardGaussian::new(dim);

        let mut levels: Vec<f64> = Vec::new();
        let mut loss_history: Vec<Vec<f64>> = Vec::new();

        for stage in 0..max_stages {
            // --- Pick this stage's threshold. ---
            let level = match &cfg.levels {
                Levels::Fixed(v) => v[stage],
                Levels::AdaptiveQuantile { p0, pilot, .. } => {
                    if stage + 1 == max_stages {
                        0.0
                    } else {
                        let depth = stage * k;
                        let mut gvals = Vec::with_capacity(*pilot);
                        for _ in 0..*pilot {
                            let x = if depth == 0 {
                                base.sample(rng)
                            } else {
                                flow.sample(&store, depth, rng).0
                            };
                            gvals.push(limit_state.value(&x));
                        }
                        let mut q = quantile(&gvals, *p0);
                        // Overshoot guard: tempered training gives the stage
                        // proposal a heavy lower-g tail, which can crash the
                        // pilot quantile to 0 long before the proposal truly
                        // covers the failure region. Only allow the schedule
                        // to land on 0 when the pilot actually observes a
                        // healthy failure fraction; otherwise descend
                        // geometrically at most.
                        let frac_fail = gvals.iter().filter(|&&g| g <= 0.0).count()
                            as f64
                            / gvals.len() as f64;
                        if let Some(&prev) = levels.last() {
                            if frac_fail < 0.5 * p0 {
                                q = q.max(0.35 * prev);
                            }
                            // Enforce strict decrease: an undertrained stage
                            // can leave the pilot quantile at (or above) the
                            // previous threshold, stalling the schedule.
                            q = q.min(prev - 0.05 * prev.abs());
                        }
                        if q <= 0.0 {
                            0.0
                        } else {
                            q
                        }
                    }
                }
            };
            levels.push(level);

            // --- Freeze everything before this stage's block. ---
            if cfg.freeze {
                for id in flow.param_ids_for_layers(0..stage * k) {
                    store.set_frozen(id, true);
                }
            }

            // --- Optimize D[q_{mK} || p_m^tau] (Eq. 8). ---
            let depth = (stage + 1) * k;
            let mut opt = Adam::new(cfg.learning_rate);
            let mut stage_losses = Vec::with_capacity(cfg.epochs);
            let mb = cfg.minibatch.min(cfg.batch_size);
            for _ in 0..cfg.epochs {
                // One epoch consumes `batch_size` fresh simulator calls; the
                // optimizer takes one step per `minibatch`-sized chunk.
                let mut epoch_loss = 0.0;
                let mut consumed = 0;
                while consumed < cfg.batch_size {
                    let n = mb.min(cfg.batch_size - consumed);
                    consumed += n;
                    let z0 = Tensor::from_vec(n, dim, base.sample_flat(n, rng));
                    let mut g = Graph::new();
                    let x = g.constant(z0);
                    let (z, logdet) = flow.forward_graph(&store, &mut g, x, depth);
                    // tempered term: min(tau * (a_m - g(z)), 0)
                    let gvals = g.external_rowwise(z, |row| limit_state.value_grad(row));
                    let neg_tau_g = g.scale(gvals, -cfg.tau);
                    let shifted = g.add_scalar(neg_tau_g, cfg.tau * level);
                    let tempered = g.min_scalar(shifted, 0.0);
                    // base log-density of z: -D/2 ln 2π - ||z||²/2
                    let sq = g.square(z);
                    let ssq = g.sum_cols(sq);
                    let half = g.scale(ssq, -0.5);
                    let logp = g.add_scalar(half, -0.5 * dim as f64 * LN_2PI);

                    let a = g.add(logdet, tempered);
                    let per_sample = g.add(a, logp);
                    let mean = g.mean_all(per_sample);
                    let loss = g.neg(mean);
                    g.backward(loss);
                    opt.step(&mut store, &g.param_grads());
                    epoch_loss += g.value(loss).item() * n as f64;
                }
                stage_losses.push(epoch_loss / cfg.batch_size as f64);
            }
            loss_history.push(stage_losses);

            if level == 0.0 {
                // The adaptive schedule reached the target event: stop and
                // save the remaining budget (further stages at level 0 were
                // observed to over-concentrate the proposal).
                break;
            }
        }

        // Defensive: the fixed schedule always ends at 0.0 by validation;
        // the adaptive one breaks on 0.0 or forces it at the last stage.
        debug_assert_eq!(levels.last().copied(), Some(0.0));

        TrainedNofis {
            flow,
            store,
            levels,
            loss_history,
            layers_per_stage: k,
        }
    }

    /// Trains and immediately produces the final IS estimate with
    /// `config.n_is` samples; returns both the trained model and the
    /// estimate.
    pub fn run(
        &self,
        limit_state: &(impl LimitState + ?Sized),
        rng: &mut impl Rng,
    ) -> (TrainedNofis, IsResult) {
        let trained = self.train(limit_state, rng);
        let result = trained.estimate(limit_state, self.config.n_is, rng);
        (trained, result)
    }
}

/// A trained NOFIS model: the flow, its parameters, the realized threshold
/// schedule and the per-stage training losses.
#[derive(Debug, Clone)]
pub struct TrainedNofis {
    flow: RealNvp,
    store: ParamStore,
    levels: Vec<f64>,
    loss_history: Vec<Vec<f64>>,
    layers_per_stage: usize,
}

impl TrainedNofis {
    /// The realized thresholds `a_1 > … > a_M = 0` (for adaptive schedules
    /// these are the pilot-quantile choices actually used).
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Per-stage, per-epoch training losses (Figure 3e of the paper).
    pub fn loss_history(&self) -> &[Vec<f64>] {
        &self.loss_history
    }

    /// Number of trained stages `M`.
    pub fn stages(&self) -> usize {
        self.levels.len()
    }

    /// Coupling layers per stage (`K`).
    pub fn layers_per_stage(&self) -> usize {
        self.layers_per_stage
    }

    /// Total flow depth actually trained (`M·K`).
    pub fn depth(&self) -> usize {
        self.stages() * self.layers_per_stage
    }

    /// The final proposal distribution `q_{MK}`.
    pub fn proposal(&self) -> FlowProposal<'_> {
        FlowProposal::new(&self.flow, &self.store, self.depth())
    }

    /// The intermediate stage proposal `q_{mK}` for `stage` in `1..=M`
    /// (Figure 3a–d of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is zero or exceeds the trained stage count.
    pub fn stage_proposal(&self, stage: usize) -> FlowProposal<'_> {
        assert!(
            stage >= 1 && stage <= self.stages(),
            "stage {stage} out of range 1..={}",
            self.stages()
        );
        FlowProposal::new(&self.flow, &self.store, stage * self.layers_per_stage)
    }

    /// Final importance-sampling estimate of `P[g(x) ≤ 0]` using `n_is`
    /// proposal samples (Eq. 2), each costing one simulator call.
    ///
    /// # Panics
    ///
    /// Panics if `n_is == 0`.
    pub fn estimate(
        &self,
        limit_state: &(impl LimitState + ?Sized),
        n_is: usize,
        rng: &mut impl Rng,
    ) -> IsResult {
        let p = StandardGaussian::new(self.flow.dim());
        importance_sampling(limit_state, 0.0, &self.proposal(), &p, n_is, rng)
    }

    /// Like [`TrainedNofis::estimate`] but also returns
    /// [`WeightDiagnostics`] over the realized importance weights, so
    /// callers can detect weight degeneracy (a heavy-tailed proposal
    /// mismatch) instead of trusting a silently bad estimate.
    ///
    /// # Panics
    ///
    /// Panics if `n_is == 0`.
    pub fn estimate_with_diagnostics(
        &self,
        limit_state: &(impl LimitState + ?Sized),
        n_is: usize,
        rng: &mut impl Rng,
    ) -> (IsResult, Option<WeightDiagnostics>) {
        let p = StandardGaussian::new(self.flow.dim());
        let (result, log_weights) =
            importance_sampling_detailed(limit_state, 0.0, &self.proposal(), &p, n_is, rng);
        let diag = if log_weights.is_empty() {
            None
        } else {
            Some(WeightDiagnostics::from_log_weights(&log_weights))
        };
        (result, diag)
    }

    /// Exact log-density of the final proposal at `x` (used by the
    /// visualization harnesses).
    pub fn log_density(&self, x: &[f64]) -> f64 {
        self.flow.log_density(&self.store, x, self.depth())
    }

    /// Borrows the underlying flow and parameters (read-only diagnostics).
    pub fn flow(&self) -> (&RealNvp, &ParamStore) {
        (&self.flow, &self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_prob::{log_error, normal_cdf, CountingOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// g(x) = beta - x0 in 2-D: P[fail] = 1 - Φ(beta), analytic gradient.
    struct HalfSpace {
        beta: f64,
    }
    impl LimitState for HalfSpace {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            self.beta - x[0]
        }
        fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
            (self.beta - x[0], vec![-1.0, 0.0])
        }
        fn name(&self) -> &str {
            "halfspace"
        }
    }

    fn small_config(levels: Levels) -> NofisConfig {
        NofisConfig {
            levels,
            layers_per_stage: 4,
            hidden: 16,
            epochs: 12,
            batch_size: 100,
            n_is: 1000,
            tau: 15.0,
            learning_rate: 8e-3,
            ..Default::default()
        }
    }

    #[test]
    fn estimates_halfspace_tail_with_fixed_levels() {
        let ls = HalfSpace { beta: 3.5 }; // P ≈ 2.33e-4
        let oracle = CountingOracle::new(&ls);
        let cfg = small_config(Levels::Fixed(vec![2.0, 1.0, 0.0]));
        let budget = cfg.training_budget() + cfg.n_is as u64;
        let nofis = Nofis::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let (trained, result) = nofis.run(&oracle, &mut rng);

        let golden = 1.0 - normal_cdf(3.5);
        let err = log_error(result.estimate, golden);
        assert!(
            err < 0.7,
            "estimate {} vs golden {golden}: log error {err}",
            result.estimate
        );
        assert_eq!(oracle.calls(), budget);
        assert_eq!(trained.levels(), &[2.0, 1.0, 0.0]);
        assert_eq!(trained.stages(), 3);
        assert_eq!(trained.depth(), 12);
    }

    #[test]
    fn adaptive_levels_reach_zero() {
        let ls = HalfSpace { beta: 3.0 };
        let oracle = CountingOracle::new(&ls);
        let cfg = small_config(Levels::AdaptiveQuantile {
            max_stages: 4,
            p0: 0.15,
            pilot: 100,
        });
        let nofis = Nofis::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let trained = nofis.train(&oracle, &mut rng);
        let levels = trained.levels();
        assert_eq!(*levels.last().unwrap(), 0.0);
        // Levels decrease strictly until 0.0, then may repeat 0.0
        // (refinement stages).
        let nonzero: Vec<f64> = levels.iter().copied().take_while(|&l| l > 0.0).collect();
        assert!(nonzero.windows(2).all(|w| w[1] < w[0]), "levels {levels:?}");
    }

    #[test]
    fn training_reduces_first_stage_loss() {
        let ls = HalfSpace { beta: 3.0 };
        let cfg = small_config(Levels::Fixed(vec![1.5, 0.0]));
        let nofis = Nofis::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trained = nofis.train(&ls, &mut rng);
        let losses = &trained.loss_history()[0];
        let head = losses[..3].iter().sum::<f64>() / 3.0;
        let tail = losses[losses.len() - 3..].iter().sum::<f64>() / 3.0;
        assert!(tail < head, "losses did not decrease: {losses:?}");
    }

    #[test]
    fn stage_proposals_are_exposed() {
        let ls = HalfSpace { beta: 3.0 };
        let cfg = small_config(Levels::Fixed(vec![1.0, 0.0]));
        let nofis = Nofis::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let trained = nofis.train(&ls, &mut rng);
        assert_eq!(trained.stage_proposal(1).depth(), 4);
        assert_eq!(trained.stage_proposal(2).depth(), 8);
        assert_eq!(trained.proposal().depth(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stage_proposal_bounds_checked() {
        let ls = HalfSpace { beta: 3.0 };
        let cfg = small_config(Levels::Fixed(vec![0.0]));
        let trained = Nofis::new(cfg)
            .unwrap()
            .train(&ls, &mut StdRng::seed_from_u64(0));
        let _ = trained.stage_proposal(2);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = NofisConfig {
            levels: Levels::Fixed(vec![1.0]), // does not end at 0
            ..Default::default()
        };
        assert!(Nofis::new(cfg).is_err());
    }
}
