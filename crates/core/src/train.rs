use crate::checkpoint::{self, Checkpoint, Checkpointer, StagePartial};
use crate::preempt;
use crate::{ConfigError, FlowProposal, Levels, NofisConfig, NofisError, StageReport};
use nofis_autograd::{CompiledStep, Graph, ParamId, ParamStore, Tensor, Var};
use nofis_flows::RealNvp;
use nofis_nn::{Adam, AdamState};
use nofis_prob::{
    batch_values, importance_sampling_detailed, monte_carlo, quantile, BudgetedOracle,
    DefensiveMixture, FallbackRung, IsResult, LimitState, Proposal, StandardGaussian,
    WeightDiagnostics, LN_2PI,
};
use nofis_telemetry as tele;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng, StateRng};

/// Epoch-loss magnitude beyond which training is declared divergent (a
/// healthy tempered-KL loss is `O(D)`, nowhere near this).
/// A compiled training step plus the key it was specialized for: replay
/// is valid only while the minibatch row count, the stage depth, and the
/// [`ParamStore`] frozen mask (checked via `CompiledStep::mask_matches`)
/// all still match — any mismatch retraces and recompiles (DESIGN.md §13).
struct TapeCache {
    depth: usize,
    n: usize,
    logdet: Var,
    loss: Var,
    step: CompiledStep,
}

const LOSS_DIVERGENCE_LIMIT: f64 = 1e12;

/// Per-row `|log det|` beyond which a minibatch is declared divergent: the
/// coupling clamp bounds healthy log-dets to `O(depth · D · s_max)`.
const LOGDET_DIVERGENCE_LIMIT: f64 = 1e6;

/// Simulator-call budget granted to a standalone
/// [`TrainedNofis::estimate`] call, as a multiple of `n_is`: one tranche
/// for each rung of the fallback ladder.
const ESTIMATE_BUDGET_FACTOR: u64 = 4;

/// Base mixing weight used by the defensive-mixture rung of the fallback
/// ladder; importance weights on that rung are bounded by `1/α = 2`.
const DEFENSIVE_ALPHA: f64 = 0.5;

fn budget_error<L: LimitState + ?Sized>(
    oracle: &BudgetedOracle<'_, L>,
    context: String,
) -> NofisError {
    NofisError::BudgetExhausted {
        used: oracle.used(),
        budget: oracle.budget(),
        context,
    }
}

/// The NOFIS estimator (Algorithm 1 of the paper).
///
/// `Nofis` owns a validated [`NofisConfig`]; [`Nofis::train`] learns the
/// sequence of proposal distributions and [`TrainedNofis::estimate`]
/// produces the final importance-sampling estimate. The convenience method
/// [`Nofis::run`] does both. All entry points are fallible — see
/// [`NofisError`] for the failure taxonomy.
///
/// # Example
///
/// ```
/// use nofis_core::{Levels, Nofis, NofisConfig};
/// use nofis_prob::{CountingOracle, LimitState};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A moderately rare half-space event: P[x0 >= 3] ≈ 1.35e-3.
/// struct HalfSpace;
/// impl LimitState for HalfSpace {
///     fn dim(&self) -> usize { 2 }
///     fn value(&self, x: &[f64]) -> f64 { 3.0 - x[0] }
///     fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
///         (3.0 - x[0], vec![-1.0, 0.0])
///     }
/// }
///
/// let config = NofisConfig {
///     levels: Levels::Fixed(vec![2.0, 1.0, 0.0]),
///     layers_per_stage: 4,
///     hidden: 16,
///     epochs: 8,
///     batch_size: 64,
///     n_is: 500,
///     ..Default::default()
/// };
/// let oracle = CountingOracle::new(&HalfSpace);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let (trained, result) = Nofis::new(config)?.run(&oracle, &mut rng)?;
/// assert_eq!(trained.levels().last(), Some(&0.0));
/// assert!(result.estimate > 0.0);
/// assert_eq!(trained.stage_reports().len(), trained.stages());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Nofis {
    config: NofisConfig,
}

impl Nofis {
    /// Creates an estimator from a validated configuration.
    ///
    /// When [`NofisConfig::threads`] is set, the preference is recorded for
    /// the process-wide `nofis_parallel` pool. The pool is sized on first
    /// use, so construct the estimator before other parallel work runs; a
    /// `NOFIS_THREADS` environment variable still takes precedence and is
    /// validated here — a malformed value (e.g. `NOFIS_THREADS=fourx`) is a
    /// configuration error, never a silent fallback.
    ///
    /// Telemetry sinks from [`NofisConfig::telemetry`] (overridable via
    /// `NOFIS_LOG` / `NOFIS_TRACE_FILE`) are installed process-wide on the
    /// first `Nofis::new` call; later calls leave them untouched.
    ///
    /// Checkpoint settings from [`NofisConfig::checkpoint`] are combined
    /// with the `NOFIS_CKPT_DIR` / `NOFIS_CKPT_EVERY` / `NOFIS_CKPT_KEEP`
    /// environment variables (the environment wins; `NOFIS_CKPT_DIR` alone
    /// enables checkpointing). A `NOFIS_FAULT_PLAN` variable, if present,
    /// installs the deterministic fault-injection plan (`nofis_faults`)
    /// process-wide on the first call.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid, the
    /// `NOFIS_THREADS` / `NOFIS_CKPT_*` environment variables do not parse,
    /// a requested trace file cannot be created, or `NOFIS_FAULT_PLAN` is
    /// malformed.
    pub fn new(mut config: NofisConfig) -> Result<Self, ConfigError> {
        config.apply_checkpoint_env()?;
        config.apply_compile_env()?;
        config.validate()?;
        nofis_parallel::env_threads_checked().map_err(|e| ConfigError::new(e.to_string()))?;
        tele::init(&config.telemetry).map_err(|e| ConfigError::new(e.to_string()))?;
        nofis_faults::init_from_env().map_err(|e| ConfigError::new(e.to_string()))?;
        if let Some(threads) = config.threads {
            nofis_parallel::set_thread_override(threads);
        }
        Ok(Nofis { config })
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &NofisConfig {
        &self.config
    }

    /// Runs the `M`-stage training of Algorithm 1, consuming `M·E·N`
    /// simulator calls (plus pilot calls under adaptive levels).
    ///
    /// Wrap `limit_state` in a
    /// [`CountingOracle`](nofis_prob::CountingOracle) to meter the budget.
    /// When [`NofisConfig::max_calls`] is set, training respects it as a
    /// hard cap.
    ///
    /// Each stage checkpoints its parameters at the best epoch loss; a
    /// divergent epoch (non-finite or exploding loss / log-det) rolls back
    /// to that checkpoint and retries with a halved learning rate, up to
    /// [`NofisConfig::stage_retries`] times. The recovery history is
    /// recorded in [`TrainedNofis::stage_reports`].
    ///
    /// # Errors
    ///
    /// * [`NofisError::InvalidInput`] if `limit_state.dim() < 2` (RealNVP
    ///   coupling layers need at least two coordinates).
    /// * [`NofisError::TrainingDiverged`] if a stage stays divergent after
    ///   all rollback retries.
    /// * [`NofisError::BudgetExhausted`] if `max_calls` runs out before the
    ///   final stage has completed at least one epoch.
    /// * [`NofisError::DegenerateProposal`] if an adaptive pilot batch
    ///   scores NaN on every sample.
    pub fn train<L: LimitState + ?Sized + Sync, R: Rng + StateRng>(
        &self,
        limit_state: &L,
        rng: &mut R,
    ) -> Result<TrainedNofis, NofisError> {
        let oracle = BudgetedOracle::new(limit_state, self.config.max_calls.unwrap_or(u64::MAX));
        self.train_within(&oracle, rng)
    }

    /// Like [`Nofis::train`] but drawing simulator calls from an existing
    /// [`BudgetedOracle`], so training and estimation can share one hard
    /// budget (this is what [`Nofis::run`] does).
    ///
    /// # Errors
    ///
    /// Same as [`Nofis::train`].
    pub fn train_within<L: LimitState + ?Sized + Sync, R: Rng + StateRng>(
        &self,
        oracle: &BudgetedOracle<'_, L>,
        rng: &mut R,
    ) -> Result<TrainedNofis, NofisError> {
        self.train_impl(oracle, rng, None)
    }

    /// The single training loop behind both [`Nofis::train_within`] and
    /// [`Nofis::resume_within`]. One code path means a resumed run and an
    /// uninterrupted run execute literally the same instructions after the
    /// restore point, which is what makes resume bitwise-exact.
    fn train_impl<L: LimitState + ?Sized + Sync, R: Rng + StateRng>(
        &self,
        oracle: &BudgetedOracle<'_, L>,
        rng: &mut R,
        resume: Option<ResumeRun>,
    ) -> Result<TrainedNofis, NofisError> {
        let dim = oracle.dim();
        if dim < 2 {
            return Err(NofisError::InvalidInput {
                message: format!(
                    "NOFIS requires dim >= 2 (RealNVP couplings split coordinates), got {dim}"
                ),
            });
        }
        let cfg = &self.config;
        let k = cfg.layers_per_stage;
        let max_stages = cfg.levels.max_stages();

        let fingerprint = checkpoint::config_fingerprint(cfg, dim);
        let mut checkpointer = cfg.checkpoint.clone().map(Checkpointer::new);

        let flow;
        let mut store;
        let mut levels: Vec<f64>;
        let mut loss_history: Vec<Vec<f64>>;
        let mut stage_reports: Vec<StageReport>;
        let start_stage: usize;
        let mut global_step: u64;
        let mut carry: Option<StageCarry>;
        match resume {
            None => {
                store = ParamStore::new();
                flow = RealNvp::new(&mut store, dim, max_stages * k, cfg.hidden, cfg.s_max, rng);
                levels = Vec::new();
                loss_history = Vec::new();
                stage_reports = Vec::new();
                start_stage = 0;
                global_step = 0;
                carry = None;
            }
            Some(r) => {
                flow = r.flow;
                store = r.store;
                levels = r.levels;
                loss_history = r.loss_history;
                stage_reports = r.stage_reports;
                start_stage = r.start_stage;
                global_step = r.global_step;
                carry = r.carry;
            }
        }
        // A mid-stage resume re-enters a stage whose threshold was already
        // chosen (and, for adaptive schedules, already paid for in pilot
        // calls): the first loop iteration restores it instead of picking.
        let mut resume_level = if carry.is_some() {
            levels.last().copied()
        } else {
            None
        };
        let base = StandardGaussian::new(dim);

        // One tape for the whole run: `reset()` between minibatches keeps
        // the node arena and recycles every buffer, so steady-state steps
        // allocate nothing. Frozen-stage pruning skips the backward kernels
        // of earlier coupling blocks without changing any surviving
        // gradient bit (DESIGN.md §9).
        let mut g = Graph::new();
        g.set_pruning(cfg.prune_frozen);
        // Trace-once/replay (DESIGN.md §13): the first minibatch of each
        // (rows, depth, frozen-mask) combination runs interpreted and is
        // lowered into a `CompiledStep`; subsequent matching minibatches
        // replay it. Replays are bitwise identical to the interpreted
        // engine, so the cache never changes results — any shape or mask
        // change (stage advance, tail minibatch, resume) simply retraces.
        let mut tape_cache: Option<TapeCache> = None;

        tele::event(tele::Level::Info, "train.start")
            .field("dim", dim)
            .field("max_stages", max_stages)
            .field("layers_per_stage", k)
            .field("budget", oracle.budget())
            .emit();

        for stage in start_stage..max_stages {
            // Stage-boundary readings for the per-stage telemetry deltas.
            // Plain u64 reads — never fed back into the computation.
            let stage_calls_start = oracle.used();
            let stage_stats_start = g.snapshot();
            let mut stage_steps = 0u64;
            let mut stage_span = tele::span(tele::Level::Info, "train.stage");

            // --- Pick this stage's threshold (restored verbatim on a
            //     mid-stage resume). ---
            let level = if let Some(level) = resume_level.take() {
                level
            } else {
                let level = match &cfg.levels {
                    Levels::Fixed(v) => v[stage],
                    Levels::AdaptiveQuantile { p0, pilot, .. } => {
                        if stage + 1 == max_stages {
                            0.0
                        } else {
                            let granted = oracle.grant(*pilot);
                            if granted == 0 {
                                return Err(budget_error(
                                    oracle,
                                    format!("pilot sampling for stage {}", stage + 1),
                                ));
                            }
                            let depth = stage * k;
                            // Draw serially (the rng is sequential), then score
                            // the pilot batch across the pool — the granted
                            // calls were planned above, and the batch values
                            // come back in sample order.
                            let xs: Vec<Vec<f64>> = (0..granted)
                                .map(|_| {
                                    if depth == 0 {
                                        base.sample(rng)
                                    } else {
                                        flow.sample(&store, depth, rng).0
                                    }
                                })
                                .collect();
                            let gvals = batch_values(oracle, &xs);
                            // `quantile` skips NaN scores; if the proposal only
                            // produces NaN there is nothing to schedule against.
                            let mut q = quantile(&gvals, *p0);
                            if q.is_nan() {
                                return Err(NofisError::DegenerateProposal {
                                    context: format!(
                                        "every pilot sample for stage {} scored NaN",
                                        stage + 1
                                    ),
                                });
                            }
                            // Overshoot guard: tempered training gives the stage
                            // proposal a heavy lower-g tail, which can crash the
                            // pilot quantile to 0 long before the proposal truly
                            // covers the failure region. Only allow the schedule
                            // to land on 0 when the pilot actually observes a
                            // healthy failure fraction; otherwise descend
                            // geometrically at most.
                            let frac_fail = gvals.iter().filter(|&&g| g <= 0.0).count() as f64
                                / gvals.len() as f64;
                            if let Some(&prev) = levels.last() {
                                if frac_fail < 0.5 * p0 {
                                    q = q.max(0.35 * prev);
                                }
                                // Enforce strict decrease: an undertrained stage
                                // can leave the pilot quantile at (or above) the
                                // previous threshold, stalling the schedule.
                                q = q.min(prev - 0.05 * prev.abs());
                            }
                            tele::event(tele::Level::Debug, "train.pilot")
                                .field("stage", stage + 1)
                                .field("granted", granted)
                                .field("quantile", q)
                                .field("frac_fail", frac_fail)
                                .emit();
                            if q <= 0.0 {
                                0.0
                            } else {
                                q
                            }
                        }
                    }
                };
                levels.push(level);
                level
            };
            tele::event(tele::Level::Info, "train.stage.start")
                .field("stage", stage + 1)
                .field("level", level)
                .emit();

            // --- Freeze everything before this stage's block. ---
            if cfg.freeze {
                for id in flow.param_ids_for_layers(0..stage * k) {
                    store.set_frozen(id, true);
                }
            }

            // --- Optimize D[q_{mK} || p_m^tau] (Eq. 8), with checkpoint
            //     rollback on divergence. ---
            let depth = (stage + 1) * k;
            let mb = cfg.minibatch.min(cfg.batch_size);
            let mut lr = cfg.learning_rate;
            let mut retries = 0usize;
            // A mid-stage resume enters the retry loop exactly once with the
            // restored cursor; retries after that start clean, like any
            // rollback pass.
            let mut stage_carry = carry.take();
            if let Some(c) = &stage_carry {
                lr = c.learning_rate;
                retries = c.retries;
                stage_steps = c.stage_steps;
            }
            let (stage_losses, best_loss, truncated) = loop {
                let mut opt = Adam::new(lr).with_max_grad_norm(cfg.max_grad_norm);
                let mut stage_losses = Vec::with_capacity(cfg.epochs);
                let mut best_loss = f64::INFINITY;
                let mut best_store = store.clone();
                let mut divergence: Option<(usize, String)> = None;
                let mut truncated = false;
                let mut start_epoch = 0usize;
                let mut epoch_carry: Option<(usize, f64, ParamStore)> = None;
                if let Some(c) = stage_carry.take() {
                    opt.restore_state(c.adam);
                    stage_losses = c.stage_losses;
                    best_loss = c.best_loss;
                    best_store = c.best_store;
                    start_epoch = c.epoch;
                    epoch_carry = Some((c.consumed, c.epoch_loss, c.epoch_start));
                }

                'epochs: for epoch in start_epoch..cfg.epochs {
                    let (mut consumed, mut epoch_loss, epoch_start) = match epoch_carry.take() {
                        Some((consumed, epoch_loss, epoch_start)) => {
                            (consumed, epoch_loss, epoch_start)
                        }
                        None => (0usize, 0.0, store.clone()),
                    };
                    while consumed < cfg.batch_size {
                        let want = mb.min(cfg.batch_size - consumed);
                        let n = oracle.grant(want);
                        if n == 0 {
                            if level == 0.0 && !stage_losses.is_empty() {
                                // Graceful truncation: the final stage has at
                                // least one full epoch at the target event,
                                // so the proposal is usable as-is.
                                truncated = true;
                                tele::event(tele::Level::Warn, "train.truncated")
                                    .field("stage", stage + 1)
                                    .field("epoch", epoch)
                                    .field("used", oracle.used())
                                    .emit();
                                break 'epochs;
                            }
                            return Err(budget_error(
                                oracle,
                                format!("training stage {}", stage + 1),
                            ));
                        }
                        // Engine selection: replay the compiled tape when one
                        // matches this (rows, depth, frozen-mask) exactly;
                        // otherwise trace interpreted (and compile the trace
                        // for the steps that follow).
                        let replaying = cfg.compile_tape
                            && tape_cache.as_ref().is_some_and(|c| {
                                c.depth == depth && c.n == n && c.step.mask_matches(&store)
                            });
                        // tempered term: min(tau * (a_m - g(z)), 0). A
                        // non-finite simulator response is sanitized to
                        // "safely non-failing, zero gradient" so one broken
                        // subregion cannot poison the whole batch (the call
                        // still counts against the budget).
                        // A panicking worker chunk (pool infrastructure, not
                        // the oracle — oracle panics are already contained
                        // in `BudgetedOracle`) is handled like a divergent
                        // minibatch: roll back to the best checkpoint and
                        // retry. The pool itself survives a worker panic, so
                        // retrying is sound. Both engines share the sanitize
                        // closure and the fixed-chunk row evaluator, so the
                        // oracle sees the same calls in the same order.
                        let (chunk_loss, logdet_mag, traced) = if replaying {
                            let cache = tape_cache.as_mut().expect("cache presence checked");
                            let replay =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    cache.step.replay_forward(
                                        &store,
                                        |buf| base.sample_fill(buf, rng),
                                        nofis_parallel::global(),
                                        |row| {
                                            let (v, grad) = oracle.value_grad(row);
                                            if v.is_finite() && grad.iter().all(|gi| gi.is_finite())
                                            {
                                                (v, grad)
                                            } else {
                                                (level + 1.0, vec![0.0; dim])
                                            }
                                        },
                                    );
                                }));
                            if replay.is_err() {
                                // A panic can leave the preplanned buffers
                                // half-written; drop the cache so the retry
                                // pass retraces from scratch.
                                tape_cache = None;
                                divergence = Some((
                                    epoch,
                                    "a worker thread panicked while evaluating the minibatch"
                                        .into(),
                                ));
                                break 'epochs;
                            }
                            (
                                cache.step.value(cache.loss).item(),
                                cache.step.value(cache.logdet).max_abs(),
                                None,
                            )
                        } else {
                            g.reset();
                            let x = g.constant_with(n, dim, |buf| base.sample_fill(buf, rng));
                            let (z, logdet) = flow.forward_graph(&store, &mut g, x, depth);
                            let eval =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    g.external_rowwise_par(z, nofis_parallel::global(), |row| {
                                        let (v, grad) = oracle.value_grad(row);
                                        if v.is_finite() && grad.iter().all(|gi| gi.is_finite()) {
                                            (v, grad)
                                        } else {
                                            (level + 1.0, vec![0.0; dim])
                                        }
                                    })
                                }));
                            let gvals = match eval {
                                Ok(gvals) => gvals,
                                Err(_) => {
                                    divergence = Some((
                                        epoch,
                                        "a worker thread panicked while evaluating the minibatch"
                                            .into(),
                                    ));
                                    break 'epochs;
                                }
                            };
                            let neg_tau_g = g.scale(gvals, -cfg.tau);
                            let shifted = g.add_scalar(neg_tau_g, cfg.tau * level);
                            let tempered = g.min_scalar(shifted, 0.0);
                            // base log-density of z: -D/2 ln 2π - ||z||²/2
                            let sq = g.square(z);
                            let ssq = g.sum_cols(sq);
                            let half = g.scale(ssq, -0.5);
                            let logp = g.add_scalar(half, -0.5 * dim as f64 * LN_2PI);

                            let a = g.add(logdet, tempered);
                            let per_sample = g.add(a, logp);
                            let mean = g.mean_all(per_sample);
                            let loss = g.neg(mean);
                            (
                                g.value(loss).item(),
                                g.value(logdet).max_abs(),
                                Some((x, logdet, loss)),
                            )
                        };
                        consumed += n;
                        if !chunk_loss.is_finite() || logdet_mag > LOGDET_DIVERGENCE_LIMIT {
                            divergence = Some((
                                epoch,
                                format!("minibatch loss = {chunk_loss}, |logdet| = {logdet_mag}"),
                            ));
                            break 'epochs;
                        }
                        match traced {
                            None => {
                                let cache = tape_cache.as_mut().expect("replayed from this cache");
                                cache.step.backward();
                                opt.step_fused(&mut store, &cache.step);
                            }
                            Some((x, logdet, loss)) => {
                                g.backward(loss);
                                if cfg.compile_tape {
                                    let step = CompiledStep::compile(&g, loss, Some(x), &store);
                                    if tele::enabled(tele::Level::Debug) {
                                        tele::event(tele::Level::Debug, "train.compile")
                                            .field("stage", stage + 1)
                                            .field("n", n)
                                            .field("depth", depth)
                                            .field("instrs", step.len())
                                            .field("backward_nodes", step.backward_nodes())
                                            .emit();
                                    }
                                    tape_cache = Some(TapeCache {
                                        depth,
                                        n,
                                        logdet,
                                        loss,
                                        step,
                                    });
                                }
                                opt.step_fused(&mut store, &g);
                            }
                        }
                        stage_steps += 1;
                        global_step += 1;
                        if tele::enabled(tele::Level::Trace) {
                            let mut step = tele::event(tele::Level::Trace, "train.step")
                                .field("stage", stage + 1)
                                .field("epoch", epoch)
                                .field("n", n)
                                .field("engine", if replaying { "replay" } else { "trace" })
                                .field("loss", chunk_loss);
                            if let Some(norm) = opt.last_grad_norm() {
                                step = step.field("grad_norm", norm);
                            }
                            step.emit();
                        }
                        epoch_loss += chunk_loss * n as f64;
                        // Mid-stage checkpoint site: the snapshot describes
                        // the state *after* this optimizer step, so resume
                        // re-enters the loop at the next minibatch. A
                        // pending preemption request (deadline, shutdown)
                        // forces a write here regardless of the interval:
                        // the checkpoint is the preempted run's resume
                        // point, and resuming replays the exact §11 path,
                        // so a preempted-then-resumed run is bitwise
                        // identical to an uninterrupted one.
                        let preempt_reason = preempt::current_requested();
                        let mut preempt_ckpt = false;
                        if let Some(cp) = &mut checkpointer {
                            if preempt_reason.is_some() || cp.due(global_step) {
                                preempt_ckpt = cp.write(&Checkpoint {
                                    config_fingerprint: fingerprint,
                                    dim: dim as u64,
                                    global_step,
                                    rng_state: rng.save_state(),
                                    oracle_spent: oracle.spent(),
                                    done: false,
                                    levels: levels.clone(),
                                    loss_history: loss_history.clone(),
                                    stage_reports: stage_reports.clone(),
                                    params: snapshot_params(&store),
                                    frozen: snapshot_frozen(&store),
                                    partial: Some(StagePartial {
                                        stage: stage as u64,
                                        epoch: epoch as u64,
                                        consumed: consumed as u64,
                                        epoch_loss,
                                        stage_losses: stage_losses.clone(),
                                        best_loss,
                                        retries: retries as u64,
                                        learning_rate: lr,
                                        stage_steps,
                                        best_params: snapshot_params(&best_store),
                                        epoch_start_params: snapshot_params(&epoch_start),
                                        adam: opt.export_state(),
                                    }),
                                });
                            }
                        }
                        if let Some(reason) = preempt_reason {
                            tele::event(tele::Level::Warn, "train.preempted")
                                .field("stage", stage + 1)
                                .field("global_step", global_step)
                                .field("reason", reason.as_str())
                                .field("checkpointed", preempt_ckpt)
                                .emit();
                            return Err(NofisError::Preempted {
                                stage: stage + 1,
                                global_step,
                                checkpointed: preempt_ckpt,
                                reason: reason.as_str().to_string(),
                            });
                        }
                    }
                    epoch_loss /= consumed as f64;
                    if !epoch_loss.is_finite() || epoch_loss.abs() > LOSS_DIVERGENCE_LIMIT {
                        divergence = Some((epoch, format!("epoch loss = {epoch_loss}")));
                        break 'epochs;
                    }
                    tele::event(tele::Level::Debug, "train.epoch")
                        .field("stage", stage + 1)
                        .field("epoch", epoch)
                        .field("loss", epoch_loss)
                        .emit();
                    stage_losses.push(epoch_loss);
                    if epoch_loss < best_loss {
                        // Checkpoint the parameters that *produced* this
                        // best loss — the state at the epoch's start.
                        best_loss = epoch_loss;
                        best_store = epoch_start;
                    }
                }

                match divergence {
                    None => break (stage_losses, best_loss, truncated),
                    Some((epoch, message)) => {
                        tele::event(tele::Level::Warn, "train.divergence")
                            .field("stage", stage + 1)
                            .field("epoch", epoch)
                            .field("detail", message.as_str())
                            .emit();
                        retries += 1;
                        if retries > cfg.stage_retries {
                            return Err(NofisError::TrainingDiverged {
                                stage: stage + 1,
                                epoch,
                                retries: retries - 1,
                                message,
                            });
                        }
                        // Roll back to the best checkpoint and retry with a
                        // gentler learning rate and fresh optimizer state.
                        store = best_store;
                        lr *= 0.5;
                        tele::event(tele::Level::Warn, "train.rollback")
                            .field("stage", stage + 1)
                            .field("retries", retries)
                            .field("lr", lr)
                            .emit();
                    }
                }
            };

            stage_reports.push(StageReport {
                stage: stage + 1,
                level,
                epochs_run: stage_losses.len(),
                retries,
                rolled_back: retries > 0,
                best_loss,
                final_loss: stage_losses.last().copied().unwrap_or(f64::NAN),
                learning_rate: lr,
                truncated,
            });

            // Close the stage span with its summary and per-stage resource
            // deltas (oracle spend, buffer-pool traffic, pruning work) —
            // `nofis-trace` derives allocs/step and calls/step from these.
            if stage_span.is_enabled() {
                let stats = g.snapshot();
                let stage_calls = oracle.used() - stage_calls_start;
                let pool_hits = stats.pool.hits - stage_stats_start.pool.hits;
                let pool_misses = stats.pool.misses - stage_stats_start.pool.misses;
                stage_span.field("stage", stage + 1);
                stage_span.field("level", level);
                stage_span.field("epochs", stage_losses.len());
                stage_span.field("steps", stage_steps);
                stage_span.field("retries", retries);
                stage_span.field("best_loss", best_loss);
                stage_span.field(
                    "final_loss",
                    stage_losses.last().copied().unwrap_or(f64::NAN),
                );
                stage_span.field("truncated", truncated);
                stage_span.field("oracle_calls", stage_calls);
                stage_span.field("pool_hits", pool_hits);
                stage_span.field("pool_misses", pool_misses);
                stage_span.field(
                    "skipped_nodes",
                    stats.skipped_nodes - stage_stats_start.skipped_nodes,
                );
                stage_span.field(
                    "pruned_nodes",
                    stats.pruned_nodes - stage_stats_start.pruned_nodes,
                );
                tele::counter(tele::Level::Debug, "oracle.calls", oracle.used()).emit();
                tele::counter(tele::Level::Debug, "autograd.pool.hits", stats.pool.hits).emit();
                tele::counter(
                    tele::Level::Debug,
                    "autograd.pool.misses",
                    stats.pool.misses,
                )
                .emit();
                tele::counter(
                    tele::Level::Debug,
                    "autograd.backward.skipped",
                    stats.skipped_nodes,
                )
                .emit();
                tele::counter(
                    tele::Level::Debug,
                    "autograd.tape.pruned",
                    stats.pruned_nodes,
                )
                .emit();
                let requests = stats.pool.requests();
                if requests > 0 {
                    tele::gauge(
                        tele::Level::Debug,
                        "autograd.pool.hit_rate",
                        stats.pool.hits as f64 / requests as f64,
                    )
                    .emit();
                }
            }
            stage_span.end();
            loss_history.push(stage_losses);

            let stage_done = truncated || level == 0.0;
            // Stage-boundary checkpoint site: always written when
            // checkpointing is on, so a crash between stages costs nothing
            // and a finished run resumes straight into estimation.
            if let Some(cp) = &mut checkpointer {
                cp.write(&Checkpoint {
                    config_fingerprint: fingerprint,
                    dim: dim as u64,
                    global_step,
                    rng_state: rng.save_state(),
                    oracle_spent: oracle.spent(),
                    done: stage_done,
                    levels: levels.clone(),
                    loss_history: loss_history.clone(),
                    stage_reports: stage_reports.clone(),
                    params: snapshot_params(&store),
                    frozen: snapshot_frozen(&store),
                    partial: None,
                });
            }
            if stage_done {
                // The schedule reached the target event (or the budget
                // truncated the final stage): stop and save the remaining
                // budget (further stages at level 0 were observed to
                // over-concentrate the proposal).
                break;
            }
        }

        // Defensive: the fixed schedule always ends at 0.0 by validation;
        // the adaptive one breaks on 0.0 or forces it at the last stage.
        debug_assert_eq!(levels.last().copied(), Some(0.0));

        if tele::enabled(tele::Level::Info) {
            tele::event(tele::Level::Info, "train.end")
                .field("stages", levels.len())
                .field("oracle_calls", oracle.used())
                .emit();
            // The pool is guaranteed built by now (every minibatch ran
            // through it), so this read never constructs anything.
            let usage = nofis_parallel::global().usage();
            tele::counter(tele::Level::Debug, "parallel.runs", usage.runs).emit();
            tele::counter(tele::Level::Debug, "parallel.chunks", usage.chunks).emit();
            tele::counter(
                tele::Level::Debug,
                "parallel.inline_runs",
                usage.inline_runs,
            )
            .emit();
            tele::counter(
                tele::Level::Debug,
                "parallel.helper_dispatches",
                usage.helper_dispatches,
            )
            .emit();
        }

        Ok(TrainedNofis {
            flow,
            store,
            levels,
            loss_history,
            stage_reports,
            layers_per_stage: k,
        })
    }

    /// Trains and immediately produces the final estimate with
    /// `config.n_is` samples, sharing one hard budget
    /// ([`NofisConfig::max_calls`], unlimited when `None`) across both
    /// phases; returns the trained model and the estimate (whose
    /// [`IsResult::rung`] records which ladder rung produced it).
    ///
    /// # Errors
    ///
    /// Same as [`Nofis::train`] plus the estimation errors of
    /// [`TrainedNofis::estimate_within`].
    pub fn run<L: LimitState + ?Sized + Sync, R: Rng + StateRng>(
        &self,
        limit_state: &L,
        rng: &mut R,
    ) -> Result<(TrainedNofis, IsResult), NofisError> {
        let oracle = BudgetedOracle::new(limit_state, self.config.max_calls.unwrap_or(u64::MAX));
        let trained = self.train_within(&oracle, rng)?;
        let (result, _diag) = trained.estimate_within(&oracle, self.config.n_is, rng)?;
        Ok((trained, result))
    }

    /// Like [`Nofis::run`], but first tries to continue from the newest
    /// valid checkpoint in [`NofisConfig::checkpoint`]'s directory. With no
    /// checkpoint configured, no checkpoint on disk, or an empty directory,
    /// this is exactly [`Nofis::run`]; with one, the interrupted run is
    /// continued and produces results bitwise identical to an
    /// uninterrupted run of the same seed and configuration (DESIGN.md
    /// §11). Pass the same seeded RNG you would pass a fresh run — its
    /// state is overwritten from the checkpoint when one is found.
    ///
    /// # Errors
    ///
    /// Same as [`Nofis::run`], plus [`NofisError::Checkpoint`] when the
    /// newest valid checkpoint belongs to a different configuration or
    /// problem dimension.
    pub fn run_or_resume<L: LimitState + ?Sized + Sync, R: Rng + StateRng>(
        &self,
        limit_state: &L,
        rng: &mut R,
    ) -> Result<(TrainedNofis, IsResult), NofisError> {
        let oracle = BudgetedOracle::new(limit_state, self.config.max_calls.unwrap_or(u64::MAX));
        let trained = match self.resume_within(&oracle, rng)? {
            Some(trained) => trained,
            None => self.train_within(&oracle, rng)?,
        };
        let (result, _diag) = trained.estimate_within(&oracle, self.config.n_is, rng)?;
        Ok((trained, result))
    }

    /// Resumes training from the newest valid checkpoint, drawing simulator
    /// calls from an existing [`BudgetedOracle`] (whose spent-call count is
    /// restored from the checkpoint, so the hard budget spans the crash).
    /// Returns `Ok(None)` when there is nothing to resume from — no
    /// checkpoint configured, or no valid checkpoint on disk — and the
    /// caller should train from scratch. Corrupt or torn checkpoint files
    /// are skipped by the loader (falling back to the previous generation),
    /// never an error here.
    ///
    /// # Errors
    ///
    /// [`NofisError::Checkpoint`] when the newest valid checkpoint was
    /// written by a different configuration or dimension, plus the training
    /// errors of [`Nofis::train_within`] for the continued run.
    pub fn resume_within<L: LimitState + ?Sized + Sync, R: Rng + StateRng>(
        &self,
        oracle: &BudgetedOracle<'_, L>,
        rng: &mut R,
    ) -> Result<Option<TrainedNofis>, NofisError> {
        let Some(ckpt_cfg) = &self.config.checkpoint else {
            return Ok(None);
        };
        let ckpt_dir = ckpt_cfg.effective_dir();
        let loaded = checkpoint::load_latest(&ckpt_dir).map_err(|e| NofisError::Checkpoint {
            message: format!("cannot list {}: {e}", ckpt_dir.display()),
        })?;
        let Some((generation, ckpt)) = loaded else {
            return Ok(None);
        };

        let dim = oracle.dim();
        if dim < 2 {
            return Err(NofisError::InvalidInput {
                message: format!(
                    "NOFIS requires dim >= 2 (RealNVP couplings split coordinates), got {dim}"
                ),
            });
        }
        if ckpt.dim != dim as u64 {
            return Err(NofisError::Checkpoint {
                message: format!(
                    "checkpoint dimension {} does not match the limit state's {dim}",
                    ckpt.dim
                ),
            });
        }
        if ckpt.config_fingerprint != checkpoint::config_fingerprint(&self.config, dim) {
            return Err(NofisError::Checkpoint {
                message: "checkpoint was written by a different configuration; clear the \
                          checkpoint directory (or restore the original configuration) to proceed"
                    .into(),
            });
        }
        let cfg = &self.config;
        let k = cfg.layers_per_stage;
        let max_stages = cfg.levels.max_stages();

        // Rebuild the flow structure with a throwaway RNG — the parameter
        // values are overwritten from the checkpoint, and the live stream
        // must stay at its restored position.
        let mut store = ParamStore::new();
        let mut init_rng = StdRng::seed_from_u64(0);
        let flow = RealNvp::new(
            &mut store,
            dim,
            max_stages * k,
            cfg.hidden,
            cfg.s_max,
            &mut init_rng,
        );
        restore_into(&mut store, &ckpt.params, &ckpt.frozen)?;

        tele::event(tele::Level::Info, "ckpt.load")
            .field("generation", generation)
            .field("global_step", ckpt.global_step)
            .field("done", ckpt.done)
            .field("mid_stage", ckpt.partial.is_some())
            .field("oracle_spent", ckpt.oracle_spent)
            .emit();

        oracle.restore_spent(ckpt.oracle_spent);
        rng.load_state(ckpt.rng_state);

        if ckpt.done {
            return Ok(Some(TrainedNofis {
                flow,
                store,
                levels: ckpt.levels,
                loss_history: ckpt.loss_history,
                stage_reports: ckpt.stage_reports,
                layers_per_stage: k,
            }));
        }

        let start_stage = match &ckpt.partial {
            Some(p) => p.stage as usize,
            None => ckpt.stage_reports.len(),
        };
        if start_stage >= max_stages
            || (ckpt.partial.is_some() && ckpt.levels.len() != start_stage + 1)
            || (ckpt.partial.is_none() && ckpt.levels.len() != start_stage)
        {
            return Err(NofisError::Checkpoint {
                message: format!(
                    "stage cursor out of range (stage {start_stage}, {} levels, {} stages max)",
                    ckpt.levels.len(),
                    max_stages
                ),
            });
        }
        let carry = match ckpt.partial {
            None => None,
            Some(p) => {
                if p.epoch as usize >= cfg.epochs || p.consumed as usize > cfg.batch_size {
                    return Err(NofisError::Checkpoint {
                        message: format!(
                            "epoch cursor out of range (epoch {}, consumed {})",
                            p.epoch, p.consumed
                        ),
                    });
                }
                let mut best_store = store.clone();
                restore_into(&mut best_store, &p.best_params, &ckpt.frozen)?;
                let mut epoch_start = store.clone();
                restore_into(&mut epoch_start, &p.epoch_start_params, &ckpt.frozen)?;
                Some(StageCarry {
                    epoch: p.epoch as usize,
                    consumed: p.consumed as usize,
                    epoch_loss: p.epoch_loss,
                    epoch_start,
                    stage_losses: p.stage_losses,
                    best_loss: p.best_loss,
                    best_store,
                    retries: p.retries as usize,
                    learning_rate: p.learning_rate,
                    stage_steps: p.stage_steps,
                    adam: p.adam,
                })
            }
        };
        self.train_impl(
            oracle,
            rng,
            Some(ResumeRun {
                flow,
                store,
                levels: ckpt.levels,
                loss_history: ckpt.loss_history,
                stage_reports: ckpt.stage_reports,
                global_step: ckpt.global_step,
                start_stage,
                carry,
            }),
        )
        .map(Some)
    }
}

/// Mid-stage resume cursor rebuilt from a validated
/// [`StagePartial`]: the retry-loop state the resumed stage enters with.
struct StageCarry {
    epoch: usize,
    consumed: usize,
    epoch_loss: f64,
    epoch_start: ParamStore,
    stage_losses: Vec<f64>,
    best_loss: f64,
    best_store: ParamStore,
    retries: usize,
    learning_rate: f64,
    stage_steps: u64,
    adam: AdamState,
}

/// A fully validated and rebuilt resume request handed to `train_impl`.
struct ResumeRun {
    flow: RealNvp,
    store: ParamStore,
    levels: Vec<f64>,
    loss_history: Vec<Vec<f64>>,
    stage_reports: Vec<StageReport>,
    global_step: u64,
    start_stage: usize,
    carry: Option<StageCarry>,
}

/// Clones the store's parameter tensors in id order (the checkpoint's
/// canonical parameter layout).
fn snapshot_params(store: &ParamStore) -> Vec<Tensor> {
    store.iter().map(|(_, t)| t.clone()).collect()
}

/// The per-parameter frozen flags in id order.
fn snapshot_frozen(store: &ParamStore) -> Vec<bool> {
    store.iter().map(|(id, _)| store.is_frozen(id)).collect()
}

/// Overwrites `store`'s parameter values and frozen flags from a
/// checkpoint, validating counts and shapes against the freshly built flow.
fn restore_into(
    store: &mut ParamStore,
    params: &[Tensor],
    frozen: &[bool],
) -> Result<(), NofisError> {
    if params.len() != store.len() || frozen.len() != store.len() {
        return Err(NofisError::Checkpoint {
            message: format!(
                "checkpoint holds {} parameter tensors and {} frozen flags, the flow has {}",
                params.len(),
                frozen.len(),
                store.len()
            ),
        });
    }
    let ids: Vec<ParamId> = store.iter().map(|(id, _)| id).collect();
    for ((t, &f), id) in params.iter().zip(frozen.iter()).zip(ids) {
        let current = store.get(id);
        if (current.rows(), current.cols()) != (t.rows(), t.cols()) {
            return Err(NofisError::Checkpoint {
                message: format!(
                    "parameter {} has shape {}x{}, the flow expects {}x{}",
                    id.index(),
                    t.rows(),
                    t.cols(),
                    current.rows(),
                    current.cols()
                ),
            });
        }
        *store.get_mut(id) = t.clone();
        store.set_frozen(id, f);
    }
    Ok(())
}

/// A trained NOFIS model: the flow, its parameters, the realized threshold
/// schedule, the per-stage training losses and health reports.
#[derive(Debug, Clone)]
pub struct TrainedNofis {
    flow: RealNvp,
    store: ParamStore,
    levels: Vec<f64>,
    loss_history: Vec<Vec<f64>>,
    stage_reports: Vec<StageReport>,
    layers_per_stage: usize,
}

impl TrainedNofis {
    /// The realized thresholds `a_1 > … > a_M = 0` (for adaptive schedules
    /// these are the pilot-quantile choices actually used).
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Per-stage, per-epoch training losses (Figure 3e of the paper).
    pub fn loss_history(&self) -> &[Vec<f64>] {
        &self.loss_history
    }

    /// Per-stage training health reports (retries, rollbacks, truncation).
    pub fn stage_reports(&self) -> &[StageReport] {
        &self.stage_reports
    }

    /// Number of trained stages `M`.
    pub fn stages(&self) -> usize {
        self.levels.len()
    }

    /// Coupling layers per stage (`K`).
    pub fn layers_per_stage(&self) -> usize {
        self.layers_per_stage
    }

    /// Total flow depth actually trained (`M·K`).
    pub fn depth(&self) -> usize {
        self.stages() * self.layers_per_stage
    }

    /// The final proposal distribution `q_{MK}`.
    pub fn proposal(&self) -> FlowProposal<'_> {
        FlowProposal::new(&self.flow, &self.store, self.depth())
    }

    /// The intermediate stage proposal `q_{mK}` for `stage` in `1..=M`
    /// (Figure 3a–d of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is zero or exceeds the trained stage count.
    pub fn stage_proposal(&self, stage: usize) -> FlowProposal<'_> {
        assert!(
            stage >= 1 && stage <= self.stages(),
            "stage {stage} out of range 1..={}",
            self.stages()
        );
        FlowProposal::new(&self.flow, &self.store, stage * self.layers_per_stage)
    }

    /// Final importance-sampling estimate of `P[g(x) ≤ 0]` (Eq. 2), guarded
    /// by the fallback ladder of [`TrainedNofis::estimate_within`]. The
    /// standalone call is given a hard budget of `4 · n_is` simulator calls
    /// (one `n_is` tranche per ladder rung); the healthy path consumes
    /// exactly `n_is`.
    ///
    /// # Errors
    ///
    /// See [`TrainedNofis::estimate_within`].
    pub fn estimate<L: LimitState + ?Sized + Sync>(
        &self,
        limit_state: &L,
        n_is: usize,
        rng: &mut impl Rng,
    ) -> Result<IsResult, NofisError> {
        self.estimate_with_diagnostics(limit_state, n_is, rng)
            .map(|(result, _)| result)
    }

    /// Like [`TrainedNofis::estimate`] but also returns
    /// [`WeightDiagnostics`] over the finite importance weights of the
    /// accepted rung (`None` when that rung observed no failure hits, or
    /// for the plain-Monte-Carlo rung, which has no weights).
    ///
    /// # Errors
    ///
    /// See [`TrainedNofis::estimate_within`].
    pub fn estimate_with_diagnostics<L: LimitState + ?Sized + Sync>(
        &self,
        limit_state: &L,
        n_is: usize,
        rng: &mut impl Rng,
    ) -> Result<(IsResult, Option<WeightDiagnostics>), NofisError> {
        let budget = (n_is as u64).saturating_mul(ESTIMATE_BUDGET_FACTOR);
        let oracle = BudgetedOracle::new(limit_state, budget);
        self.estimate_within(&oracle, n_is, rng)
    }

    /// The guarded estimation fallback ladder, drawing all simulator calls
    /// from `oracle`:
    ///
    /// 1. the final proposal `q_{MK}`;
    /// 2. the previous stage's proposal `q_{(M−1)K}` (less concentrated);
    /// 3. the defensive mixture `α·p + (1−α)·q_{MK}` with `α = 1/2`, whose
    ///    weights are bounded by `1/α`;
    /// 4. plain Monte Carlo within the remaining budget, accepted
    ///    unconditionally.
    ///
    /// A rung is accepted when its estimate is finite, it observed at least
    /// one failure hit, and [`WeightDiagnostics::looks_healthy`] holds over
    /// its finite log-weights; otherwise the ladder descends. The accepted
    /// rung is recorded in [`IsResult::rung`]. If the budget runs out
    /// mid-ladder, the last computed (finite, budget-respecting) result is
    /// returned instead of overrunning.
    ///
    /// # Errors
    ///
    /// * [`NofisError::InvalidInput`] if `n_is == 0` or the oracle's
    ///   dimension does not match the trained flow.
    /// * [`NofisError::BudgetExhausted`] if not even the first rung could
    ///   draw a single sample.
    pub fn estimate_within<L: LimitState + ?Sized + Sync>(
        &self,
        oracle: &BudgetedOracle<'_, L>,
        n_is: usize,
        rng: &mut impl Rng,
    ) -> Result<(IsResult, Option<WeightDiagnostics>), NofisError> {
        let mut span = tele::span(tele::Level::Info, "estimate");
        let calls_start = oracle.used();
        let result = self.estimate_ladder(oracle, n_is, rng);
        if span.is_enabled() {
            match &result {
                Ok((r, _)) => {
                    span.field("rung", rung_label(&r.rung));
                    span.field("rank", r.rung.rank());
                    span.field("estimate", r.estimate);
                    span.field("hits", r.hits);
                    span.field("ess", r.effective_sample_size);
                }
                Err(e) => span.field("error", e.to_string()),
            }
            span.field("oracle_calls", oracle.used() - calls_start);
        }
        span.end();
        result
    }

    /// The ladder body of [`TrainedNofis::estimate_within`], separated so
    /// the telemetry span wraps every return path exactly once.
    fn estimate_ladder<L: LimitState + ?Sized + Sync>(
        &self,
        oracle: &BudgetedOracle<'_, L>,
        n_is: usize,
        rng: &mut impl Rng,
    ) -> Result<(IsResult, Option<WeightDiagnostics>), NofisError> {
        if n_is == 0 {
            return Err(NofisError::InvalidInput {
                message: "n_is must be positive".into(),
            });
        }
        if oracle.dim() != self.flow.dim() {
            return Err(NofisError::InvalidInput {
                message: format!(
                    "limit state dimension {} does not match trained flow dimension {}",
                    oracle.dim(),
                    self.flow.dim()
                ),
            });
        }
        let p = StandardGaussian::new(self.flow.dim());
        let final_prop = self.proposal();

        // Rung 1: the final proposal.
        let first = match run_rung(
            oracle,
            &final_prop,
            &p,
            n_is,
            FallbackRung::FinalProposal,
            rng,
        ) {
            Some(r) => r,
            None => return Err(budget_error(oracle, "the final-proposal estimate".into())),
        };
        if rung_is_healthy(&first) {
            return Ok(first);
        }
        let mut last = first;

        // Rung 2: the previous stage's (less concentrated) proposal.
        if self.stages() >= 2 {
            let prev_stage = self.stages() - 1;
            let prev = self.stage_proposal(prev_stage);
            match run_rung(
                oracle,
                &prev,
                &p,
                n_is,
                FallbackRung::StageProposal { stage: prev_stage },
                rng,
            ) {
                Some(r) => {
                    if rung_is_healthy(&r) {
                        return Ok(r);
                    }
                    if r.0.estimate.is_finite() {
                        last = r;
                    }
                }
                None => return accept_last(last),
            }
        }

        // Rung 3: the defensive mixture with the base distribution.
        if let Ok(defensive) = DefensiveMixture::new(&final_prop, DEFENSIVE_ALPHA) {
            match run_rung(
                oracle,
                &defensive,
                &p,
                n_is,
                FallbackRung::DefensiveMixture {
                    alpha: DEFENSIVE_ALPHA,
                },
                rng,
            ) {
                Some(r) => {
                    if rung_is_healthy(&r) {
                        return Ok(r);
                    }
                    if r.0.estimate.is_finite() {
                        last = r;
                    }
                }
                None => return accept_last(last),
            }
        }

        // Rung 4: plain Monte Carlo within the remaining budget, accepted
        // unconditionally — it cannot produce degenerate weights.
        let n = oracle.grant(n_is);
        if n == 0 {
            return accept_last(last);
        }
        let mc = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            monte_carlo(oracle, 0.0, n, rng)
        })) {
            Ok(mc) => mc,
            Err(_) => {
                tele::event(tele::Level::Warn, "estimate.rung_panicked")
                    .field("rung", rung_label(&FallbackRung::PlainMonteCarlo))
                    .field("rank", FallbackRung::PlainMonteCarlo.rank())
                    .emit();
                return accept_last(last);
            }
        };
        let result = IsResult {
            estimate: mc.estimate(),
            hits: mc.hits,
            effective_sample_size: mc.hits as f64,
            rung: FallbackRung::PlainMonteCarlo,
        };
        tele::event(tele::Level::Debug, "estimate.rung")
            .field("rung", rung_label(&result.rung))
            .field("rank", result.rung.rank())
            .field("granted", n)
            .field("estimate", result.estimate)
            .field("hits", result.hits)
            .field("ess", result.effective_sample_size)
            .field("healthy", true)
            .emit();
        Ok((result, None))
    }

    /// Exact log-density of the final proposal at `x` (used by the
    /// visualization harnesses).
    pub fn log_density(&self, x: &[f64]) -> f64 {
        self.flow.log_density(&self.store, x, self.depth())
    }

    /// Borrows the underlying flow and parameters (read-only diagnostics).
    pub fn flow(&self) -> (&RealNvp, &ParamStore) {
        (&self.flow, &self.store)
    }
}

/// Accepts the best rung seen so far when the ladder is forced to stop
/// early (budget dry or the plain-MC rung lost to a panic) — unless that
/// best is itself unusable, in which case the caller gets a typed error
/// rather than an `Ok` carrying a non-finite estimate.
fn accept_last(
    last: (IsResult, Option<WeightDiagnostics>),
) -> Result<(IsResult, Option<WeightDiagnostics>), NofisError> {
    if last.0.estimate.is_finite() {
        Ok(last)
    } else {
        Err(NofisError::DegenerateProposal {
            context: "no estimation ladder rung produced a usable (finite) estimate".into(),
        })
    }
}

/// Runs one ladder rung within the budget: `None` when not even one sample
/// is affordable, otherwise the tagged result plus diagnostics over the
/// finite log-weights.
fn run_rung<L: LimitState + ?Sized + Sync, Q: Proposal + ?Sized + Sync>(
    oracle: &BudgetedOracle<'_, L>,
    proposal: &Q,
    p: &StandardGaussian,
    n_is: usize,
    rung: FallbackRung,
    rng: &mut impl Rng,
) -> Option<(IsResult, Option<WeightDiagnostics>)> {
    let n = oracle.grant(n_is);
    if n == 0 {
        tele::event(tele::Level::Debug, "estimate.rung")
            .field("rung", rung_label(&rung))
            .field("rank", rung.rank())
            .field("granted", 0u64)
            .emit();
        return None;
    }
    // A worker-thread panic during the pooled batch evaluation is contained
    // here and surfaces as an unhealthy rung, so the ladder descends to a
    // less demanding proposal instead of taking the whole estimate down.
    let eval = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        importance_sampling_detailed(oracle, 0.0, proposal, p, n, rng)
    }));
    let (result, log_weights) = match eval {
        Ok(v) => v,
        Err(_) => {
            tele::event(tele::Level::Warn, "estimate.rung_panicked")
                .field("rung", rung_label(&rung))
                .field("rank", rung.rank())
                .emit();
            let poisoned = IsResult {
                estimate: f64::NAN,
                hits: 0,
                effective_sample_size: 0.0,
                rung,
            };
            return Some((poisoned, None));
        }
    };
    let finite: Vec<f64> = log_weights.into_iter().filter(|w| w.is_finite()).collect();
    let diag = if finite.is_empty() {
        None
    } else {
        Some(WeightDiagnostics::from_log_weights(&finite))
    };
    let out = (result.with_rung(rung), diag);
    if tele::enabled(tele::Level::Debug) {
        let (r, d) = &out;
        let mut ev = tele::event(tele::Level::Debug, "estimate.rung")
            .field("rung", rung_label(&r.rung))
            .field("rank", r.rung.rank())
            .field("granted", n)
            .field("estimate", r.estimate)
            .field("hits", r.hits)
            .field("ess", r.effective_sample_size)
            .field("healthy", rung_is_healthy(&out));
        if let Some(d) = d {
            ev = ev.field("max_weight_share", d.max_weight_share);
            if let Some(tail) = d.hill_tail_index {
                ev = ev.field("hill_tail_index", tail);
            }
        }
        ev.emit();
    }
    Some(out)
}

/// Stable machine-readable label for a ladder rung in telemetry fields
/// (`FallbackRung`'s `Display` is for humans and carries parameters).
fn rung_label(rung: &FallbackRung) -> &'static str {
    match rung {
        FallbackRung::FinalProposal => "final_proposal",
        FallbackRung::StageProposal { .. } => "stage_proposal",
        FallbackRung::DefensiveMixture { .. } => "defensive_mixture",
        FallbackRung::PlainMonteCarlo => "plain_monte_carlo",
    }
}

/// A rung is accepted when its estimate is finite, it saw at least one
/// failure hit, and the weight diagnostics look healthy.
fn rung_is_healthy((result, diag): &(IsResult, Option<WeightDiagnostics>)) -> bool {
    result.estimate.is_finite()
        && result.hits > 0
        && diag.as_ref().is_some_and(|d| d.looks_healthy())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_prob::{log_error, normal_cdf, CountingOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// g(x) = beta - x0 in 2-D: P[fail] = 1 - Φ(beta), analytic gradient.
    struct HalfSpace {
        beta: f64,
    }
    impl LimitState for HalfSpace {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            self.beta - x[0]
        }
        fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
            (self.beta - x[0], vec![-1.0, 0.0])
        }
        fn name(&self) -> &str {
            "halfspace"
        }
    }

    fn small_config(levels: Levels) -> NofisConfig {
        NofisConfig {
            levels,
            layers_per_stage: 4,
            hidden: 16,
            epochs: 12,
            batch_size: 100,
            n_is: 1000,
            tau: 15.0,
            learning_rate: 8e-3,
            ..Default::default()
        }
    }

    #[test]
    fn estimates_halfspace_tail_with_fixed_levels() {
        let ls = HalfSpace { beta: 3.5 }; // P ≈ 2.33e-4
        let oracle = CountingOracle::new(&ls);
        let cfg = small_config(Levels::Fixed(vec![2.0, 1.0, 0.0]));
        let budget = cfg.training_budget() + cfg.n_is as u64;
        let nofis = Nofis::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let (trained, result) = nofis.run(&oracle, &mut rng).unwrap();

        let golden = 1.0 - normal_cdf(3.5);
        let err = log_error(result.estimate, golden);
        assert!(
            err < 0.7,
            "estimate {} vs golden {golden}: log error {err}",
            result.estimate
        );
        // The healthy path uses the final proposal and exactly the nominal
        // budget — no hidden fallback resampling.
        assert_eq!(result.rung, FallbackRung::FinalProposal);
        assert_eq!(oracle.calls(), budget);
        assert_eq!(trained.levels(), &[2.0, 1.0, 0.0]);
        assert_eq!(trained.stages(), 3);
        assert_eq!(trained.depth(), 12);
        let reports = trained.stage_reports();
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| !r.rolled_back && !r.truncated));
        assert!(reports.iter().all(|r| r.epochs_run == 12));
    }

    #[test]
    fn adaptive_levels_reach_zero() {
        let ls = HalfSpace { beta: 3.0 };
        let oracle = CountingOracle::new(&ls);
        let cfg = small_config(Levels::AdaptiveQuantile {
            max_stages: 4,
            p0: 0.15,
            pilot: 100,
        });
        let nofis = Nofis::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let trained = nofis.train(&oracle, &mut rng).unwrap();
        let levels = trained.levels();
        assert_eq!(*levels.last().unwrap(), 0.0);
        // Levels decrease strictly until 0.0, then may repeat 0.0
        // (refinement stages).
        let nonzero: Vec<f64> = levels.iter().copied().take_while(|&l| l > 0.0).collect();
        assert!(nonzero.windows(2).all(|w| w[1] < w[0]), "levels {levels:?}");
    }

    #[test]
    fn training_reduces_first_stage_loss() {
        let ls = HalfSpace { beta: 3.0 };
        let cfg = small_config(Levels::Fixed(vec![1.5, 0.0]));
        let nofis = Nofis::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trained = nofis.train(&ls, &mut rng).unwrap();
        let losses = &trained.loss_history()[0];
        let head = losses[..3].iter().sum::<f64>() / 3.0;
        let tail = losses[losses.len() - 3..].iter().sum::<f64>() / 3.0;
        assert!(tail < head, "losses did not decrease: {losses:?}");
        // The report agrees with the loss history.
        let report = &trained.stage_reports()[0];
        assert_eq!(report.epochs_run, losses.len());
        assert_eq!(report.final_loss, *losses.last().unwrap());
        assert!(report.best_loss <= report.final_loss);
    }

    #[test]
    fn stage_proposals_are_exposed() {
        let ls = HalfSpace { beta: 3.0 };
        let cfg = small_config(Levels::Fixed(vec![1.0, 0.0]));
        let nofis = Nofis::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let trained = nofis.train(&ls, &mut rng).unwrap();
        assert_eq!(trained.stage_proposal(1).depth(), 4);
        assert_eq!(trained.stage_proposal(2).depth(), 8);
        assert_eq!(trained.proposal().depth(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stage_proposal_bounds_checked() {
        let ls = HalfSpace { beta: 3.0 };
        let cfg = small_config(Levels::Fixed(vec![0.0]));
        let trained = Nofis::new(cfg)
            .unwrap()
            .train(&ls, &mut StdRng::seed_from_u64(0))
            .unwrap();
        let _ = trained.stage_proposal(2);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = NofisConfig {
            levels: Levels::Fixed(vec![1.0]), // does not end at 0
            ..Default::default()
        };
        assert!(Nofis::new(cfg).is_err());
    }

    #[test]
    fn one_dimensional_input_is_invalid_input() {
        struct OneD;
        impl LimitState for OneD {
            fn dim(&self) -> usize {
                1
            }
            fn value(&self, x: &[f64]) -> f64 {
                3.0 - x[0]
            }
        }
        let cfg = small_config(Levels::Fixed(vec![0.0]));
        let nofis = Nofis::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let err = nofis.train(&OneD, &mut rng).unwrap_err();
        assert!(matches!(err, NofisError::InvalidInput { .. }), "{err}");
        let err = nofis.run(&OneD, &mut rng).unwrap_err();
        assert!(matches!(err, NofisError::InvalidInput { .. }), "{err}");
    }

    #[test]
    fn zero_n_is_is_invalid_input() {
        let ls = HalfSpace { beta: 3.0 };
        let cfg = NofisConfig {
            epochs: 2,
            ..small_config(Levels::Fixed(vec![0.0]))
        };
        let mut rng = StdRng::seed_from_u64(0);
        let trained = Nofis::new(cfg).unwrap().train(&ls, &mut rng).unwrap();
        let err = trained.estimate(&ls, 0, &mut rng).unwrap_err();
        assert!(matches!(err, NofisError::InvalidInput { .. }), "{err}");
    }

    #[test]
    fn budget_exhaustion_before_final_stage_is_an_error() {
        let ls = HalfSpace { beta: 3.5 };
        let oracle = CountingOracle::new(&ls);
        let cfg = NofisConfig {
            max_calls: Some(150), // stage 1 alone needs 12 * 100 calls
            ..small_config(Levels::Fixed(vec![2.0, 1.0, 0.0]))
        };
        let nofis = Nofis::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let err = nofis.run(&oracle, &mut rng).unwrap_err();
        assert!(matches!(err, NofisError::BudgetExhausted { .. }), "{err}");
        // The cap is honored exactly: truncated grants, no overrun.
        assert_eq!(oracle.calls(), 150);
    }

    #[test]
    fn final_stage_budget_truncation_is_graceful() {
        let ls = HalfSpace { beta: 2.0 };
        let oracle = CountingOracle::new(&ls);
        // Single stage at level 0: 12 epochs * 100 calls nominal, capped so
        // only ~3 epochs fit.
        let cfg = NofisConfig {
            max_calls: Some(350),
            ..small_config(Levels::Fixed(vec![0.0]))
        };
        let nofis = Nofis::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let trained = nofis.train(&oracle, &mut rng).unwrap();
        let report = &trained.stage_reports()[0];
        assert!(report.truncated, "report: {report}");
        assert!(report.epochs_run >= 1 && report.epochs_run < 12);
    }
}
