use crate::ConfigError;
use std::fmt;

/// Typed failure modes of the NOFIS pipeline.
///
/// Every fallible public entry point ([`Nofis::train`](crate::Nofis::train),
/// [`Nofis::run`](crate::Nofis::run), the estimation methods on
/// [`TrainedNofis`](crate::TrainedNofis)) returns this error instead of
/// panicking, so a production yield run can distinguish "your inputs are
/// wrong" from "the optimizer blew up" from "you ran out of simulator
/// budget" and react accordingly.
#[derive(Debug, Clone, PartialEq)]
pub enum NofisError {
    /// The caller supplied an unusable input (e.g. a limit state with fewer
    /// than two coordinates, a zero sample count, or an invalid
    /// configuration).
    InvalidInput {
        /// What was wrong with the input.
        message: String,
    },
    /// Training diverged (non-finite or exploding loss) and did not recover
    /// within the configured number of rollback retries
    /// ([`NofisConfig::stage_retries`](crate::NofisConfig::stage_retries)).
    TrainingDiverged {
        /// The 1-based stage that failed.
        stage: usize,
        /// The epoch (0-based, within the failing pass) where divergence
        /// was last detected.
        epoch: usize,
        /// Rollback retries that were attempted before giving up.
        retries: usize,
        /// Diagnostic detail (e.g. the offending loss value).
        message: String,
    },
    /// The hard simulator-call budget ran out before the requested work
    /// could complete (and graceful truncation was not possible).
    BudgetExhausted {
        /// Calls consumed when the budget ran dry.
        used: u64,
        /// The configured budget.
        budget: u64,
        /// What the pipeline was doing when it ran out.
        context: String,
    },
    /// A learned proposal was too degenerate to use at all (e.g. every
    /// pilot sample it produced scored NaN).
    DegenerateProposal {
        /// What was degenerate and where.
        context: String,
    },
    /// A durable checkpoint could not be used for resume (it was written by
    /// a different configuration, a different problem dimension, or its
    /// contents do not fit the flow it claims to describe). Corrupt *files*
    /// never produce this error — the loader skips them — only a valid
    /// checkpoint that contradicts the current run does.
    Checkpoint {
        /// Why the checkpoint was rejected.
        message: String,
    },
    /// Training was preempted by a supervisor (deadline hit or graceful
    /// shutdown) at a minibatch boundary. When `checkpointed` is true the
    /// run left a durable checkpoint at the preemption point and
    /// [`Nofis::run_or_resume`](crate::Nofis::run_or_resume) will finish it
    /// bitwise-identically to an uninterrupted run.
    Preempted {
        /// The 1-based stage that was interrupted.
        stage: usize,
        /// The global optimizer-step cursor at the preemption point.
        global_step: u64,
        /// Whether a checkpoint covering the preemption point was written
        /// (false when checkpointing is disabled or the write failed).
        checkpointed: bool,
        /// Why the run was preempted (`"deadline"` or `"shutdown"`).
        reason: String,
    },
}

impl NofisError {
    /// Whether retrying the same run, unchanged, could plausibly succeed.
    ///
    /// Transient failures are environmental: an oracle NaN burst that blew
    /// past the rollback retries ([`NofisError::TrainingDiverged`] — a
    /// worker panic degrades to the same divergence path), or a checkpoint
    /// that cannot be used right now ([`NofisError::Checkpoint`], e.g. a
    /// half-written directory another writer is still repairing). Permanent
    /// failures are deterministic properties of the inputs — bad
    /// configuration, an exhausted call budget (retrying spends *more*
    /// budget), a structurally degenerate proposal — and
    /// [`NofisError::Preempted`], which asks for a *resume*, not a retry.
    /// The `nofis-jobs` retry policy keys on this.
    pub fn is_transient(&self) -> bool {
        match self {
            NofisError::TrainingDiverged { .. } | NofisError::Checkpoint { .. } => true,
            NofisError::InvalidInput { .. }
            | NofisError::BudgetExhausted { .. }
            | NofisError::DegenerateProposal { .. }
            | NofisError::Preempted { .. } => false,
        }
    }
}

impl fmt::Display for NofisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NofisError::InvalidInput { message } => {
                write!(f, "invalid input: {message}")
            }
            NofisError::TrainingDiverged {
                stage,
                epoch,
                retries,
                message,
            } => write!(
                f,
                "training diverged at stage {stage}, epoch {epoch} after {retries} \
                 rollback retries: {message}"
            ),
            NofisError::BudgetExhausted {
                used,
                budget,
                context,
            } => write!(
                f,
                "simulator-call budget exhausted ({used}/{budget} calls) during {context}"
            ),
            NofisError::DegenerateProposal { context } => {
                write!(f, "degenerate proposal: {context}")
            }
            NofisError::Checkpoint { message } => {
                write!(f, "unusable checkpoint: {message}")
            }
            NofisError::Preempted {
                stage,
                global_step,
                checkpointed,
                reason,
            } => write!(
                f,
                "preempted ({reason}) at stage {stage}, step {global_step}{}",
                if *checkpointed {
                    "; checkpointed, resumable"
                } else {
                    "; no checkpoint"
                }
            ),
        }
    }
}

impl std::error::Error for NofisError {}

impl From<ConfigError> for NofisError {
    fn from(err: ConfigError) -> Self {
        NofisError::InvalidInput {
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Levels, NofisConfig};

    #[test]
    fn displays_carry_context() {
        let e = NofisError::TrainingDiverged {
            stage: 2,
            epoch: 5,
            retries: 3,
            message: "loss = inf".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("stage 2") && s.contains("epoch 5") && s.contains("3"));

        let e = NofisError::BudgetExhausted {
            used: 100,
            budget: 100,
            context: "training stage 1".into(),
        };
        assert!(format!("{e}").contains("100/100"));

        let e = NofisError::Preempted {
            stage: 3,
            global_step: 412,
            checkpointed: true,
            reason: "deadline".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("deadline") && s.contains("stage 3") && s.contains("412"));
        assert!(s.contains("resumable"));
    }

    #[test]
    fn transience_classification_is_exhaustive() {
        // One instance per variant; the `match` in `is_transient` has no
        // wildcard arm, so adding a variant without classifying it is a
        // compile error — this test just locks the chosen polarity.
        let transient = [
            NofisError::TrainingDiverged {
                stage: 1,
                epoch: 0,
                retries: 2,
                message: "loss = NaN".into(),
            },
            NofisError::Checkpoint {
                message: "fingerprint mismatch".into(),
            },
        ];
        let permanent = [
            NofisError::InvalidInput {
                message: "dim < 2".into(),
            },
            NofisError::BudgetExhausted {
                used: 10,
                budget: 10,
                context: "stage 1".into(),
            },
            NofisError::DegenerateProposal {
                context: "all pilot weights NaN".into(),
            },
            NofisError::Preempted {
                stage: 1,
                global_step: 7,
                checkpointed: false,
                reason: "shutdown".into(),
            },
        ];
        for e in &transient {
            assert!(e.is_transient(), "{e} should be transient");
        }
        for e in &permanent {
            assert!(!e.is_transient(), "{e} should be permanent");
        }
    }

    #[test]
    fn config_errors_convert_to_invalid_input() {
        let cfg = NofisConfig {
            levels: Levels::Fixed(vec![]),
            ..Default::default()
        };
        let err: NofisError = cfg.validate().unwrap_err().into();
        assert!(matches!(err, NofisError::InvalidInput { .. }));
        assert!(format!("{err}").contains("levels"));
    }
}
