//! Durable training checkpoints: versioned, CRC-guarded on-disk snapshots
//! of the full NOFIS training state, with atomic writes, generation
//! rotation, and a corruption-tolerant loader.
//!
//! # File format (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic "NOFISCKP"
//! 8       4     format version (u32, currently 1)
//! 12      8     payload length in bytes (u64)
//! 20      n     payload (the encoded [`Checkpoint`])
//! 20+n    4     CRC-32 (IEEE) of the payload bytes
//! ```
//!
//! The payload is a flat hand-rolled binary encoding (the vendored serde is
//! serialize-only, so — like `telemetry::trace::parse_trace` — the reader
//! lives next to the writer in one module and the pair is round-trip
//! tested). Floats are stored as raw `f64` bits, so NaN payloads and signed
//! zeros survive exactly and a restored run is bitwise identical.
//!
//! # Atomicity and rotation
//!
//! [`write_atomic`] writes to `ckpt-<gen>.tmp`, fsyncs, renames to
//! `ckpt-<gen>.nofis`, and fsyncs the directory: a crash leaves either the
//! previous generation intact or a `*.tmp` that the next startup deletes
//! ([`clean_stale_tmps`]). [`load_latest`] walks generations newest-first
//! and skips anything whose magic/version/length/CRC does not check out
//! (emitting a `ckpt.corrupt_skipped` telemetry event), so a torn or
//! truncated newest file costs at most one checkpoint interval of
//! progress, never a panic. [`rotate`] keeps the newest `keep` generations.

use crate::{NofisConfig, StageReport};
use nofis_autograd::Tensor;
use nofis_nn::AdamState;
use nofis_telemetry as tele;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File magic: identifies a NOFIS checkpoint regardless of extension.
pub const MAGIC: [u8; 8] = *b"NOFISCKP";

/// Current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

/// File-name extension of finished checkpoints.
const EXT: &str = "nofis";

/// Default write interval (optimizer steps) when only a directory is
/// configured (e.g. `NOFIS_CKPT_DIR` without `NOFIS_CKPT_EVERY`).
pub const DEFAULT_EVERY_STEPS: u64 = 25;

/// Default number of checkpoint generations kept on disk.
pub const DEFAULT_KEEP: usize = 3;

/// Where and how often to write durable checkpoints
/// ([`NofisConfig::checkpoint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory holding `ckpt-<generation>.nofis` files (created on first
    /// write).
    pub dir: PathBuf,
    /// Write a mid-stage checkpoint every this many optimizer steps (stage
    /// boundaries always checkpoint). Must be positive.
    pub every_steps: u64,
    /// Keep this many newest generations; older ones are deleted after each
    /// successful write. Must be positive.
    pub keep: usize,
    /// Isolates this run's checkpoints in a `job-<namespace>` subdirectory
    /// of `dir`, so many jobs can share one parent directory (e.g. a single
    /// `NOFIS_CKPT_DIR`) without clobbering each other's generations,
    /// rotation, or resume state. `None` writes directly into `dir` (the
    /// single-run layout). Restricted to `[A-Za-z0-9._-]` and must be
    /// non-empty when set. Excluded from the config fingerprint, like the
    /// rest of the checkpoint config.
    pub namespace: Option<String>,
}

impl CheckpointConfig {
    /// Checkpointing into `dir` with the default interval and rotation.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every_steps: DEFAULT_EVERY_STEPS,
            keep: DEFAULT_KEEP,
            namespace: None,
        }
    }

    /// Same config, namespaced under `job-<namespace>` (see
    /// [`CheckpointConfig::namespace`]).
    pub fn with_namespace(mut self, namespace: impl Into<String>) -> Self {
        self.namespace = Some(namespace.into());
        self
    }

    /// The directory checkpoints actually land in: `dir` itself, or the
    /// `job-<namespace>` subdirectory when a namespace is set.
    pub fn effective_dir(&self) -> PathBuf {
        match &self.namespace {
            Some(ns) => self.dir.join(format!("job-{ns}")),
            None => self.dir.clone(),
        }
    }
}

/// A checkpoint that could not be decoded (bad magic/version/length/CRC or
/// a malformed payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid checkpoint: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

fn decode_err(message: impl Into<String>) -> DecodeError {
    DecodeError {
        message: message.into(),
    }
}

/// Mid-stage training cursor: everything beyond the parameters that the
/// retry loop and epoch accumulators carry while a stage is in flight.
///
/// `stage` is the 0-based stage in progress; its level is already the last
/// entry of [`Checkpoint::levels`]. Restoring this puts the resumed loop at
/// exactly the optimizer step after the one that wrote the checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct StagePartial {
    /// 0-based stage in progress.
    pub stage: u64,
    /// 0-based epoch in progress.
    pub epoch: u64,
    /// Base samples consumed so far within the epoch.
    pub consumed: u64,
    /// The epoch's running loss accumulator (sum of `chunk_loss · n`).
    pub epoch_loss: f64,
    /// Completed epoch losses of the current retry pass.
    pub stage_losses: Vec<f64>,
    /// Best epoch loss seen this stage (rollback target metric).
    pub best_loss: f64,
    /// Rollback retries consumed so far.
    pub retries: u64,
    /// Current (possibly halved) learning rate.
    pub learning_rate: f64,
    /// Optimizer steps taken this stage (telemetry continuity).
    pub stage_steps: u64,
    /// Parameters of the best-loss rollback checkpoint.
    pub best_params: Vec<Tensor>,
    /// Parameters at the start of the epoch in progress (candidate rollback
    /// state if this epoch turns out best).
    pub epoch_start_params: Vec<Tensor>,
    /// Optimizer moments and step counters.
    pub adam: AdamState,
}

/// A complete durable training snapshot — everything `Nofis` needs to
/// resume bitwise-identically: parameters (frozen and live), the threshold
/// schedule realized so far, loss/report history, the RNG stream state, the
/// oracle's spent-call count, and (mid-stage) the [`StagePartial`] cursor.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the generating configuration (see
    /// [`config_fingerprint`]); resume refuses a mismatch.
    pub config_fingerprint: u64,
    /// Problem dimension the flow was built for.
    pub dim: u64,
    /// Optimizer steps taken across all stages (checkpoint scheduling
    /// cursor).
    pub global_step: u64,
    /// The RNG stream state at the snapshot point.
    pub rng_state: [u64; 4],
    /// Simulator calls spent so far ([`BudgetedOracle::spent`]
    /// (nofis_prob::BudgetedOracle::spent)).
    pub oracle_spent: u64,
    /// Whether training had fully completed when this was written (resume
    /// then skips straight to estimation).
    pub done: bool,
    /// Realized threshold levels so far (includes the in-progress stage's).
    pub levels: Vec<f64>,
    /// Per-completed-stage epoch losses.
    pub loss_history: Vec<Vec<f64>>,
    /// Per-completed-stage health reports.
    pub stage_reports: Vec<StageReport>,
    /// Live parameter tensors, in [`ParamStore`](nofis_autograd::ParamStore)
    /// id order.
    pub params: Vec<Tensor>,
    /// Per-parameter frozen flags.
    pub frozen: Vec<bool>,
    /// Mid-stage cursor; `None` at a stage boundary.
    pub partial: Option<StagePartial>,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — table built once at startup.

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE) of `bytes`, as used in the checkpoint trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------------
// Payload codec. Little-endian, length-prefixed, no self-description: the
// format version in the header governs the layout.

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn f64s(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }
    fn tensor(&mut self, t: &Tensor) {
        self.u64(t.rows() as u64);
        self.u64(t.cols() as u64);
        for &x in t.as_slice() {
            self.f64(x);
        }
    }
    fn tensors(&mut self, ts: &[Tensor]) {
        self.u64(ts.len() as u64);
        for t in ts {
            self.tensor(t);
        }
    }
}

/// Bounds-checked cursor over untrusted payload bytes. Every read returns
/// `Result`; element counts are validated against the bytes actually
/// remaining *before* any allocation, so adversarial length prefixes can
/// neither panic nor balloon memory.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| decode_err("payload truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(decode_err(format!("invalid bool byte {v}"))),
        }
    }

    /// Reads a `u64` element count and checks that `count * elem_bytes`
    /// bytes actually remain.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        let remaining = self.buf.len() - self.pos;
        let fits = usize::try_from(n)
            .ok()
            .and_then(|n| n.checked_mul(elem_bytes))
            .is_some_and(|need| need <= remaining);
        if !fits {
            return Err(decode_err(format!("implausible element count {n}")));
        }
        Ok(n as usize)
    }

    fn f64s(&mut self) -> Result<Vec<f64>, DecodeError> {
        let n = self.count(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn tensor(&mut self) -> Result<Tensor, DecodeError> {
        let rows = self.u64()? as usize;
        let cols = self.u64()? as usize;
        let n = rows
            .checked_mul(cols)
            .filter(|&n| {
                n.checked_mul(8)
                    .is_some_and(|need| need <= self.buf.len() - self.pos)
            })
            .ok_or_else(|| decode_err(format!("implausible tensor shape {rows}x{cols}")))?;
        let data: Vec<f64> = (0..n).map(|_| self.f64()).collect::<Result<_, _>>()?;
        Ok(Tensor::from_vec(rows, cols, data))
    }

    fn tensors(&mut self) -> Result<Vec<Tensor>, DecodeError> {
        // A tensor is at least 16 header bytes.
        let n = self.count(16)?;
        (0..n).map(|_| self.tensor()).collect()
    }

    fn done(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(decode_err("trailing payload bytes"))
        }
    }
}

fn encode_report(e: &mut Enc, r: &StageReport) {
    e.u64(r.stage as u64);
    e.f64(r.level);
    e.u64(r.epochs_run as u64);
    e.u64(r.retries as u64);
    e.bool(r.rolled_back);
    e.f64(r.best_loss);
    e.f64(r.final_loss);
    e.f64(r.learning_rate);
    e.bool(r.truncated);
}

fn decode_report(d: &mut Dec<'_>) -> Result<StageReport, DecodeError> {
    Ok(StageReport {
        stage: d.u64()? as usize,
        level: d.f64()?,
        epochs_run: d.u64()? as usize,
        retries: d.u64()? as usize,
        rolled_back: d.bool()?,
        best_loss: d.f64()?,
        final_loss: d.f64()?,
        learning_rate: d.f64()?,
        truncated: d.bool()?,
    })
}

fn encode_adam(e: &mut Enc, a: &AdamState) {
    e.u64(a.moments.len() as u64);
    for m in &a.moments {
        match m {
            None => e.bool(false),
            Some((m1, m2)) => {
                e.bool(true);
                e.tensor(m1);
                e.tensor(m2);
            }
        }
    }
    e.u64(a.steps.len() as u64);
    for &s in &a.steps {
        e.u64(s);
    }
}

fn decode_adam(d: &mut Dec<'_>) -> Result<AdamState, DecodeError> {
    let n = d.count(1)?;
    let mut moments = Vec::with_capacity(n);
    for _ in 0..n {
        moments.push(if d.bool()? {
            Some((d.tensor()?, d.tensor()?))
        } else {
            None
        });
    }
    let n = d.count(8)?;
    let steps = (0..n).map(|_| d.u64()).collect::<Result<_, _>>()?;
    Ok(AdamState { moments, steps })
}

fn encode_partial(e: &mut Enc, p: &StagePartial) {
    e.u64(p.stage);
    e.u64(p.epoch);
    e.u64(p.consumed);
    e.f64(p.epoch_loss);
    e.f64s(&p.stage_losses);
    e.f64(p.best_loss);
    e.u64(p.retries);
    e.f64(p.learning_rate);
    e.u64(p.stage_steps);
    e.tensors(&p.best_params);
    e.tensors(&p.epoch_start_params);
    encode_adam(e, &p.adam);
}

fn decode_partial(d: &mut Dec<'_>) -> Result<StagePartial, DecodeError> {
    Ok(StagePartial {
        stage: d.u64()?,
        epoch: d.u64()?,
        consumed: d.u64()?,
        epoch_loss: d.f64()?,
        stage_losses: d.f64s()?,
        best_loss: d.f64()?,
        retries: d.u64()?,
        learning_rate: d.f64()?,
        stage_steps: d.u64()?,
        best_params: d.tensors()?,
        epoch_start_params: d.tensors()?,
        adam: decode_adam(d)?,
    })
}

/// Encodes a checkpoint into a complete file image (header + payload +
/// CRC), ready for an atomic write.
pub fn encode(c: &Checkpoint) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(c.config_fingerprint);
    e.u64(c.dim);
    e.u64(c.global_step);
    for w in c.rng_state {
        e.u64(w);
    }
    e.u64(c.oracle_spent);
    e.bool(c.done);
    e.f64s(&c.levels);
    e.u64(c.loss_history.len() as u64);
    for losses in &c.loss_history {
        e.f64s(losses);
    }
    e.u64(c.stage_reports.len() as u64);
    for r in &c.stage_reports {
        encode_report(&mut e, r);
    }
    e.tensors(&c.params);
    e.u64(c.frozen.len() as u64);
    for &f in &c.frozen {
        e.bool(f);
    }
    match &c.partial {
        None => e.bool(false),
        Some(p) => {
            e.bool(true);
            encode_partial(&mut e, p);
        }
    }
    let payload = e.buf;

    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

/// Decodes a complete file image produced by [`encode`], verifying magic,
/// version, length, and CRC. Never panics on malformed input.
///
/// # Errors
///
/// Returns [`DecodeError`] describing the first violation found.
pub fn decode(bytes: &[u8]) -> Result<Checkpoint, DecodeError> {
    if bytes.len() < 24 {
        return Err(decode_err("file shorter than the fixed header"));
    }
    if bytes[..8] != MAGIC {
        return Err(decode_err("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(decode_err(format!(
            "unsupported format version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let expected_total = payload_len
        .checked_add(24)
        .ok_or_else(|| decode_err("implausible payload length"))?;
    if bytes.len() != expected_total {
        return Err(decode_err(format!(
            "file length {} does not match header ({expected_total})",
            bytes.len()
        )));
    }
    let payload = &bytes[20..20 + payload_len];
    let stored_crc = u32::from_le_bytes(bytes[20 + payload_len..].try_into().expect("4 bytes"));
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(decode_err(format!(
            "CRC mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        )));
    }

    let mut d = Dec::new(payload);
    let config_fingerprint = d.u64()?;
    let dim = d.u64()?;
    let global_step = d.u64()?;
    let rng_state = [d.u64()?, d.u64()?, d.u64()?, d.u64()?];
    let oracle_spent = d.u64()?;
    let done = d.bool()?;
    let levels = d.f64s()?;
    let n = d.count(8)?;
    let loss_history = (0..n).map(|_| d.f64s()).collect::<Result<Vec<_>, _>>()?;
    let n = d.count(1)?;
    let stage_reports = (0..n)
        .map(|_| decode_report(&mut d))
        .collect::<Result<Vec<_>, _>>()?;
    let params = d.tensors()?;
    let n = d.count(1)?;
    let frozen = (0..n).map(|_| d.bool()).collect::<Result<Vec<_>, _>>()?;
    let partial = if d.bool()? {
        Some(decode_partial(&mut d)?)
    } else {
        None
    };
    d.done()?;
    Ok(Checkpoint {
        config_fingerprint,
        dim,
        global_step,
        rng_state,
        oracle_spent,
        done,
        levels,
        loss_history,
        stage_reports,
        params,
        frozen,
        partial,
    })
}

/// FNV-1a fingerprint of the configuration fields that determine the shape
/// and trajectory of a training run. Two configs with equal fingerprints
/// produce interchangeable checkpoints; resume refuses a mismatch rather
/// than restoring parameters into a differently-shaped flow or silently
/// changing the schedule mid-run. Observability knobs (telemetry, threads,
/// the checkpoint settings themselves) are deliberately excluded — they
/// never affect results (see the determinism contract, DESIGN.md §8).
pub fn config_fingerprint(cfg: &NofisConfig, dim: usize) -> u64 {
    let mut e = Enc::default();
    match &cfg.levels {
        crate::Levels::Fixed(v) => {
            e.u8(0);
            e.f64s(v);
        }
        crate::Levels::AdaptiveQuantile {
            max_stages,
            p0,
            pilot,
        } => {
            e.u8(1);
            e.u64(*max_stages as u64);
            e.f64(*p0);
            e.u64(*pilot as u64);
        }
    }
    e.u64(dim as u64);
    e.u64(cfg.layers_per_stage as u64);
    e.u64(cfg.hidden as u64);
    e.f64(cfg.s_max);
    e.u64(cfg.epochs as u64);
    e.u64(cfg.batch_size as u64);
    e.u64(cfg.n_is as u64);
    e.f64(cfg.tau);
    e.f64(cfg.learning_rate);
    e.u64(cfg.minibatch as u64);
    e.bool(cfg.freeze);
    e.bool(cfg.prune_frozen);
    e.u64(cfg.max_calls.unwrap_or(u64::MAX));
    e.f64(cfg.max_grad_norm.unwrap_or(f64::NAN));
    e.u64(cfg.stage_retries as u64);

    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in &e.buf {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// File operations.

fn gen_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("ckpt-{generation:010}.{EXT}"))
}

/// Parses `ckpt-<generation>.nofis` file names.
fn parse_gen(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("ckpt-")?;
    let digits = rest.strip_suffix(&format!(".{EXT}"))?;
    digits.parse().ok()
}

/// Lists `(generation, path)` pairs in `dir`, ascending by generation. A
/// missing directory is an empty list, not an error.
pub fn list_generations(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut gens = Vec::new();
    for entry in entries {
        let entry = entry?;
        if let Some(generation) = entry.file_name().to_str().and_then(parse_gen) {
            gens.push((generation, entry.path()));
        }
    }
    gens.sort_unstable_by_key(|(g, _)| *g);
    Ok(gens)
}

/// Deletes stale `ckpt-<generation>.tmp` files left behind by a crash
/// mid-write. Called on checkpointer startup; failures to remove are
/// ignored (the stale file is merely disk noise — it can never be loaded).
///
/// Only files matching this crate's own tmp naming are touched: a `.tmp`
/// with any other name (another tool's scratch file in a shared parent
/// directory) is left alone. Cross-*job* safety comes from namespacing
/// ([`CheckpointConfig::namespace`]), which gives each job its own
/// directory — cleanup never needs to reach outside it.
pub fn clean_stale_tmps(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let is_own_tmp = name.to_str().is_some_and(|n| {
            n.strip_prefix("ckpt-")
                .and_then(|rest| rest.strip_suffix(".tmp"))
                .is_some_and(|digits| {
                    !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit())
                })
        });
        if is_own_tmp {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// The fault-injection seam at [`Site::CkptWrite`](nofis_faults::Site):
/// when scheduled, the write fails with an injected I/O error before
/// touching the disk.
fn write_fault() -> std::io::Result<()> {
    if nofis_faults::active() {
        if let Some(kind @ nofis_faults::FaultKind::CkptWriteFail) =
            nofis_faults::check(nofis_faults::Site::CkptWrite)
        {
            tele::event(tele::Level::Warn, "fault.injected")
                .field("site", nofis_faults::Site::CkptWrite.as_str())
                .field("kind", kind.as_str())
                .emit();
            return Err(std::io::Error::other(
                "injected fault: checkpoint write failure (nofis-faults)",
            ));
        }
    }
    Ok(())
}

/// Atomically writes `ckpt` as generation `generation` under `dir`
/// (creating it): encode → write `ckpt-<gen>.tmp` → fsync → rename →
/// fsync the directory. Returns the final path.
///
/// # Errors
///
/// Any I/O failure (including an injected one); the target file is never
/// left half-written — at worst a `*.tmp` remains for
/// [`clean_stale_tmps`].
pub fn write_atomic(dir: &Path, generation: u64, ckpt: &Checkpoint) -> std::io::Result<PathBuf> {
    write_fault()?;
    std::fs::create_dir_all(dir)?;
    let bytes = encode(ckpt);
    let tmp = dir.join(format!("ckpt-{generation:010}.tmp"));
    let final_path = gen_path(dir, generation);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &final_path)?;
    // Persist the rename itself; without this a crash can forget the file
    // even though its contents are safe.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Deletes all but the newest `keep` generations. Removal failures are
/// ignored (rotation is best-effort hygiene, never correctness).
pub fn rotate(dir: &Path, keep: usize) -> std::io::Result<()> {
    let gens = list_generations(dir)?;
    if gens.len() > keep {
        for (_, path) in &gens[..gens.len() - keep] {
            let _ = std::fs::remove_file(path);
        }
    }
    Ok(())
}

/// Loads the newest valid checkpoint in `dir`, walking generations
/// newest-first and skipping torn/truncated/corrupt files (each skip emits
/// a `ckpt.corrupt_skipped` telemetry event). `Ok(None)` when the
/// directory is missing, empty, or contains no valid checkpoint.
///
/// # Errors
///
/// Only directory-listing I/O errors; unreadable or invalid *files* are
/// skipped, not fatal.
pub fn load_latest(dir: &Path) -> std::io::Result<Option<(u64, Checkpoint)>> {
    let gens = list_generations(dir)?;
    for (generation, path) in gens.into_iter().rev() {
        let outcome = std::fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| decode(&bytes).map_err(|e| e.to_string()));
        match outcome {
            Ok(ckpt) => return Ok(Some((generation, ckpt))),
            Err(reason) => {
                tele::event(tele::Level::Warn, "ckpt.corrupt_skipped")
                    .field("path", path.display().to_string().as_str())
                    .field("generation", generation)
                    .field("reason", reason.as_str())
                    .emit();
            }
        }
    }
    Ok(None)
}

/// The training loop's checkpoint writer: owns the generation counter,
/// write-interval policy, rotation, and write-failure telemetry. A write
/// failure warns and training continues — durability degrades, the run
/// does not.
#[derive(Debug)]
pub(crate) struct Checkpointer {
    cfg: CheckpointConfig,
    dir: PathBuf,
    next_gen: u64,
}

impl Checkpointer {
    /// Prepares to write into the config's effective directory (namespace
    /// applied): cleans stale tmps and continues the generation sequence
    /// after any existing checkpoints.
    pub(crate) fn new(cfg: CheckpointConfig) -> Self {
        let dir = cfg.effective_dir();
        clean_stale_tmps(&dir);
        let next_gen = match list_generations(&dir) {
            Ok(gens) => gens.last().map_or(1, |(g, _)| g + 1),
            Err(_) => 1,
        };
        Checkpointer { cfg, dir, next_gen }
    }

    /// Whether an optimizer step at `global_step` (1-based, post-step)
    /// should write a mid-stage checkpoint.
    pub(crate) fn due(&self, global_step: u64) -> bool {
        global_step.is_multiple_of(self.cfg.every_steps)
    }

    /// Writes `ckpt` as the next generation and rotates. Failures warn
    /// (`ckpt.write_failed`) and are swallowed; the returned flag reports
    /// whether the write landed (preemption uses it to tell the caller
    /// whether a resume point exists).
    pub(crate) fn write(&mut self, ckpt: &Checkpoint) -> bool {
        let generation = self.next_gen;
        match write_atomic(&self.dir, generation, ckpt) {
            Ok(path) => {
                self.next_gen += 1;
                tele::event(tele::Level::Info, "ckpt.write")
                    .field("generation", generation)
                    .field("global_step", ckpt.global_step)
                    .field("done", ckpt.done)
                    .field("mid_stage", ckpt.partial.is_some())
                    .field("path", path.display().to_string().as_str())
                    .emit();
                let _ = rotate(&self.dir, self.cfg.keep.max(1));
                true
            }
            Err(e) => {
                tele::event(tele::Level::Warn, "ckpt.write_failed")
                    .field("generation", generation)
                    .field("global_step", ckpt.global_step)
                    .field("error", e.to_string().as_str())
                    .emit();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_checkpoint() -> Checkpoint {
        Checkpoint {
            config_fingerprint: 0xdead_beef,
            dim: 2,
            global_step: 7,
            rng_state: [1, 2, 3, u64::MAX],
            oracle_spent: 123,
            done: false,
            levels: vec![1.5, 0.0],
            loss_history: vec![vec![3.0, 2.5], vec![]],
            stage_reports: vec![StageReport {
                stage: 1,
                level: 1.5,
                epochs_run: 2,
                retries: 1,
                rolled_back: true,
                best_loss: 2.5,
                final_loss: 2.5,
                learning_rate: 4e-3,
                truncated: false,
            }],
            params: vec![
                Tensor::from_vec(2, 3, vec![1.0, -2.0, 0.5, f64::NAN, f64::INFINITY, -0.0]),
                Tensor::from_vec(1, 1, vec![42.0]),
            ],
            frozen: vec![true, false],
            partial: Some(StagePartial {
                stage: 1,
                epoch: 0,
                consumed: 10,
                epoch_loss: -3.25,
                stage_losses: vec![2.0],
                best_loss: 2.0,
                retries: 0,
                learning_rate: 8e-3,
                stage_steps: 3,
                best_params: vec![Tensor::from_vec(1, 2, vec![0.0, 1.0])],
                epoch_start_params: vec![Tensor::from_vec(1, 2, vec![0.5, 1.5])],
                adam: nofis_nn::AdamState {
                    moments: vec![
                        None,
                        Some((
                            Tensor::from_vec(1, 2, vec![0.1, 0.2]),
                            Tensor::from_vec(1, 2, vec![0.3, 0.4]),
                        )),
                    ],
                    steps: vec![0, 5],
                },
            }),
        }
    }

    /// Bitwise equality, including NaN payloads (PartialEq alone would call
    /// NaN != NaN).
    fn bits_equal(a: &Checkpoint, b: &Checkpoint) -> bool {
        encode(a) == encode(b)
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let c = tiny_checkpoint();
        let bytes = encode(&c);
        let back = decode(&bytes).unwrap();
        assert!(bits_equal(&c, &back));
        // NaN and ±0.0 payload bits survive exactly.
        let p = &back.params[0];
        assert!(p.as_slice()[3].is_nan());
        assert_eq!(p.as_slice()[5].to_bits(), (-0.0f64).to_bits());

        // A boundary checkpoint (no partial) round-trips too.
        let mut c2 = c.clone();
        c2.partial = None;
        c2.done = true;
        let back2 = decode(&encode(&c2)).unwrap();
        assert!(bits_equal(&c2, &back2));
        assert_eq!(back2.partial, None);
        assert!(back2.done);
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode(&tiny_checkpoint());
        for len in 0..bytes.len() {
            assert!(
                decode(&bytes[..len]).is_err(),
                "truncation at {len}/{} must not decode",
                bytes.len()
            );
        }
        assert!(decode(&bytes).is_ok());
    }

    #[test]
    fn corruption_is_detected_by_crc() {
        let bytes = encode(&tiny_checkpoint());
        // Flip one bit in every region: magic, version, length, payload, CRC.
        for &pos in &[0, 9, 13, 25, bytes.len() / 2, bytes.len() - 2] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at {pos} must not decode");
        }
        // Appending bytes breaks the length check.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode(&long).is_err());
    }

    #[test]
    fn atomic_write_and_rotation() {
        let dir = std::env::temp_dir().join(format!("nofis-ckpt-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = tiny_checkpoint();
        for generation in 1..=5 {
            write_atomic(&dir, generation, &c).unwrap();
        }
        rotate(&dir, 2).unwrap();
        let gens = list_generations(&dir).unwrap();
        assert_eq!(gens.iter().map(|(g, _)| *g).collect::<Vec<_>>(), vec![4, 5]);
        let (latest, back) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(latest, 5);
        assert!(bits_equal(&c, &back));

        // Stale tmp files are cleaned, finished checkpoints untouched.
        std::fs::write(dir.join("ckpt-0000000009.tmp"), b"junk").unwrap();
        clean_stale_tmps(&dir);
        assert!(!dir.join("ckpt-0000000009.tmp").exists());
        assert_eq!(list_generations(&dir).unwrap().len(), 2);

        // A corrupted newest generation falls back to the previous one.
        let newest = gen_path(&dir, 5);
        let mut bytes = std::fs::read(&newest).unwrap();
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&newest, &bytes).unwrap();
        let (generation, back) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(generation, 4);
        assert!(bits_equal(&c, &back));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_empty_not_an_error() {
        let dir = std::env::temp_dir().join("nofis-ckpt-definitely-missing");
        assert_eq!(list_generations(&dir).unwrap(), Vec::new());
        assert_eq!(load_latest(&dir).unwrap(), None);
    }

    #[test]
    fn fingerprint_tracks_run_shaping_fields_only() {
        let base = NofisConfig::default();
        let fp = config_fingerprint(&base, 6);
        assert_eq!(fp, config_fingerprint(&base, 6), "deterministic");
        assert_ne!(fp, config_fingerprint(&base, 7), "dim matters");
        let mut widened = base.clone();
        widened.hidden += 1;
        assert_ne!(fp, config_fingerprint(&widened, 6));
        let mut observed = base.clone();
        observed.threads = Some(3);
        observed.checkpoint = Some(CheckpointConfig::new("/tmp/x"));
        observed.compile_tape = !base.compile_tape;
        assert_eq!(
            fp,
            config_fingerprint(&observed, 6),
            "observability and execution-engine knobs are excluded"
        );
    }
}
