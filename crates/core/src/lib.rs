//! NOFIS: normalizing-flow assisted importance sampling for rare circuit
//! failure analysis.
//!
//! This crate implements the primary contribution of *"NOFIS: Normalizing
//! Flow for Rare Circuit Failure Analysis"* (Gao, Zhang, Daniel, Boning —
//! DAC 2024): Algorithm 1, which
//!
//! 1. defines nested subset events `Ω_{a_1} ⊇ … ⊇ Ω_{a_M} = Ω` via a
//!    strictly decreasing threshold schedule ([`Levels`]),
//! 2. trains one block of `K` RealNVP coupling layers per stage by
//!    minimizing the KL divergence to the tempered target
//!    `p_m^τ(x) ∝ exp(min(τ(a_m − g(x)), 0)) p(x)` while freezing earlier
//!    blocks ([`Nofis::train`]), and
//! 3. estimates `P[Ω]` by importance sampling with the learned final
//!    proposal `q_{MK}` ([`TrainedNofis::estimate`]).
//!
//! All ablation knobs from the paper's §3.2 are exposed on
//! [`NofisConfig`]: `NoFreeze` (`freeze = false`), `LongThre` (a longer
//! [`Levels::Fixed`] schedule), `SmallTemp` (`tau = 1.0`), and the
//! temperature sweep.
//!
//! # Fault tolerance
//!
//! The pipeline is built for unattended production runs: every entry point
//! returns a typed [`NofisError`] instead of panicking, each training stage
//! checkpoints at its best loss and rolls back with a halved learning rate
//! on divergence (recorded per stage in [`StageReport`]), estimation
//! descends a guarded fallback ladder when the learned proposal is
//! degenerate (recorded in
//! [`IsResult::rung`](nofis_prob::IsResult)), and
//! [`NofisConfig::max_calls`] enforces a hard simulator-call budget that
//! truncates gracefully rather than overruns. With
//! [`NofisConfig::checkpoint`] set, training additionally writes durable,
//! CRC-guarded snapshots ([`checkpoint`]) and
//! [`Nofis::run_or_resume`] continues a killed run bitwise-identically from
//! the newest valid one (DESIGN.md §11).
//!
//! See the crate-level example on [`Nofis`] for end-to-end usage.
//!
//! # Telemetry
//!
//! The pipeline is instrumented with structured telemetry (spans, counters,
//! gauges, events) from `nofis_telemetry`, re-exported here as
//! [`telemetry`]. Sinks are selected via [`NofisConfig::telemetry`] (or the
//! `NOFIS_LOG` / `NOFIS_TRACE_FILE` environment variables) and applied by
//! [`Nofis::new`]. Telemetry observes the run but never influences it —
//! results are bitwise identical with sinks on or off (DESIGN.md §10).

#![deny(missing_docs)]

pub mod checkpoint;
mod config;
mod error;
pub mod preempt;
mod proposal;
mod report;
mod train;

pub use checkpoint::CheckpointConfig;
pub use config::{ConfigError, Levels, NofisConfig};
pub use error::NofisError;
pub use proposal::FlowProposal;
pub use report::StageReport;
pub use train::{Nofis, TrainedNofis};

pub use nofis_telemetry as telemetry;
