use std::fmt;

/// Per-stage training health record.
///
/// One report is produced for each stage trained by
/// [`Nofis::train`](crate::Nofis::train), recording the realized threshold,
/// how many epochs actually ran, and whether the stage needed
/// checkpoint-rollback recovery (see
/// [`NofisConfig::stage_retries`](crate::NofisConfig::stage_retries)). The
/// full list is available from
/// [`TrainedNofis::stage_reports`](crate::TrainedNofis::stage_reports) and
/// is what the bench runner logs per case.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// 1-based stage index (`m` in the paper).
    pub stage: usize,
    /// The threshold `a_m` this stage trained against.
    pub level: f64,
    /// Epochs recorded in the pass that produced the final parameters
    /// (rolled-back passes are not counted).
    pub epochs_run: usize,
    /// Rollback retries consumed by this stage (0 for a healthy stage).
    pub retries: usize,
    /// Whether the stage rolled back to its best checkpoint at least once.
    pub rolled_back: bool,
    /// Best per-epoch loss observed in the final pass.
    pub best_loss: f64,
    /// Loss of the last completed epoch in the final pass.
    pub final_loss: f64,
    /// Effective learning rate of the final pass (halved on each retry).
    pub learning_rate: f64,
    /// Whether the simulator-call budget truncated this stage's schedule
    /// (possible only on the final, level-0 stage; earlier exhaustion is an
    /// error instead).
    pub truncated: bool,
}

impl fmt::Display for StageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage {} @ level {:.4}: {} epochs, loss {:.4} (best {:.4}), lr {:.2e}",
            self.stage,
            self.level,
            self.epochs_run,
            self.final_loss,
            self.best_loss,
            self.learning_rate
        )?;
        if self.rolled_back {
            write!(f, ", {} rollback(s)", self.retries)?;
        }
        if self.truncated {
            write!(f, ", truncated by budget")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_recovery_when_present() {
        let mut r = StageReport {
            stage: 1,
            level: 2.0,
            epochs_run: 10,
            retries: 0,
            rolled_back: false,
            best_loss: 1.5,
            final_loss: 1.6,
            learning_rate: 5e-3,
            truncated: false,
        };
        let s = format!("{r}");
        assert!(s.contains("stage 1") && !s.contains("rollback"));
        r.retries = 2;
        r.rolled_back = true;
        r.truncated = true;
        let s = format!("{r}");
        assert!(s.contains("2 rollback(s)") && s.contains("truncated"));
    }
}
