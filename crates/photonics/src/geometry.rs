//! Y-branch splitter geometry with parameterized sidewall deformation.

/// Smooth logistic step used for soft core boundaries.
fn smooth_step(t: f64) -> f64 {
    if t >= 0.0 {
        1.0 / (1.0 + (-t).exp())
    } else {
        let e = t.exp();
        e / (1.0 + e)
    }
}

fn smooth_step_deriv(t: f64) -> f64 {
    let s = smooth_step(t);
    s * (1.0 - s)
}

/// A symmetric Y-branch: one input waveguide splitting into two linearly
/// separating arms, with the waveguide *width* perturbed along `z` by a
/// truncated Fourier series — the paper's "random boundary deformation".
///
/// All lengths are in micrometers.
///
/// # Example
///
/// ```
/// use nofis_photonics::YBranch;
///
/// let yb = YBranch::new(26);
/// // Nominal geometry: a guide core exists at the input center...
/// assert!(yb.index_squared(0.0, 0.0, &vec![0.0; 26]) > yb.n_clad() * yb.n_clad());
/// // ...and at the arm centers near the output.
/// let c = yb.arm_separation() ;
/// assert!(yb.index_squared(c, yb.length(), &vec![0.0; 26]) > 1.02 * yb.n_clad() * yb.n_clad());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct YBranch {
    n_core: f64,
    n_clad: f64,
    /// Nominal waveguide core half-width.
    half_width: f64,
    /// z at which the arms start separating.
    split_start: f64,
    /// Total device length.
    length: f64,
    /// Final center offset of each arm.
    arm_sep: f64,
    /// Boundary smoothing width.
    edge_softness: f64,
    /// Deformation amplitude per unit Fourier coefficient.
    deform_sigma: f64,
    /// Number of Fourier deformation modes (the variation dimension).
    n_modes: usize,
}

impl YBranch {
    /// Creates the nominal geometry with `n_modes` deformation parameters.
    ///
    /// # Panics
    ///
    /// Panics if `n_modes == 0`.
    pub fn new(n_modes: usize) -> Self {
        Self::with_deform_sigma(n_modes, 0.38)
    }

    /// Creates the geometry with an explicit deformation amplitude per
    /// unit Fourier coefficient (µm) — the calibration knob aligning the
    /// failure probability with the paper's golden value.
    ///
    /// # Panics
    ///
    /// Panics if `n_modes == 0` or `deform_sigma <= 0`.
    pub fn with_deform_sigma(n_modes: usize, deform_sigma: f64) -> Self {
        assert!(n_modes > 0, "need at least one deformation mode");
        assert!(deform_sigma > 0.0, "deformation amplitude must be positive");
        YBranch {
            n_core: 1.56,
            n_clad: 1.50,
            half_width: 1.0,
            split_start: 8.0,
            length: 40.0,
            arm_sep: 3.0,
            edge_softness: 0.15,
            deform_sigma,
            n_modes,
        }
    }

    /// Core refractive index.
    pub fn n_core(&self) -> f64 {
        self.n_core
    }

    /// Cladding refractive index.
    pub fn n_clad(&self) -> f64 {
        self.n_clad
    }

    /// Device length along `z`.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Final lateral offset of each arm center.
    pub fn arm_separation(&self) -> f64 {
        self.arm_sep
    }

    /// Nominal core half-width.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// Number of deformation modes.
    pub fn n_modes(&self) -> usize {
        self.n_modes
    }

    /// Arm center positions `±c(z)`.
    fn centers(&self, z: f64) -> (f64, f64) {
        if z <= self.split_start {
            (0.0, 0.0)
        } else {
            let t = (z - self.split_start) / (self.length - self.split_start);
            let c = self.arm_sep * t;
            (-c, c)
        }
    }

    /// Width perturbation `δw(z) = σ · Σ_j x_j sin(π j z / L)`.
    fn deformation(&self, z: f64, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n_modes);
        let mut acc = 0.0;
        for (j, &c) in x.iter().enumerate() {
            acc += c * (std::f64::consts::PI * (j + 1) as f64 * z / self.length).sin();
        }
        self.deform_sigma * acc
    }

    /// Smooth "in-core" indicator (union of the two arms) and its
    /// derivative with respect to the half-width.
    fn indicator(&self, xpos: f64, z: f64, half_w: f64) -> (f64, f64) {
        let (c1, c2) = self.centers(z);
        let mut inds = [0.0; 2];
        let mut dinds = [0.0; 2];
        for (k, &c) in [c1, c2].iter().enumerate() {
            let tl = (xpos - (c - half_w)) / self.edge_softness;
            let tr = ((c + half_w) - xpos) / self.edge_softness;
            let sl = smooth_step(tl);
            let sr = smooth_step(tr);
            inds[k] = sl * sr;
            // d/d(half_w): left edge moves out (+), right edge moves out (+).
            dinds[k] =
                (smooth_step_deriv(tl) * sr + sl * smooth_step_deriv(tr)) / self.edge_softness;
        }
        if self.centers(z).0 == self.centers(z).1 {
            // Arms coincide (input section): a single guide.
            (inds[0], dinds[0])
        } else {
            // Smooth union so the junction region stays bounded by 1.
            let u = inds[0] + inds[1] - inds[0] * inds[1];
            let du = dinds[0] * (1.0 - inds[1]) + dinds[1] * (1.0 - inds[0]);
            (u, du)
        }
    }

    /// Squared refractive index at `(x, z)` under deformation `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.n_modes()`.
    pub fn index_squared(&self, xpos: f64, z: f64, params: &[f64]) -> f64 {
        assert_eq!(params.len(), self.n_modes, "deformation dimension mismatch");
        let half_w = (self.half_width + self.deformation(z, params)).max(0.05);
        let (ind, _) = self.indicator(xpos, z, half_w);
        let (nc2, ncl2) = (self.n_core * self.n_core, self.n_clad * self.n_clad);
        ncl2 + (nc2 - ncl2) * ind
    }

    /// Squared index together with its derivative with respect to the
    /// *width perturbation* `δw` (the per-mode gradient is this value times
    /// `σ sin(π j z / L)`, which the BPM adjoint applies).
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.n_modes()`.
    pub fn index_squared_dw(&self, xpos: f64, z: f64, params: &[f64]) -> (f64, f64) {
        assert_eq!(params.len(), self.n_modes, "deformation dimension mismatch");
        let raw = self.half_width + self.deformation(z, params);
        let half_w = raw.max(0.05);
        let (ind, dind) = self.indicator(xpos, z, half_w);
        let (nc2, ncl2) = (self.n_core * self.n_core, self.n_clad * self.n_clad);
        let dw_active = if raw > 0.05 { 1.0 } else { 0.0 };
        (ncl2 + (nc2 - ncl2) * ind, (nc2 - ncl2) * dind * dw_active)
    }

    /// The per-mode deformation basis value `σ sin(π j z / L)` for mode
    /// index `j` (0-based).
    pub fn mode_basis(&self, j: usize, z: f64) -> f64 {
        self.deform_sigma * (std::f64::consts::PI * (j + 1) as f64 * z / self.length).sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_profile_shapes() {
        let yb = YBranch::new(4);
        let zero = vec![0.0; 4];
        let ncl2 = yb.n_clad() * yb.n_clad();
        let nc2 = yb.n_core() * yb.n_core();
        // Deep cladding.
        assert!((yb.index_squared(6.0, 0.0, &zero) - ncl2).abs() < 1e-6);
        // Input core center.
        assert!((yb.index_squared(0.0, 0.0, &zero) - nc2).abs() < 1e-3);
        // At the output, the center is cladding and arms are core.
        assert!(yb.index_squared(0.0, 40.0, &zero) < ncl2 + 0.5 * (nc2 - ncl2));
        assert!(yb.index_squared(3.0, 40.0, &zero) > ncl2 + 0.5 * (nc2 - ncl2));
    }

    #[test]
    fn positive_mode_coefficient_widens_guide() {
        let yb = YBranch::new(2);
        let widened = vec![1.0, 0.0];
        let zero = vec![0.0; 2];
        // At the guide edge near mid-device, widening raises the index.
        let z = 4.0; // sin(pi z / L) > 0
        let edge = yb.half_width();
        assert!(yb.index_squared(edge, z, &widened) > yb.index_squared(edge, z, &zero));
    }

    #[test]
    fn dw_derivative_matches_finite_difference() {
        let yb = YBranch::new(3);
        let params = vec![0.4, -0.2, 0.1];
        for &(x, z) in &[(0.9, 5.0), (1.2, 20.0), (-2.5, 35.0), (3.1, 39.0)] {
            let (_, dw) = yb.index_squared_dw(x, z, &params);
            // Perturb via the first mode and divide by the basis value.
            let basis = yb.mode_basis(0, z);
            if basis.abs() < 1e-9 {
                continue;
            }
            let eps = 1e-6;
            let mut pp = params.clone();
            pp[0] += eps;
            let fp = yb.index_squared(x, z, &pp);
            pp[0] -= 2.0 * eps;
            let fm = yb.index_squared(x, z, &pp);
            let fd = (fp - fm) / (2.0 * eps) / basis;
            assert!(
                (dw - fd).abs() < 1e-5 * fd.abs().max(1.0),
                "at ({x},{z}): analytic {dw} vs fd {fd}"
            );
        }
    }

    #[test]
    fn union_never_exceeds_core_index() {
        let yb = YBranch::new(1);
        let zero = vec![0.0];
        let nc2 = yb.n_core() * yb.n_core();
        // Junction region where the arms overlap.
        for x in [-1.0, -0.5, 0.0, 0.5, 1.0] {
            for z in [8.0, 9.0, 10.0, 12.0] {
                assert!(yb.index_squared(x, z, &zero) <= nc2 + 1e-12);
            }
        }
    }
}
