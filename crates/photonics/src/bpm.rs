//! Scalar Crank–Nicolson beam-propagation method (BPM) with adjoint
//! sensitivities.
//!
//! The paraxial scalar field `u(x, z)` obeys
//! `i ∂u/∂z = -(1/(2 k₀ n₀)) ∂²u/∂x² - (k₀/(2 n₀)) (n²(x,z) - n₀²) u`,
//! discretized with Crank–Nicolson in `z` (one complex tridiagonal solve
//! per step) and second-order central differences in `x`. An imaginary
//! absorber near the lateral boundaries swallows radiated power.
//!
//! The adjoint pass propagates a terminal seed backwards through the
//! conjugate-transposed step operators and accumulates `dT/dx_j` for all
//! deformation modes in one sweep — so a transmission *and its full
//! 26-dimensional gradient* cost two BPM runs, which is what makes the
//! differentiable NOFIS loss affordable on the Y-branch test case.

use crate::YBranch;
use nofis_linalg::{tridiag::solve_complex_tridiagonal, Complex64, LinalgError};

/// Discretization and launch settings for the BPM.
#[derive(Debug, Clone, PartialEq)]
pub struct BpmConfig {
    /// Lateral half-extent of the domain (µm).
    pub x_extent: f64,
    /// Number of lateral grid points.
    pub nx: usize,
    /// Number of propagation steps.
    pub nz: usize,
    /// Vacuum wavelength (µm).
    pub wavelength: f64,
    /// Width of the absorbing boundary region (µm).
    pub absorber_width: f64,
    /// Peak absorber strength (added to `n²` as `-iγ`).
    pub absorber_strength: f64,
    /// `1/e` half-width of the launched Gaussian mode (µm).
    pub launch_width: f64,
}

impl Default for BpmConfig {
    fn default() -> Self {
        BpmConfig {
            x_extent: 8.0,
            nx: 121,
            nz: 160,
            wavelength: 1.55,
            absorber_width: 2.0,
            absorber_strength: 0.06,
            launch_width: 0.9,
        }
    }
}

/// Result of a forward BPM run.
#[derive(Debug, Clone, PartialEq)]
pub struct BpmRun {
    /// Power transmission into the output window, normalized to the
    /// launched power.
    pub transmission: f64,
    /// Final field magnitude per lateral grid point (diagnostics).
    pub output_magnitude: Vec<f64>,
}

/// A BPM solver bound to a [`YBranch`] geometry.
///
/// # Example
///
/// ```
/// use nofis_photonics::{BpmConfig, BpmSolver, YBranch};
///
/// # fn main() -> Result<(), nofis_linalg::LinalgError> {
/// let solver = BpmSolver::new(YBranch::new(4), BpmConfig::default());
/// let run = solver.run(&[0.0; 4])?;
/// assert!(run.transmission > 0.5 && run.transmission <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BpmSolver {
    geometry: YBranch,
    config: BpmConfig,
    xs: Vec<f64>,
    dx: f64,
    dz: f64,
    /// Static absorber profile γ(x) ≥ 0.
    absorber: Vec<f64>,
    /// Output power window (1 inside the nominal arm cores at z = L).
    window: Vec<f64>,
    /// Launched field (normalized to unit power).
    launch: Vec<Complex64>,
    /// `k₀ / (2 n₀)` prefactor of the index term.
    index_coeff: f64,
    /// `1 / (2 k₀ n₀)` prefactor of the Laplacian term.
    lap_coeff: f64,
}

impl BpmSolver {
    /// Builds the solver, precomputing grid, absorber, launch field and
    /// output window.
    ///
    /// # Panics
    ///
    /// Panics if the grid is degenerate (`nx < 8` or `nz == 0`).
    pub fn new(geometry: YBranch, config: BpmConfig) -> Self {
        assert!(config.nx >= 8, "nx must be at least 8");
        assert!(config.nz >= 1, "nz must be at least 1");
        let nx = config.nx;
        let dx = 2.0 * config.x_extent / (nx - 1) as f64;
        let dz = geometry.length() / config.nz as f64;
        let xs: Vec<f64> = (0..nx).map(|i| -config.x_extent + i as f64 * dx).collect();

        let absorber: Vec<f64> = xs
            .iter()
            .map(|&x| {
                let border = config.x_extent - config.absorber_width;
                let d = (x.abs() - border).max(0.0) / config.absorber_width;
                config.absorber_strength * d * d
            })
            .collect();

        // Output window: nominal arm cores (±arm_sep ± half_width) at z = L.
        let window: Vec<f64> = xs
            .iter()
            .map(|&x| {
                let c = geometry.arm_separation();
                let hw = 1.5 * geometry.half_width();
                if (x - c).abs() <= hw || (x + c).abs() <= hw {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();

        // Gaussian launch normalized to unit power.
        let mut launch: Vec<Complex64> = xs
            .iter()
            .map(|&x| Complex64::from_real((-(x / config.launch_width).powi(2)).exp()))
            .collect();
        let p0: f64 = launch.iter().map(|u| u.abs_sq()).sum();
        let norm = 1.0 / p0.sqrt();
        for u in &mut launch {
            *u = *u * norm;
        }

        let k0 = 2.0 * std::f64::consts::PI / config.wavelength;
        let n0 = geometry.n_clad();
        BpmSolver {
            index_coeff: k0 / (2.0 * n0),
            lap_coeff: 1.0 / (2.0 * k0 * n0),
            geometry,
            config,
            xs,
            dx,
            dz,
            absorber,
            window,
            launch,
        }
    }

    /// Borrows the geometry.
    pub fn geometry(&self) -> &YBranch {
        &self.geometry
    }

    /// Borrows the lateral grid coordinates.
    pub fn grid(&self) -> &[f64] {
        &self.xs
    }

    /// Assembles the CN tridiagonal operators at mid-step `z`:
    /// `A u_{n+1} = B u_n` with `A = I + i(dz/2)H`, `B = I - i(dz/2)H`.
    ///
    /// Returns `(a_lower, a_diag, a_upper, h_diag)` where the B-product is
    /// applied directly from `h_diag` and the constant off-diagonals.
    fn operators(
        &self,
        z: f64,
        params: &[f64],
        dn2_dw: Option<&mut Vec<f64>>,
    ) -> (
        Vec<Complex64>,
        Vec<Complex64>,
        Vec<Complex64>,
        Vec<Complex64>,
    ) {
        let nx = self.config.nx;
        let off = -self.lap_coeff / (self.dx * self.dx);
        let n0sq = self.geometry.n_clad() * self.geometry.n_clad();

        let mut h_diag = vec![Complex64::ZERO; nx];
        match dn2_dw {
            Some(dw_out) => {
                dw_out.clear();
                for (j, &x) in self.xs.iter().enumerate() {
                    let (n2, dw) = self.geometry.index_squared_dw(x, z, params);
                    dw_out.push(dw);
                    h_diag[j] = Complex64::new(
                        -2.0 * off - self.index_coeff * (n2 - n0sq),
                        -self.index_coeff * self.absorber[j],
                    );
                }
            }
            None => {
                for (j, &x) in self.xs.iter().enumerate() {
                    let n2 = self.geometry.index_squared(x, z, params);
                    h_diag[j] = Complex64::new(
                        -2.0 * off - self.index_coeff * (n2 - n0sq),
                        -self.index_coeff * self.absorber[j],
                    );
                }
            }
        }

        let half = Complex64::new(0.0, 0.5 * self.dz);
        let a_off = half * off;
        let a_lower = vec![a_off; nx];
        let a_upper = vec![a_off; nx];
        let a_diag: Vec<Complex64> = h_diag.iter().map(|&h| Complex64::ONE + half * h).collect();
        (a_lower, a_diag, a_upper, h_diag)
    }

    fn apply_b(&self, h_diag: &[Complex64], u: &[Complex64]) -> Vec<Complex64> {
        let nx = u.len();
        let off = -self.lap_coeff / (self.dx * self.dx);
        let half = Complex64::new(0.0, -0.5 * self.dz);
        let b_off = half * off;
        let mut out = vec![Complex64::ZERO; nx];
        for j in 0..nx {
            let mut acc = (Complex64::ONE + half * h_diag[j]) * u[j];
            if j > 0 {
                acc += b_off * u[j - 1];
            }
            if j + 1 < nx {
                acc += b_off * u[j + 1];
            }
            out[j] = acc;
        }
        out
    }

    /// Runs the forward BPM and returns the transmission.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from the tridiagonal solver (should not
    /// occur for a well-posed CN system).
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != geometry.n_modes()`.
    pub fn run(&self, params: &[f64]) -> Result<BpmRun, LinalgError> {
        let mut u = self.launch.clone();
        for step in 0..self.config.nz {
            let z_mid = (step as f64 + 0.5) * self.dz;
            let (al, ad, au, h) = self.operators(z_mid, params, None);
            let rhs = self.apply_b(&h, &u);
            u = solve_complex_tridiagonal(&al, &ad, &au, &rhs)?;
        }
        let transmission: f64 = u
            .iter()
            .zip(&self.window)
            .map(|(v, &w)| w * v.abs_sq())
            .sum();
        Ok(BpmRun {
            transmission,
            output_magnitude: u.iter().map(|v| v.abs()).collect(),
        })
    }

    /// Runs the forward BPM *and* the adjoint pass, returning the
    /// transmission together with its gradient with respect to every
    /// deformation mode.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from the tridiagonal solver.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != geometry.n_modes()`.
    pub fn run_with_gradient(&self, params: &[f64]) -> Result<(f64, Vec<f64>), LinalgError> {
        let nz = self.config.nz;
        let n_modes = self.geometry.n_modes();

        // Forward pass, storing the field history and per-step dn²/dw.
        let mut fields: Vec<Vec<Complex64>> = Vec::with_capacity(nz + 1);
        let mut dn2_dw_steps: Vec<Vec<f64>> = Vec::with_capacity(nz);
        let mut h_diags: Vec<Vec<Complex64>> = Vec::with_capacity(nz);
        fields.push(self.launch.clone());
        let mut dw_buf = Vec::new();
        for step in 0..nz {
            let z_mid = (step as f64 + 0.5) * self.dz;
            let (al, ad, au, h) = self.operators(z_mid, params, Some(&mut dw_buf));
            let rhs = self.apply_b(&h, fields.last().expect("non-empty"));
            let next = solve_complex_tridiagonal(&al, &ad, &au, &rhs)?;
            fields.push(next);
            dn2_dw_steps.push(dw_buf.clone());
            h_diags.push(h);
        }
        let u_out = fields.last().expect("non-empty");
        let transmission: f64 = u_out
            .iter()
            .zip(&self.window)
            .map(|(v, &w)| w * v.abs_sq())
            .sum();

        // Adjoint pass: λ_N = W u_N; λ_k = B_kᴴ A_k⁻ᴴ λ_{k+1}, accumulating
        // 2 Re( μ_kᴴ (δB u_k − δA u_{k+1}) ) per parameter, where both
        // δA and δB are ∓ i(dz/2) δH with δH diagonal.
        let mut grad = vec![0.0; n_modes];
        let mut lambda: Vec<Complex64> = u_out
            .iter()
            .zip(&self.window)
            .map(|(v, &w)| *v * w)
            .collect();

        let off = -self.lap_coeff / (self.dx * self.dx);
        let half = Complex64::new(0.0, 0.5 * self.dz);
        let a_off_conj = (half * off).conj();

        for step in (0..nz).rev() {
            let z_mid = (step as f64 + 0.5) * self.dz;
            // Solve A^H μ = λ: A^H is tridiagonal with conjugated entries.
            let nx = self.config.nx;
            let al = vec![a_off_conj; nx];
            let au = vec![a_off_conj; nx];
            let ad: Vec<Complex64> = h_diags[step]
                .iter()
                .map(|&h| (Complex64::ONE + half * h).conj())
                .collect();
            let mu = solve_complex_tridiagonal(&al, &ad, &au, &lambda)?;

            // Parameter accumulation: δB u_k − δA u_{k+1}
            //   = -i(dz/2) δH (u_k + u_{k+1}),  δH_j = -index_coeff · dn²_j.
            // Inner product over x is common to all modes.
            let mut s = Complex64::ZERO;
            for j in 0..nx {
                let du = fields[step][j] + fields[step + 1][j];
                s += mu[j].conj() * du * dn2_dw_steps[step][j];
            }
            let common = Complex64::new(0.0, -0.5 * self.dz) * (-self.index_coeff);
            let contrib = common * s;
            for (m, g) in grad.iter_mut().enumerate() {
                *g += 2.0 * (contrib.re) * self.geometry.mode_basis(m, z_mid);
            }

            // λ_k = B^H μ.
            let b_half = Complex64::new(0.0, -0.5 * self.dz);
            let b_off_conj = (b_half * off).conj();
            let mut new_lambda = vec![Complex64::ZERO; nx];
            for j in 0..nx {
                let mut acc = (Complex64::ONE + b_half * h_diags[step][j]).conj() * mu[j];
                if j > 0 {
                    acc += b_off_conj * mu[j - 1];
                }
                if j + 1 < nx {
                    acc += b_off_conj * mu[j + 1];
                }
                new_lambda[j] = acc;
            }
            lambda = new_lambda;
        }

        Ok((transmission, grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_solver(n_modes: usize) -> BpmSolver {
        BpmSolver::new(
            YBranch::new(n_modes),
            BpmConfig {
                nx: 81,
                nz: 80,
                ..Default::default()
            },
        )
    }

    #[test]
    fn nominal_transmission_is_high() {
        let solver = small_solver(2);
        let run = solver.run(&[0.0, 0.0]).unwrap();
        assert!(
            run.transmission > 0.55 && run.transmission <= 1.0,
            "T = {}",
            run.transmission
        );
    }

    #[test]
    fn output_field_is_two_lobed() {
        let solver = small_solver(2);
        let run = solver.run(&[0.0, 0.0]).unwrap();
        let xs = solver.grid();
        // Magnitude at the arm centers should exceed the junction center.
        let at = |target: f64| -> f64 {
            let idx = xs
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    (a.1 - target)
                        .abs()
                        .partial_cmp(&(b.1 - target).abs())
                        .unwrap()
                })
                .map(|(i, _)| i)
                .unwrap();
            run.output_magnitude[idx]
        };
        let c = solver.geometry().arm_separation();
        assert!(at(c) > at(0.0), "lobe {} vs center {}", at(c), at(0.0));
        assert!(at(-c) > at(0.0));
    }

    #[test]
    fn strong_deformation_reduces_transmission() {
        let solver = small_solver(4);
        let nominal = solver.run(&[0.0; 4]).unwrap().transmission;
        let deformed = solver.run(&[-6.0, 5.0, -6.0, 5.0]).unwrap().transmission;
        assert!(
            deformed < nominal,
            "deformed {deformed} vs nominal {nominal}"
        );
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let solver = BpmSolver::new(
            YBranch::new(3),
            BpmConfig {
                nx: 61,
                nz: 40,
                ..Default::default()
            },
        );
        let params = [0.5, -0.8, 0.3];
        let (t, grad) = solver.run_with_gradient(&params).unwrap();
        assert!((t - solver.run(&params).unwrap().transmission).abs() < 1e-12);
        let eps = 1e-5;
        for i in 0..3 {
            let mut p = params;
            p[i] += eps;
            let fp = solver.run(&p).unwrap().transmission;
            p[i] -= 2.0 * eps;
            let fm = solver.run(&p).unwrap().transmission;
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (grad[i] - fd).abs() < 1e-5 + 1e-4 * fd.abs(),
                "mode {i}: adjoint {} vs fd {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn absorber_keeps_power_bounded() {
        let solver = small_solver(1);
        let run = solver.run(&[0.0]).unwrap();
        let total: f64 = run.output_magnitude.iter().map(|m| m * m).sum();
        assert!(total <= 1.0 + 1e-9, "power grew to {total}");
    }
}
