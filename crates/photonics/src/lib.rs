//! Scalar beam-propagation method (BPM) for photonic Y-branch yield
//! analysis.
//!
//! The paper's Y-branch test case (#9) uses a commercial photonic solver
//! under random boundary deformation; this crate provides the from-scratch
//! substitute: a Crank–Nicolson scalar BPM ([`BpmSolver`]) over a
//! parameterized [`YBranch`] geometry whose sidewalls are deformed by a
//! truncated Fourier series, plus an adjoint pass that returns the full
//! deformation gradient of the power transmission at the cost of one extra
//! sweep.
//!
//! # Example
//!
//! ```
//! use nofis_photonics::{BpmConfig, BpmSolver, YBranch};
//!
//! # fn main() -> Result<(), nofis_linalg::LinalgError> {
//! let solver = BpmSolver::new(YBranch::new(26), BpmConfig::default());
//! let (t, grad) = solver.run_with_gradient(&vec![0.0; 26])?;
//! assert!(t > 0.5);
//! assert_eq!(grad.len(), 26);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod bpm;
mod geometry;

pub use bpm::{BpmConfig, BpmRun, BpmSolver};
pub use geometry::YBranch;
