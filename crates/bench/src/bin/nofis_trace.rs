//! Offline reader for NOFIS JSONL run traces (written via
//! `NOFIS_TRACE_FILE` / `JsonlSink`).
//!
//! ```text
//! nofis-trace check   TRACE.jsonl          # schema-validate, exit 1 if invalid
//! nofis-trace summary TRACE.jsonl          # per-stage table + estimate summary
//! nofis-trace summary --by-job TRACE.jsonl # per-job lifecycle table
//! nofis-trace diff    A.jsonl B.jsonl      # compare two runs stage by stage
//! ```
//!
//! `summary` reconstructs the run from the structured records alone: the
//! `train.stage` spans carry per-stage wall time, step counts, retries,
//! oracle spend, and buffer-pool traffic (from which allocations per step
//! are derived); the `estimate` span carries the accepted fallback rung.
//! `diff` lines up two traces by stage number to compare timings and
//! resource spend — e.g. before/after a performance change.
//!
//! `summary --by-job` reads the `job.submit` / `job.start` / `job.retry` /
//! `job.end` lifecycle events written by the `nofis-jobs` runner (every
//! record a job emits carries a `job` field) and prints one row per job:
//! starts, retries, total backoff, checkpoints written, and the terminal
//! outcome. It exits 1 if any submitted job never reached a terminal
//! state — the CI chaos job's no-hang assertion.

use nofis_telemetry::trace::{parse_trace, TraceEvent};
use nofis_telemetry::Kind;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match (args.first().map(String::as_str), args.len()) {
        (Some("check"), 2) => check(&args[1]),
        (Some("summary"), 2) => summary(&args[1]),
        (Some("summary"), 3) if args[1] == "--by-job" => by_job(&args[2]),
        (Some("diff"), 3) => diff(&args[1], &args[2]),
        _ => {
            eprintln!(
                "usage: nofis-trace check TRACE.jsonl\n\
                 \x20      nofis-trace summary TRACE.jsonl\n\
                 \x20      nofis-trace summary --by-job TRACE.jsonl\n\
                 \x20      nofis-trace diff A.jsonl B.jsonl"
            );
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_trace(&text).map_err(|e| format!("{path}: {e}"))
}

fn check(path: &str) -> ExitCode {
    match load(path) {
        Ok(events) => {
            println!("OK: {} records", events.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One training stage as reconstructed from its `train.stage` span.
struct StageRow {
    stage: u64,
    level: f64,
    secs: f64,
    epochs: u64,
    steps: u64,
    retries: u64,
    oracle_calls: u64,
    pool_misses: u64,
    truncated: bool,
    final_loss: f64,
}

impl StageRow {
    fn allocs_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.pool_misses as f64 / self.steps as f64
        }
    }
}

/// Stage rows from the completed `train.stage` spans (error-path spans
/// carry no fields and are skipped).
fn stage_rows(events: &[TraceEvent]) -> Vec<StageRow> {
    events
        .iter()
        .filter(|e| e.kind == Kind::Span && e.name == "train.stage" && e.field("stage").is_some())
        .map(|e| StageRow {
            stage: e.u64_field("stage").unwrap_or(0),
            level: e.f64_field("level").unwrap_or(f64::NAN),
            secs: e.duration_us.unwrap_or(0) as f64 / 1e6,
            epochs: e.u64_field("epochs").unwrap_or(0),
            steps: e.u64_field("steps").unwrap_or(0),
            retries: e.u64_field("retries").unwrap_or(0),
            oracle_calls: e.u64_field("oracle_calls").unwrap_or(0),
            pool_misses: e.u64_field("pool_misses").unwrap_or(0),
            truncated: e.bool_field("truncated").unwrap_or(false),
            final_loss: e.f64_field("final_loss").unwrap_or(f64::NAN),
        })
        .collect()
}

/// The accepted estimation outcome from the `estimate` span, if present.
fn estimate_row(events: &[TraceEvent]) -> Option<&TraceEvent> {
    events
        .iter()
        .find(|e| e.kind == Kind::Span && e.name == "estimate")
}

fn summary(path: &str) -> ExitCode {
    let events = match load(path) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("INVALID: {e}");
            return ExitCode::FAILURE;
        }
    };
    if events.is_empty() {
        println!("empty trace");
        return ExitCode::SUCCESS;
    }
    let first_ts = events.iter().map(|e| e.ts_us).min().unwrap_or(0);
    let last_ts = events
        .iter()
        .map(|e| e.ts_us + e.duration_us.unwrap_or(0))
        .max()
        .unwrap_or(0);
    println!(
        "trace: {} records spanning {:.3} s",
        events.len(),
        (last_ts - first_ts) as f64 / 1e6
    );
    if let Some(start) = events.iter().find(|e| e.name == "train.start") {
        println!(
            "run: dim {}, <= {} stages, budget {}",
            start.u64_field("dim").unwrap_or(0),
            start.u64_field("max_stages").unwrap_or(0),
            start
                .u64_field("budget")
                .filter(|&b| b != u64::MAX)
                .map_or_else(|| "unlimited".into(), |b| b.to_string()),
        );
    }

    let rows = stage_rows(&events);
    if rows.is_empty() {
        println!("no completed training stages in trace");
    } else {
        println!(
            "{:>5} {:>9} {:>9} {:>7} {:>7} {:>8} {:>8} {:>12} {:>12}",
            "stage",
            "level",
            "time(s)",
            "epochs",
            "steps",
            "retries",
            "oracle",
            "allocs/step",
            "final_loss"
        );
        for r in &rows {
            println!(
                "{:>5} {:>9.3} {:>9.3} {:>7} {:>7} {:>8} {:>8} {:>12.2} {:>12.4}{}",
                r.stage,
                r.level,
                r.secs,
                r.epochs,
                r.steps,
                r.retries,
                r.oracle_calls,
                r.allocs_per_step(),
                r.final_loss,
                if r.truncated { "  (truncated)" } else { "" }
            );
        }
        let total_calls: u64 = rows.iter().map(|r| r.oracle_calls).sum();
        let total_secs: f64 = rows.iter().map(|r| r.secs).sum();
        let rollbacks = events.iter().filter(|e| e.name == "train.rollback").count();
        println!(
            "training: {} stages, {:.3} s, {} oracle calls, {} rollbacks",
            rows.len(),
            total_secs,
            total_calls,
            rollbacks
        );
    }

    // Durability and chaos lines: checkpoint traffic and injected faults
    // (present only in checkpointed / fault-plan runs).
    let ckpt_writes = events.iter().filter(|e| e.name == "ckpt.write").count();
    let ckpt_write_failures = events
        .iter()
        .filter(|e| e.name == "ckpt.write_failed")
        .count();
    let ckpt_corrupt = events
        .iter()
        .filter(|e| e.name == "ckpt.corrupt_skipped")
        .count();
    if ckpt_writes + ckpt_write_failures + ckpt_corrupt > 0 {
        print!(
            "checkpoints: {ckpt_writes} written, {ckpt_write_failures} write failures, \
             {ckpt_corrupt} corrupt skipped"
        );
        if let Some(last) = events.iter().filter(|e| e.name == "ckpt.write").next_back() {
            print!(
                ", newest generation {} at step {}",
                last.u64_field("generation").unwrap_or(0),
                last.u64_field("global_step").unwrap_or(0)
            );
        }
        println!();
    }
    if let Some(load) = events.iter().find(|e| e.name == "ckpt.load") {
        println!(
            "resumed: generation {} at step {} ({}, {} oracle calls already spent)",
            load.u64_field("generation").unwrap_or(0),
            load.u64_field("global_step").unwrap_or(0),
            if load.bool_field("done").unwrap_or(false) {
                "training complete"
            } else if load.bool_field("mid_stage").unwrap_or(false) {
                "mid-stage"
            } else {
                "stage boundary"
            },
            load.u64_field("oracle_spent").unwrap_or(0)
        );
    }
    let injected: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.name == "fault.injected")
        .collect();
    if !injected.is_empty() {
        let mut by_kind: Vec<(String, usize)> = Vec::new();
        for e in &injected {
            let key = format!(
                "{}@{}",
                e.str_field("kind").unwrap_or("?"),
                e.str_field("site").unwrap_or("?")
            );
            match by_kind.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => by_kind.push((key, 1)),
            }
        }
        let detail: Vec<String> = by_kind.iter().map(|(k, n)| format!("{n}x {k}")).collect();
        println!(
            "faults injected: {} ({})",
            injected.len(),
            detail.join(", ")
        );
    }

    let attempts = events.iter().filter(|e| e.name == "estimate.rung").count();
    if let Some(est) = estimate_row(&events) {
        println!(
            "estimate: rung {} (rank {}), estimate {:e}, hits {}, ess {:.1}, \
             {} oracle calls, {:.3} s, {} rung attempts",
            est.str_field("rung").unwrap_or("?"),
            est.u64_field("rank").unwrap_or(0),
            est.f64_field("estimate").unwrap_or(f64::NAN),
            est.u64_field("hits").unwrap_or(0),
            est.f64_field("ess").unwrap_or(f64::NAN),
            est.u64_field("oracle_calls").unwrap_or(0),
            est.duration_us.unwrap_or(0) as f64 / 1e6,
            attempts
        );
    }
    ExitCode::SUCCESS
}

/// One supervised job's lifecycle, reconstructed from `job.*` events.
#[derive(Default)]
struct JobRow {
    id: u64,
    name: String,
    priority: u64,
    submitted: bool,
    starts: u64,
    retries: u64,
    backoff_ms: u64,
    ckpt_writes: u64,
    outcome: Option<String>,
    attempts: u64,
    checkpointed: Option<bool>,
}

fn by_job(path: &str) -> ExitCode {
    let events = match load(path) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("INVALID: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rows: Vec<JobRow> = Vec::new();
    let row = |rows: &mut Vec<JobRow>, id: u64| -> usize {
        match rows.iter().position(|r| r.id == id) {
            Some(idx) => idx,
            None => {
                rows.push(JobRow {
                    id,
                    ..Default::default()
                });
                rows.len() - 1
            }
        }
    };
    for e in &events {
        let Some(id) = e.u64_field("job") else {
            continue;
        };
        let idx = row(&mut rows, id);
        match e.name.as_str() {
            "job.submit" => {
                rows[idx].submitted = true;
                rows[idx].name = e.str_field("name").unwrap_or("?").to_string();
                rows[idx].priority = e.u64_field("priority").unwrap_or(0);
            }
            "job.start" => rows[idx].starts += 1,
            "job.retry" => {
                rows[idx].retries += 1;
                rows[idx].backoff_ms += e.u64_field("backoff_ms").unwrap_or(0);
            }
            "job.end" => {
                rows[idx].outcome = Some(e.str_field("outcome").unwrap_or("?").to_string());
                rows[idx].attempts = e.u64_field("attempts").unwrap_or(0);
                rows[idx].checkpointed = e.bool_field("checkpointed");
                if rows[idx].name.is_empty() {
                    rows[idx].name = e.str_field("name").unwrap_or("?").to_string();
                }
            }
            "ckpt.write" => rows[idx].ckpt_writes += 1,
            _ => {}
        }
    }
    if rows.is_empty() {
        println!("no job lifecycle events in trace");
        return ExitCode::SUCCESS;
    }
    rows.sort_by_key(|r| r.id);
    println!(
        "{:>5} {:<14} {:>4} {:>6} {:>7} {:>11} {:>5} {:>8}  {}",
        "job", "name", "prio", "starts", "retries", "backoff(ms)", "ckpt", "attempts", "outcome"
    );
    for r in &rows {
        let outcome = match (&r.outcome, r.checkpointed) {
            (Some(o), Some(true)) => format!("{o} (checkpointed)"),
            (Some(o), _) => o.clone(),
            (None, _) => "NON-TERMINAL".to_string(),
        };
        println!(
            "{:>5} {:<14} {:>4} {:>6} {:>7} {:>11} {:>5} {:>8}  {outcome}",
            r.id, r.name, r.priority, r.starts, r.retries, r.backoff_ms, r.ckpt_writes, r.attempts
        );
    }
    let submitted = rows.iter().filter(|r| r.submitted).count();
    let terminal = rows.iter().filter(|r| r.outcome.is_some()).count();
    let count = |what: &str| {
        rows.iter()
            .filter(|r| r.outcome.as_deref() == Some(what))
            .count()
    };
    let total_retries: u64 = rows.iter().map(|r| r.retries).sum();
    println!(
        "jobs: {submitted} submitted, {terminal} terminal \
         ({} done, {} failed, {} panicked, {} shed, {} deadline, {} suspended), \
         {total_retries} retries",
        count("done"),
        count("failed"),
        count("panicked"),
        count("shed"),
        count("deadline"),
        count("suspended"),
    );
    if terminal < submitted {
        eprintln!(
            "NON-TERMINAL: {} submitted job(s) never reached a terminal state",
            submitted - terminal
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn pct(a: f64, b: f64) -> String {
    if a <= 0.0 {
        "n/a".into()
    } else {
        format!("{:+.1}%", (b - a) / a * 100.0)
    }
}

fn diff(path_a: &str, path_b: &str) -> ExitCode {
    let (events_a, events_b) = match (load(path_a), load(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("INVALID: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rows_a = stage_rows(&events_a);
    let rows_b = stage_rows(&events_b);
    println!("A = {path_a}\nB = {path_b}");
    let stages: Vec<u64> = {
        let mut s: Vec<u64> = rows_a
            .iter()
            .chain(rows_b.iter())
            .map(|r| r.stage)
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    for stage in stages {
        let a = rows_a.iter().find(|r| r.stage == stage);
        let b = rows_b.iter().find(|r| r.stage == stage);
        match (a, b) {
            (Some(a), Some(b)) => println!(
                "stage {stage}: time {:.3}s -> {:.3}s ({}), steps {} -> {}, \
                 oracle {} -> {}, allocs/step {:.2} -> {:.2}",
                a.secs,
                b.secs,
                pct(a.secs, b.secs),
                a.steps,
                b.steps,
                a.oracle_calls,
                b.oracle_calls,
                a.allocs_per_step(),
                b.allocs_per_step(),
            ),
            (Some(_), None) => println!("stage {stage}: only in A"),
            (None, Some(_)) => println!("stage {stage}: only in B"),
            (None, None) => unreachable!("stage came from one of the row sets"),
        }
    }
    let total = |rows: &[StageRow]| -> (f64, u64) {
        (
            rows.iter().map(|r| r.secs).sum(),
            rows.iter().map(|r| r.oracle_calls).sum(),
        )
    };
    let (secs_a, calls_a) = total(&rows_a);
    let (secs_b, calls_b) = total(&rows_b);
    println!(
        "training total: time {secs_a:.3}s -> {secs_b:.3}s ({}), oracle {calls_a} -> {calls_b}",
        pct(secs_a, secs_b)
    );
    match (estimate_row(&events_a), estimate_row(&events_b)) {
        (Some(a), Some(b)) => println!(
            "estimate: rung {} -> {}, estimate {:e} -> {:e}, ess {:.1} -> {:.1}",
            a.str_field("rung").unwrap_or("?"),
            b.str_field("rung").unwrap_or("?"),
            a.f64_field("estimate").unwrap_or(f64::NAN),
            b.f64_field("estimate").unwrap_or(f64::NAN),
            a.f64_field("ess").unwrap_or(f64::NAN),
            b.f64_field("ess").unwrap_or(f64::NAN),
        ),
        (Some(_), None) => println!("estimate: only in A"),
        (None, Some(_)) => println!("estimate: only in B"),
        (None, None) => {}
    }
    ExitCode::SUCCESS
}
