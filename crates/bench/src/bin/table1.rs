//! Regenerates Table 1 of the NOFIS paper: 10 test cases × 7 methods,
//! reporting "number of calls / logarithm error" averaged over repeated
//! runs.
//!
//! ```text
//! table1 [--runs N] [--cases leaf,cube,...] [--seed S]
//! ```
//!
//! The paper averages 20 runs on a V100 cluster; this reproduction runs on
//! a single CPU core, so the default is 5 runs (raise `--runs` when you
//! have the time budget). Results stream to stdout and are dumped to
//! `results/table1.json`.

use nofis_bench::cases::table1_configs;
use nofis_bench::runner::{format_row, run_case};

fn main() {
    let mut runs = 5usize;
    let mut filter: Option<Vec<String>> = None;
    let mut seed = 1_000u64;
    let mut nofis_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--runs" => {
                runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs takes an integer");
            }
            "--cases" => {
                filter = Some(
                    args.next()
                        .expect("--cases takes a comma-separated list")
                        .split(',')
                        .map(|s| s.trim().to_lowercase())
                        .collect(),
                );
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--only-nofis" => nofis_only = true,
            other => panic!("unknown argument {other}"),
        }
    }

    let configs = table1_configs();
    let selected: Vec<_> = configs
        .into_iter()
        .filter(|c| {
            filter
                .as_ref()
                .map(|f| f.iter().any(|n| c.entry.name.to_lowercase().contains(n)))
                .unwrap_or(true)
        })
        .collect();

    println!(
        "Table 1 reproduction — {runs} runs per (case, method); format: calls / |ln(est) - ln(golden)|"
    );
    println!(
        "{:<34} | {}",
        "case",
        ["MC", "SIR", "SUC", "SUS", "SSS", "Adapt-IS", "NOFIS"].join(" | ")
    );

    let mut results = Vec::new();
    for case in &selected {
        eprintln!(
            "running case #{} {} (D={})…",
            case.entry.id, case.entry.name, case.entry.dim
        );
        let res = if nofis_only {
            nofis_bench::runner::run_case_nofis_only(
                case,
                runs,
                seed + case.entry.id as u64 * 1_000,
            )
        } else {
            run_case(case, runs, seed + case.entry.id as u64 * 1_000, true)
        };
        println!("{}", format_row(&res));
        results.push(res);
        // Persist incrementally so partial runs still leave artifacts.
        let json = serde_json::to_string_pretty(&results).expect("serializable results");
        std::fs::create_dir_all("results").ok();
        std::fs::write("results/table1.json", json).expect("write results/table1.json");
    }
    println!("\nwrote results/table1.json");
}
