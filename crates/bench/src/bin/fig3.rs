//! Regenerates Figure 3: the intermediate stage proposals
//! `q_8, q_16, q_24, q_32` of the Leaf case and the per-stage training
//! loss curves.
//!
//! ```text
//! fig3 [--res R] [--epochs E] [--seed S]
//! ```
//!
//! Panel (a)–(d): each stage proposal should concentrate on two "leaves"
//! centered at `(±3.8, ±3.8)` with radius `√(a_m + 1)`; the binary prints
//! the measured mass-weighted mean radius per stage next to the expected
//! value. Panel (e): the loss curves are printed as CSV and dumped to
//! `results/fig3.json`.

use nofis_bench::heatmap::Heatmap;
use nofis_core::{Levels, Nofis, NofisConfig};
use nofis_prob::Proposal;
use nofis_testcases::Leaf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct StageInfo {
    stage: usize,
    level: f64,
    expected_radius: f64,
    measured_radius: f64,
    map: Heatmap,
}

#[derive(Serialize)]
struct Fig3Result {
    stages: Vec<StageInfo>,
    loss_history: Vec<Vec<f64>>,
}

fn main() {
    let mut res = 97usize;
    let mut epochs = 40usize;
    let mut seed = 3u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--res" => res = args.next().and_then(|v| v.parse().ok()).expect("--res N"),
            "--epochs" => {
                epochs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--epochs N")
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            other => panic!("unknown argument {other}"),
        }
    }

    let levels = vec![26.0, 15.0, 8.0, 3.0, 0.0];
    let config = NofisConfig {
        levels: Levels::Fixed(levels.clone()),
        layers_per_stage: 8,
        hidden: 32,
        epochs,
        batch_size: 500,
        n_is: 100,
        tau: 30.0,
        learning_rate: 5e-3,
        minibatch: 64,
        ..Default::default()
    };
    let nofis = Nofis::new(config).expect("valid fig3 config");
    let mut rng = StdRng::seed_from_u64(seed);
    let trained = nofis.train(&Leaf, &mut rng).expect("fig3 training failed");

    let mut stages = Vec::new();
    for stage in 1..=trained.stages() {
        let proposal = trained.stage_proposal(stage);
        let map = Heatmap::from_fn(res, 6.0, |x, y| proposal.log_density(&[x, y]).exp());
        // Mass-weighted mean distance from the nearest leaf center.
        let c = Leaf::CENTER;
        let mut num = 0.0;
        let mut den = 0.0;
        let step = 12.0 / (res - 1) as f64;
        for iy in 0..res {
            let y = -6.0 + iy as f64 * step;
            for ix in 0..res {
                let x = -6.0 + ix as f64 * step;
                let w = map.values[iy * res + ix];
                let r1 = ((x - c).powi(2) + (y - c).powi(2)).sqrt();
                let r2 = ((x + c).powi(2) + (y + c).powi(2)).sqrt();
                num += w * r1.min(r2);
                den += w;
            }
        }
        let level = trained.levels()[stage - 1];
        let info = StageInfo {
            stage,
            level,
            expected_radius: (level + 1.0).sqrt(),
            measured_radius: num / den.max(1e-300),
            map,
        };
        println!(
            "stage {stage}: level a = {level:>5.1}, expected leaf radius sqrt(a+1) = {:.3}, measured mass-weighted radius = {:.3}",
            info.expected_radius, info.measured_radius
        );
        print!("{}", info.map.to_ascii(56));
        stages.push(info);
    }

    println!("\nloss curves (CSV: stage, epoch, loss):");
    for (s, losses) in trained.loss_history().iter().enumerate() {
        for (e, l) in losses.iter().enumerate() {
            println!("{}, {}, {:.6}", s + 1, e + 1, l);
        }
    }

    let result = Fig3Result {
        stages,
        loss_history: trained.loss_history().to_vec(),
    };
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/fig3.json",
        serde_json::to_string(&result).expect("serializable"),
    )
    .expect("write results/fig3.json");
    println!("\nwrote results/fig3.json");
}
