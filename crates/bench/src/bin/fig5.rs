//! Regenerates Figure 5: implementation-choice ablations on the three
//! circuit cases (Opamp, Charge Pump, Y-branch).
//!
//! ```text
//! fig5 [--part left|right|both] [--runs N] [--seed S] [--cases opamp,charge,y]
//! ```
//!
//! * left: nominal vs NoFreeze vs LongThre (M = 9) vs SmallTemp (τ = 1).
//! * right: log error vs temperature τ ∈ {1, 5, 10, 20, 50, 100, 200, 400}.

use nofis_bench::cases::table1_configs;
use nofis_bench::runner::run_method;
use nofis_bench::NofisEstimator;
use nofis_core::{Levels, NofisConfig};
use serde::Serialize;

#[derive(Serialize)]
struct AblationResult {
    case: String,
    variant: String,
    mean_log_error: f64,
    std_log_error: f64,
    mean_calls: f64,
}

fn variant_config(base: &NofisConfig, variant: &str) -> NofisConfig {
    let mut cfg = base.clone();
    match variant {
        "Nominal" => {}
        "NoFreeze" => cfg.freeze = false,
        "LongThre" => {
            // M = 9 with the same total budget: shrink epochs to compensate.
            if let Levels::AdaptiveQuantile { max_stages, .. } = &mut cfg.levels {
                let old = *max_stages;
                *max_stages = 9;
                cfg.epochs = (cfg.epochs * old / 9).max(3);
            }
        }
        "SmallTemp" => cfg.tau = 1.0,
        other => panic!("unknown variant {other}"),
    }
    cfg
}

fn main() {
    let mut part = "both".to_string();
    let mut runs = 3usize;
    let mut seed = 42u64;
    let mut case_filter = vec![
        "opamp".to_string(),
        "charge".to_string(),
        "y-branch".to_string(),
    ];
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--part" => part = args.next().expect("--part left|right|both"),
            "--runs" => runs = args.next().and_then(|v| v.parse().ok()).expect("--runs N"),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--cases" => {
                case_filter = args
                    .next()
                    .expect("--cases list")
                    .split(',')
                    .map(|s| s.trim().to_lowercase())
                    .collect();
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let circuits: Vec<_> = table1_configs()
        .into_iter()
        .filter(|c| {
            let n = c.entry.name.to_lowercase();
            case_filter.iter().any(|f| n.contains(f))
        })
        .collect();

    let mut results: Vec<AblationResult> = Vec::new();

    if part == "left" || part == "both" {
        println!("=== Figure 5 (left): single-change ablations, {runs} runs each ===");
        for case in &circuits {
            for variant in ["Nominal", "NoFreeze", "LongThre", "SmallTemp"] {
                let cfg = variant_config(&case.nofis, variant);
                let est = NofisEstimator::new(cfg);
                let res = run_method(&est, case, runs, seed);
                println!(
                    "{:<12} {:<10} log error {:.3} ± {:.3} ({:.1}K calls)",
                    case.entry.name,
                    variant,
                    res.mean_log_error,
                    res.std_log_error,
                    res.mean_calls / 1e3
                );
                results.push(AblationResult {
                    case: case.entry.name.to_string(),
                    variant: variant.to_string(),
                    mean_log_error: res.mean_log_error,
                    std_log_error: res.std_log_error,
                    mean_calls: res.mean_calls,
                });
            }
        }
    }

    if part == "right" || part == "both" {
        println!("=== Figure 5 (right): temperature sweep, {runs} runs each ===");
        for case in &circuits {
            for tau in [1.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 400.0] {
                let mut cfg = case.nofis.clone();
                cfg.tau = tau;
                let est = NofisEstimator::new(cfg);
                let res = run_method(&est, case, runs, seed);
                println!(
                    "{:<12} tau = {tau:>5}: log error {:.3} ± {:.3}",
                    case.entry.name, res.mean_log_error, res.std_log_error
                );
                results.push(AblationResult {
                    case: case.entry.name.to_string(),
                    variant: format!("tau={tau}"),
                    mean_log_error: res.mean_log_error,
                    std_log_error: res.std_log_error,
                    mean_calls: res.mean_calls,
                });
            }
        }
    }

    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/fig5.json",
        serde_json::to_string_pretty(&results).expect("serializable"),
    )
    .expect("write results/fig5.json");
    println!("\nwrote results/fig5.json");
}
