//! Regenerates Figure 2: learned proposal `q_MK` versus the theoretically
//! optimal proposal `q*` on four 2-D cases, in the unlimited-function-call
//! regime.
//!
//! ```text
//! fig2 [--res R] [--epochs E] [--seed S]
//! ```
//!
//! For each case the binary trains NOFIS with K = 8, M = 5 (paper setup),
//! rasterizes the learned density and the optimal `q* ∝ p·1[g ≤ 0]`, prints
//! ASCII heatmaps, and reports the normalized cross-correlation between
//! the two maps (1.0 = perfect shape recovery). JSON heatmaps are dumped
//! to `results/fig2.json`.

use nofis_bench::heatmap::Heatmap;
use nofis_core::{Levels, Nofis, NofisConfig};
use nofis_prob::{LimitState, StandardGaussian};
use nofis_testcases::{Banana, FourPetal, Leaf, Ring};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct PanelResult {
    name: String,
    levels: Vec<f64>,
    correlation: f64,
    learned: Heatmap,
    optimal: Heatmap,
}

fn panel(
    name: &str,
    ls: &(impl LimitState + ?Sized + Sync),
    levels: Vec<f64>,
    res: usize,
    epochs: usize,
    seed: u64,
) -> PanelResult {
    let config = NofisConfig {
        levels: Levels::Fixed(levels.clone()),
        layers_per_stage: 8,
        hidden: 32,
        epochs,
        batch_size: 500,
        n_is: 100,
        tau: 30.0,
        learning_rate: 5e-3,
        minibatch: 64,
        ..Default::default()
    };
    let nofis = Nofis::new(config).expect("valid fig2 config");
    let mut rng = StdRng::seed_from_u64(seed);
    let trained = nofis.train(&ls, &mut rng).expect("fig2 training failed");

    let extent = 6.0;
    let learned = Heatmap::from_fn(res, extent, |x, y| trained.log_density(&[x, y]).exp());
    let p = StandardGaussian::new(2);
    let optimal = Heatmap::from_fn(res, extent, |x, y| {
        if ls.value(&[x, y]) <= 0.0 {
            p.log_density(&[x, y]).exp()
        } else {
            0.0
        }
    });
    let correlation = learned.correlation(&optimal);

    println!("=== {name} (levels {levels:?}) — correlation(q_MK, q*) = {correlation:.3} ===");
    println!("learned q_MK:");
    print!("{}", learned.to_ascii(56));
    println!("optimal q*:");
    print!("{}", optimal.to_ascii(56));

    PanelResult {
        name: name.to_string(),
        levels,
        correlation,
        learned,
        optimal,
    }
}

fn main() {
    let mut res = 97usize;
    let mut epochs = 40usize;
    let mut seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--res" => res = args.next().and_then(|v| v.parse().ok()).expect("--res N"),
            "--epochs" => {
                epochs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--epochs N")
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            other => panic!("unknown argument {other}"),
        }
    }

    // Panel (b): the paper's Leaf case with its published level ladder.
    let panels = vec![
        panel(
            "Leaf",
            &Leaf,
            vec![26.0, 15.0, 8.0, 3.0, 0.0],
            res,
            epochs,
            seed,
        ),
        panel(
            "FourPetal",
            &FourPetal::default(),
            vec![26.0, 15.0, 8.0, 3.0, 0.0],
            res,
            epochs,
            seed + 1,
        ),
        panel(
            "Ring",
            &Ring::default(),
            vec![3.0, 2.0, 1.0, 0.5, 0.0],
            res,
            epochs,
            seed + 2,
        ),
        panel(
            "Banana",
            &Banana::default(),
            vec![3.0, 2.0, 1.0, 0.5, 0.0],
            res,
            epochs,
            seed + 3,
        ),
    ];

    std::fs::create_dir_all("results").ok();
    let json = serde_json::to_string(&panels).expect("serializable panels");
    std::fs::write("results/fig2.json", json).expect("write results/fig2.json");
    println!("\nwrote results/fig2.json");
    for p in &panels {
        println!("{:<10} correlation = {:.3}", p.name, p.correlation);
    }
}
