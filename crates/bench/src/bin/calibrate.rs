//! Threshold/golden-probability calibration utility.
//!
//! ```text
//! calibrate --case <name> [--samples N] [--target P] [--sus] [--seed S]
//! calibrate --all
//! ```
//!
//! MC mode streams `N` base samples through the case's limit state and
//! reports (a) the failure probability at the current thresholds, (b) the
//! `target`-quantile of `g` (shift `g` by this to hit the target
//! probability), and (c) a suggested NOFIS level ladder (the
//! `0.1^m`-quantiles of `g` from a stored subsample).
//!
//! SUS mode runs subset simulation with several seeds for cases too
//! expensive for direct MC (Y-branch).

use nofis_baselines::sus_with_seed;
use nofis_prob::{quantile, LimitState, StandardGaussian};
use nofis_testcases::registry::all_cases;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BinaryHeap;

fn parse_args() -> (Option<String>, usize, f64, bool, u64, bool) {
    let mut case = None;
    let mut samples = 10_000_000usize;
    let mut target = 0.0;
    let mut sus = false;
    let mut seed = 0u64;
    let mut all = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--case" => case = args.next(),
            "--samples" => {
                samples = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .map(|v| v as usize)
                    .expect("--samples takes a number");
            }
            "--target" => {
                target = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--target takes a probability");
            }
            "--sus" => sus = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--all" => all = true,
            other => panic!("unknown argument {other}"),
        }
    }
    (case, samples, target, sus, seed, all)
}

/// Max-heap entry for streaming bottom-K of g.
#[derive(PartialEq)]
struct HeapF64(f64);
impl Eq for HeapF64 {}
impl PartialOrd for HeapF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("no NaN g values")
    }
}

fn calibrate_mc(ls: &(dyn LimitState + Sync), samples: usize, target: f64, seed: u64) {
    let base = StandardGaussian::new(ls.dim());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0u64;
    // Bottom-K of g (max-heap of the K smallest values).
    let k = ((target * samples as f64 * 3.0) as usize).clamp(200, 2_000_000);
    let mut heap: BinaryHeap<HeapF64> = BinaryHeap::with_capacity(k + 1);
    // Subsample for level suggestions.
    let mut sub: Vec<f64> = Vec::with_capacity(200_000);
    let sub_stride = (samples / 200_000).max(1);

    let t0 = std::time::Instant::now();
    for i in 0..samples {
        let x = base.sample(&mut rng);
        let g = ls.value(&x);
        if g <= 0.0 {
            hits += 1;
        }
        if heap.len() < k {
            heap.push(HeapF64(g));
        } else if g < heap.peek().expect("non-empty").0 {
            heap.pop();
            heap.push(HeapF64(g));
        }
        if i % sub_stride == 0 {
            sub.push(g);
        }
    }
    let pr = hits as f64 / samples as f64;
    println!(
        "case {:<22} n={:.1e}  P(g<=0) = {:.4e}  ({} hits, {:.1?})",
        ls.name(),
        samples as f64,
        pr,
        hits,
        t0.elapsed()
    );

    if target > 0.0 {
        let mut lows: Vec<f64> = heap.into_iter().map(|h| h.0).collect();
        lows.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let rank = (target * samples as f64).round() as usize;
        if rank >= 1 && rank <= lows.len() {
            let q = lows[rank - 1];
            println!(
                "  target P = {target:.2e}: q_target(g) = {q:+.6e}  (shift: g' = g - ({q:+.6e}))"
            );
        } else {
            println!(
                "  target quantile rank {rank} outside stored bottom-K ({})",
                lows.len()
            );
        }
    }

    // NOFIS level ladder suggestion from the subsample.
    let mut msg = String::from("  suggested levels (0.1^m quantiles of g): ");
    for m in 1..=4 {
        let p = 0.1f64.powi(m);
        if p * sub.len() as f64 >= 5.0 {
            msg.push_str(&format!("{:.3}  ", quantile(&sub, p)));
        }
    }
    println!("{msg}");
}

fn calibrate_sus(ls: &(dyn LimitState + Sync), samples: usize) {
    let mut estimates = Vec::new();
    for seed in 0..5 {
        let p = sus_with_seed(ls, samples, 12, seed);
        println!("  SUS seed {seed}: {p:.4e}");
        estimates.push(p);
    }
    let positive: Vec<f64> = estimates.iter().copied().filter(|&p| p > 0.0).collect();
    if !positive.is_empty() {
        let geo = (positive.iter().map(|p| p.ln()).sum::<f64>() / positive.len() as f64).exp();
        println!(
            "case {:<22} SUS geometric mean = {geo:.4e} over {} runs",
            ls.name(),
            positive.len()
        );
    }
}

fn main() {
    let (case, samples, target, sus, seed, all) = parse_args();
    let entries = all_cases();
    let selected: Vec<_> = if all {
        entries.iter().collect()
    } else {
        let name = case
            .expect("--case <name> or --all required")
            .to_lowercase();
        entries
            .iter()
            .filter(|e| e.name.to_lowercase().contains(&name))
            .collect()
    };
    assert!(!selected.is_empty(), "no case matched");
    for entry in selected {
        let ls = (entry.make)();
        let target = if target > 0.0 {
            target
        } else {
            entry.golden_pr
        };
        if sus {
            calibrate_sus(&ls, samples);
        } else {
            calibrate_mc(&ls, samples, target, seed);
        }
    }
}
