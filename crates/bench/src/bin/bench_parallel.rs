//! Serial-vs-parallel throughput trajectory for the parallel execution
//! layer: the chunked matmul kernel and chunked oracle batch evaluation,
//! timed against explicit 1- and 4-thread pools, with bitwise-identity
//! checks folded into the record.
//!
//! ```text
//! bench_parallel [--threads T] [--batch N]
//! ```
//!
//! Writes `results/BENCH_parallel.json`. Speedups are *reported*, never
//! asserted: on a single-core host the parallel lane legitimately ties or
//! loses, and the determinism tests elsewhere already pin that the numbers
//! themselves cannot differ.

use nofis_autograd::Tensor;
use nofis_parallel::ThreadPool;
use nofis_prob::{
    batch_values_with, importance_sampling_detailed_with_pool, LimitState, StandardGaussian,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct MatmulRecord {
    shape: String,
    serial_ns_per_iter: f64,
    parallel_ns_per_iter: f64,
    speedup: f64,
    bitwise_identical: bool,
}

#[derive(Serialize)]
struct OracleRecord {
    oracle: String,
    batch: usize,
    serial_ns_per_batch: f64,
    parallel_ns_per_batch: f64,
    speedup: f64,
    bitwise_identical: bool,
}

#[derive(Serialize)]
struct EstimateRecord {
    threads: usize,
    estimate: f64,
    bits_match_serial: bool,
}

#[derive(Serialize)]
struct BenchParallel {
    host_parallelism: usize,
    parallel_threads: usize,
    note: &'static str,
    matmul: Vec<MatmulRecord>,
    oracle_batch: Vec<OracleRecord>,
    is_estimates: Vec<EstimateRecord>,
}

/// Median-free, warmed-up ns/iteration: doubles the iteration count until
/// the timed window is at least 50 ms, so cheap kernels are not measured
/// at timer resolution.
fn time_per_iter(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= 50 || iters >= 1 << 24 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 2;
    }
}

fn lcg_fill(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// A deliberately simulator-priced oracle: each call runs a short damped
/// oscillator integration, so one `g(x)` costs microseconds (like the
/// circuit substrates) rather than nanoseconds, and the per-chunk
/// dispatch overhead is honest.
struct HeavyOscillator {
    dim: usize,
    steps: usize,
}

impl LimitState for HeavyOscillator {
    fn dim(&self) -> usize {
        self.dim
    }
    fn value(&self, x: &[f64]) -> f64 {
        let dt = 1e-2;
        let mut q = x[0];
        let mut p = x[1 % self.dim];
        let k = 1.0 + 0.1 * x.iter().sum::<f64>().tanh();
        for _ in 0..self.steps {
            p -= dt * (k * q + 0.05 * p);
            q += dt * p;
        }
        (q * q + p * p).sqrt() - 1.2
    }
}

/// A cheap analytic oracle, to show the regime where chunking overhead
/// dominates and parallel eval is *not* expected to win.
struct Ring3;
impl LimitState for Ring3 {
    fn dim(&self) -> usize {
        3
    }
    fn value(&self, x: &[f64]) -> f64 {
        let r = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        (r - 2.5).abs() - 0.4
    }
}

fn main() {
    let mut threads = 4usize;
    let mut batch = 1024usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads T")
            }
            "--batch" => batch = args.next().and_then(|v| v.parse().ok()).expect("--batch N"),
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(
        threads >= 1 && batch >= 256,
        "need --threads >= 1, --batch >= 256"
    );

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let serial = ThreadPool::new(1);
    let par = ThreadPool::new(threads);
    println!("host parallelism {host}, parallel pool {threads} threads\n");

    // --- Matmul: training-step shapes (batch x dim by dim x hidden). ---
    let mut matmul = Vec::new();
    for &(m, k, n) in &[(200usize, 62usize, 32usize), (256, 64, 64), (512, 128, 128)] {
        let a = Tensor::from_vec(m, k, lcg_fill(m * k, 11));
        let b = Tensor::from_vec(k, n, lcg_fill(k * n, 22));
        let ref_out = a.matmul_with(&b, &serial);
        let par_out = a.matmul_with(&b, &par);
        let identical = bits_eq(ref_out.as_slice(), par_out.as_slice());
        let t_serial = time_per_iter(|| {
            std::hint::black_box(a.matmul_with(&b, &serial));
        });
        let t_par = time_per_iter(|| {
            std::hint::black_box(a.matmul_with(&b, &par));
        });
        let rec = MatmulRecord {
            shape: format!("{m}x{k}x{n}"),
            serial_ns_per_iter: t_serial,
            parallel_ns_per_iter: t_par,
            speedup: t_serial / t_par,
            bitwise_identical: identical,
        };
        println!(
            "matmul {:>12}: serial {:>10.0} ns  parallel {:>10.0} ns  speedup {:.2}x  bitwise={}",
            rec.shape, rec.serial_ns_per_iter, rec.parallel_ns_per_iter, rec.speedup, identical
        );
        matmul.push(rec);
    }

    // --- Oracle batch evaluation on a >= 256-sample batch. ---
    let mut oracle_batch = Vec::new();
    let heavy = HeavyOscillator { dim: 6, steps: 400 };
    let oracles: [(&str, &(dyn LimitState + Sync)); 2] =
        [("heavy_oscillator", &heavy), ("ring3_cheap", &Ring3)];
    for (name, ls) in oracles {
        let xs: Vec<Vec<f64>> = (0..batch)
            .map(|i| lcg_fill(ls.dim(), 1000 + i as u64))
            .collect();
        let ref_vals = batch_values_with(ls, &xs, &serial);
        let par_vals = batch_values_with(ls, &xs, &par);
        let identical = bits_eq(&ref_vals, &par_vals);
        let t_serial = time_per_iter(|| {
            std::hint::black_box(batch_values_with(ls, &xs, &serial));
        });
        let t_par = time_per_iter(|| {
            std::hint::black_box(batch_values_with(ls, &xs, &par));
        });
        let rec = OracleRecord {
            oracle: name.to_string(),
            batch,
            serial_ns_per_batch: t_serial,
            parallel_ns_per_batch: t_par,
            speedup: t_serial / t_par,
            bitwise_identical: identical,
        };
        println!(
            "oracle {:>17} x{batch}: serial {:>11.0} ns  parallel {:>11.0} ns  speedup {:.2}x  bitwise={}",
            name, rec.serial_ns_per_batch, rec.parallel_ns_per_batch, rec.speedup, identical
        );
        oracle_batch.push(rec);
    }

    // --- End-to-end IS estimates must carry identical bits per thread count. ---
    let p = StandardGaussian::new(3);
    let run = |pool: &ThreadPool| {
        let mut rng = StdRng::seed_from_u64(20240607);
        importance_sampling_detailed_with_pool(&Ring3, 0.0, &p, &p, 4000, &mut rng, pool)
            .0
            .estimate
    };
    let base = run(&serial);
    let mut is_estimates = vec![EstimateRecord {
        threads: 1,
        estimate: base,
        bits_match_serial: true,
    }];
    for t in [2usize, threads, 8] {
        let e = run(&ThreadPool::new(t));
        let matches = e.to_bits() == base.to_bits();
        println!("IS estimate @ {t} threads: {e:.6e}  bits_match_serial={matches}");
        is_estimates.push(EstimateRecord {
            threads: t,
            estimate: e,
            bits_match_serial: matches,
        });
    }
    assert!(
        is_estimates.iter().all(|r| r.bits_match_serial),
        "determinism contract violated: estimates differ across thread counts"
    );

    let out = BenchParallel {
        host_parallelism: host,
        parallel_threads: threads,
        note: "speedups are reported, not asserted; on a 1-core host the \
               parallel lane ties or loses while remaining bitwise identical",
        matmul,
        oracle_batch,
        is_estimates,
    };
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/BENCH_parallel.json",
        serde_json::to_string_pretty(&out).expect("serializable"),
    )
    .expect("write results/BENCH_parallel.json");
    println!("\nwrote results/BENCH_parallel.json");
}
