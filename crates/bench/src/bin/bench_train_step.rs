//! Steady-state NOFIS training-step throughput across the tape memory
//! model matrix: pooled/unpooled tape × frozen-gradient pruning on/off ×
//! 1/4 worker threads, with the buffer pool's miss counter doubling as an
//! allocations-per-step meter.
//!
//! ```text
//! bench_train_step [--smoke]
//! bench_train_step --assert-telemetry-overhead [--smoke]
//! bench_train_step --assert-checkpoint-overhead [--smoke]
//! ```
//!
//! `--assert-telemetry-overhead` runs an A/B pair in-process: the same
//! steady-state training step with and without the per-step telemetry site
//! that `nofis_core`'s training loop executes (telemetry disabled in both
//! lanes — the site then costs one relaxed atomic load). It asserts the
//! disabled instrumentation adds under 1% to the step time.
//!
//! Because the process-wide thread pool is sized exactly once (see
//! `nofis_parallel::global`), the thread axis is driven by re-executing
//! this binary as a subprocess worker with `NOFIS_THREADS` pinned per
//! child; each worker times one variant and prints a single JSON record on
//! stdout. The parent aggregates the matrix into
//! `results/BENCH_train_step.json`.
//!
//! Speedups of the new hot path (pooled + pruned + fused) over the seed
//! path (fresh unfused tape per step, no pruning, clone-per-step Adam
//! input) are *reported*; the bitwise contracts behind them are asserted
//! in `tests/frozen_prune_equivalence.rs`, `tests/golden_flows.rs`, and
//! `tests/alloc_regression.rs`.

use nofis_autograd::{Graph, ParamStore};
use nofis_flows::RealNvp;
use nofis_nn::Adam;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// One (config, variant, thread-count) cell of the matrix, as emitted by
/// a worker.
#[derive(Serialize, Clone)]
struct CellRecord {
    config: String,
    variant: String,
    pooled: bool,
    pruned: bool,
    fused: bool,
    threads: usize,
    ns_per_step: f64,
    steps_timed: u64,
    /// Pool misses per step over the timed window — the heap allocations
    /// the tape itself performed. 0.0 means fully recycled.
    pool_allocs_per_step: f64,
    pool_hits_per_step: f64,
    final_loss: f64,
}

#[derive(Serialize)]
struct BenchTrainStep {
    host_parallelism: usize,
    smoke: bool,
    configs: Vec<StepConfig>,
    note: &'static str,
    cells: Vec<CellRecord>,
    /// ns_per_step(seed) / ns_per_step(pooled+pruned+fused), per config
    /// and thread count.
    speedup_full_vs_seed: Vec<SpeedupRecord>,
}

#[derive(Serialize)]
struct SpeedupRecord {
    config: &'static str,
    threads: usize,
    seed_ns_per_step: f64,
    full_ns_per_step: f64,
    speedup: f64,
}

/// A benchmarked step shape: a stage-3 NOFIS training step (frozen
/// two-stage prefix, trainable final stage) on a RealNVP flow.
#[derive(Serialize, Clone, Copy)]
struct StepConfig {
    name: &'static str,
    dim: usize,
    layers: usize,
    frozen_layers: usize,
    hidden: usize,
    batch: usize,
}

/// Two regimes of the same 3-stage frozen-prefix step. `stage3_small`
/// (two layers per stage, narrow nets, minibatch 32) is allocation-bound:
/// tape bookkeeping is a large share of the step and pooling + pruning +
/// fusion shine. `stage3_default` (the `NofisConfig` defaults: eight
/// layers per stage, hidden 32, minibatch 64) is matmul-bound, so the
/// same changes buy less — both are reported so the speedup is not an
/// artifact of one regime.
const CONFIGS: [StepConfig; 2] = [
    StepConfig {
        name: "stage3_small",
        dim: 4,
        layers: 6,
        frozen_layers: 4,
        hidden: 16,
        batch: 32,
    },
    StepConfig {
        name: "stage3_default",
        dim: 8,
        layers: 24,
        frozen_layers: 16,
        hidden: 32,
        batch: 64,
    },
];

/// The full (pooled, pruned, fused) matrix. `seed` is the exact
/// pre-optimization program (fresh tape per step, composed ops, grads
/// cloned out for Adam); `pooled_pruned_fused` is the new hot path.
const VARIANTS: [(&str, bool, bool, bool); 8] = [
    ("seed", false, false, false),
    ("seed_fused", false, false, true),
    ("seed_pruned", false, true, false),
    ("seed_pruned_fused", false, true, true),
    ("pooled", true, false, false),
    ("pooled_fused", true, false, true),
    ("pooled_pruned", true, true, false),
    ("pooled_pruned_fused", true, true, true),
];

fn lcg_fill(buf: &mut [f64], seed: u64) {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    for v in buf.iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
    }
}

fn build(cfg: StepConfig) -> (ParamStore, RealNvp, Adam) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(97);
    let flow = RealNvp::new(&mut store, cfg.dim, cfg.layers, cfg.hidden, 2.0, &mut rng);
    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    for id in ids {
        for v in store.get_mut(id).as_mut_slice() {
            *v += rng.gen_range(-0.2..0.2);
        }
    }
    for id in flow.param_ids_for_layers(0..cfg.frozen_layers) {
        store.set_frozen(id, true);
    }
    let opt = Adam::new(1e-3).with_max_grad_norm(Some(5.0));
    (store, flow, opt)
}

/// One NOFIS-shaped training step on an already prepared graph: tempered
/// oracle term, base log-density term, log-det term, backward, Adam.
fn run_step(
    g: &mut Graph,
    store: &mut ParamStore,
    flow: &RealNvp,
    opt: &mut Adam,
    cfg: StepConfig,
    pooled: bool,
    seed: u64,
) -> f64 {
    let x = g.constant_with(cfg.batch, cfg.dim, |buf| lcg_fill(buf, seed));
    let (z, logdet) = flow.forward_graph(store, g, x, cfg.layers);
    let gvals = g.external_rowwise(z, |row| {
        let mut grad = vec![0.0; row.len()];
        grad[0] = -1.0;
        (1.0 - row[0], grad)
    });
    let tempered = g.min_scalar(gvals, 0.0);
    let sq = g.square(z);
    let ssq = g.sum_cols(sq);
    let half = g.scale(ssq, -0.5);
    let a = g.add(logdet, tempered);
    let per_sample = g.add(a, half);
    let mean = g.mean_all(per_sample);
    let loss = g.neg(mean);
    g.backward(loss);
    if pooled {
        opt.step_fused(store, g);
    } else {
        opt.step(store, &g.param_grads());
    }
    g.value(loss).item()
}

/// The per-step telemetry site of `nofis_core`'s training loop, replicated
/// field-for-field so the overhead lane pays exactly what production steps
/// pay when telemetry is disabled (one relaxed atomic load in
/// `enabled()`).
#[inline(never)]
fn telemetry_step_site(stage: usize, epoch: usize, n: usize, loss: f64, grad_norm: Option<f64>) {
    use nofis_telemetry as tele;
    if tele::enabled(tele::Level::Trace) {
        let mut step = tele::event(tele::Level::Trace, "train.step")
            .field("stage", stage)
            .field("epoch", epoch)
            .field("n", n)
            .field("loss", loss);
        if let Some(norm) = grad_norm {
            step = step.field("grad_norm", norm);
        }
        step.emit();
    }
}

/// Checks that disabled telemetry adds under 1% to the steady-state step.
///
/// A whole-step A/B comparison cannot resolve this: the true cost is a
/// relaxed atomic load (~1 ns) against a ~10⁵ ns step, far below a shared
/// host's run-to-run timing noise (observed at ±3–5%). Instead each factor
/// is measured where it is measurable: the step time from timed step
/// windows, the disabled-site cost from a tight loop over millions of
/// invocations of the *exact* replicated site — then the ratio is
/// asserted. A generous `SITES_PER_STEP` multiplier covers every disabled
/// `enabled()` check a production step can reach (the `train.step` site
/// plus budget/epoch/stage sites amortized over the minibatch loop).
fn assert_telemetry_overhead(smoke: bool) {
    assert!(
        !nofis_telemetry::enabled(nofis_telemetry::Level::Error),
        "telemetry must be disabled for the overhead check"
    );
    const SITES_PER_STEP: f64 = 16.0;
    let cfg = CONFIGS[0];
    let (mut store, flow, mut opt) = build(cfg);
    let mut g = Graph::new();
    g.set_fusion(true);
    g.set_pruning(true);
    let mut next_seed = 0u64;
    let mut step = |g: &mut Graph, seed: u64| {
        g.reset();
        run_step(g, &mut store, &flow, &mut opt, cfg, true, seed)
    };
    for _ in 0..16 {
        assert!(step(&mut g, next_seed).is_finite());
        next_seed += 1;
    }

    // Step time: adaptive window length, minimum of three windows (the
    // allocation-bound `stage3_small` shape — the cheapest step, so the
    // worst case for *relative* site overhead).
    let min_ms = if smoke { 30 } else { 150 };
    let mut steps = 16u64;
    let step_window = loop {
        let t = Instant::now();
        for _ in 0..steps {
            step(&mut g, next_seed);
            next_seed += 1;
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= min_ms || steps >= 1 << 20 {
            break elapsed;
        }
        steps *= 2;
    };
    let mut best_step = step_window;
    for _ in 0..2 {
        let t = Instant::now();
        for _ in 0..steps {
            step(&mut g, next_seed);
            next_seed += 1;
        }
        best_step = best_step.min(t.elapsed());
    }
    let step_ns = best_step.as_nanos() as f64 / steps as f64;

    // Disabled-site cost: tight loop, black_box keeps the inputs and the
    // call alive. Minimum of three windows.
    let site_iters: u64 = if smoke { 2_000_000 } else { 10_000_000 };
    let mut best_site = std::time::Duration::MAX;
    let mut loss = 0.5f64;
    for _ in 0..3 {
        let t = Instant::now();
        for i in 0..site_iters {
            loss = std::hint::black_box(loss) + 1e-12;
            telemetry_step_site(
                3,
                std::hint::black_box(i as usize),
                cfg.batch,
                loss,
                Some(5.0),
            );
        }
        best_site = best_site.min(t.elapsed());
    }
    std::hint::black_box(loss);
    let site_ns = best_site.as_nanos() as f64 / site_iters as f64;

    let overhead = SITES_PER_STEP * site_ns / step_ns;
    println!(
        "telemetry overhead (disabled): {step_ns:.0} ns/step, {site_ns:.2} ns/site \
         x {SITES_PER_STEP} sites/step = {:+.4}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.01,
        "disabled telemetry sites add {:.4}% (>1%) to the training step",
        overhead * 100.0
    );
    println!("OK: disabled telemetry adds <1% to bench_train_step");
}

/// The per-step checkpoint site of `nofis_core`'s training loop with
/// checkpointing *disabled* (`NofisConfig::checkpoint == None`), replicated
/// shape-for-shape: one `Option` discriminant check per optimizer step,
/// plus the `due()` modulo when a checkpointer exists. The disabled lane —
/// the one the <1% contract covers — takes only the `None` branch.
#[inline(never)]
fn checkpoint_step_site(every_steps: &mut Option<u64>, global_step: u64) -> bool {
    if let Some(every) = every_steps.as_mut() {
        global_step % *every == 0
    } else {
        false
    }
}

/// Checks that disabled checkpointing adds under 1% to the steady-state
/// training step, with the same measure-each-factor-where-it-is-measurable
/// methodology as [`assert_telemetry_overhead`]: the step time from timed
/// step windows, the disabled-site cost from a tight loop over the exact
/// replicated site, then the asserted ratio. `SITES_PER_STEP` is generous
/// — the production loop runs ONE due-check per optimizer step.
fn assert_checkpoint_overhead(smoke: bool) {
    const SITES_PER_STEP: f64 = 4.0;
    let cfg = CONFIGS[0];
    let (mut store, flow, mut opt) = build(cfg);
    let mut g = Graph::new();
    g.set_fusion(true);
    g.set_pruning(true);
    let mut next_seed = 0u64;
    let mut step = |g: &mut Graph, seed: u64| {
        g.reset();
        run_step(g, &mut store, &flow, &mut opt, cfg, true, seed)
    };
    for _ in 0..16 {
        assert!(step(&mut g, next_seed).is_finite());
        next_seed += 1;
    }

    let min_ms = if smoke { 30 } else { 150 };
    let mut steps = 16u64;
    let step_window = loop {
        let t = Instant::now();
        for _ in 0..steps {
            step(&mut g, next_seed);
            next_seed += 1;
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= min_ms || steps >= 1 << 20 {
            break elapsed;
        }
        steps *= 2;
    };
    let mut best_step = step_window;
    for _ in 0..2 {
        let t = Instant::now();
        for _ in 0..steps {
            step(&mut g, next_seed);
            next_seed += 1;
        }
        best_step = best_step.min(t.elapsed());
    }
    let step_ns = best_step.as_nanos() as f64 / steps as f64;

    let site_iters: u64 = if smoke { 2_000_000 } else { 10_000_000 };
    let mut best_site = std::time::Duration::MAX;
    let mut due = 0u64;
    for _ in 0..3 {
        let mut disabled: Option<u64> = None;
        let t = Instant::now();
        for i in 0..site_iters {
            let cp = std::hint::black_box(&mut disabled);
            if checkpoint_step_site(cp, std::hint::black_box(i)) {
                due += 1;
            }
        }
        best_site = best_site.min(t.elapsed());
    }
    std::hint::black_box(due);
    let site_ns = best_site.as_nanos() as f64 / site_iters as f64;

    let overhead = SITES_PER_STEP * site_ns / step_ns;
    println!(
        "checkpoint overhead (disabled): {step_ns:.0} ns/step, {site_ns:.2} ns/site \
         x {SITES_PER_STEP} sites/step = {:+.4}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.01,
        "disabled checkpoint sites add {:.4}% (>1%) to the training step",
        overhead * 100.0
    );
    println!("OK: disabled checkpointing adds <1% to bench_train_step");
}

/// Times one (config, variant) cell in-process and prints its record. The
/// global thread pool must already be pinned (via `NOFIS_THREADS`) by the
/// parent.
fn worker(variant: &str, config: &str, smoke: bool) {
    let (_, pooled, pruned, fused) = *VARIANTS
        .iter()
        .find(|(name, ..)| *name == variant)
        .unwrap_or_else(|| panic!("unknown variant {variant}"));
    let cfg = *CONFIGS
        .iter()
        .find(|c| c.name == config)
        .unwrap_or_else(|| panic!("unknown config {config}"));
    let threads = nofis_parallel::global().threads();
    let (mut store, flow, mut opt) = build(cfg);

    // Persistent graph for the pooled lanes; the seed lanes rebuild it
    // from scratch every step, exactly like the pre-optimization loop.
    let mut persistent = Graph::new();
    persistent.set_fusion(fused);
    persistent.set_pruning(pruned);
    let mut step = |g: &mut Graph, s: u64| -> f64 {
        if pooled {
            g.reset();
            run_step(g, &mut store, &flow, &mut opt, cfg, true, s)
        } else {
            let mut fresh = Graph::new();
            fresh.set_fusion(fused);
            fresh.set_pruning(pruned);
            run_step(&mut fresh, &mut store, &flow, &mut opt, cfg, false, s)
        }
    };

    let warmup = if smoke { 2 } else { 5 };
    for s in 0..warmup {
        assert!(step(&mut persistent, s).is_finite());
    }
    let stats0 = persistent.pool_stats();

    // Adaptive window: double the step count until the timed region is
    // long enough that a step is not measured at timer resolution, then
    // repeat the window three times and keep the fastest — the minimum is
    // the standard noise-robust estimate on a shared host.
    let min_ms = if smoke { 20 } else { 150 };
    let mut steps = 4u64;
    let mut last_loss = 0.0;
    let mut next_seed = warmup;
    let mut window = |steps: u64, next_seed: &mut u64| -> std::time::Duration {
        let t = Instant::now();
        for _ in 0..steps {
            last_loss = step(&mut persistent, *next_seed);
            *next_seed += 1;
        }
        t.elapsed()
    };
    let (first, timed) = loop {
        let elapsed = window(steps, &mut next_seed);
        if elapsed.as_millis() >= min_ms || steps >= 1 << 20 {
            break (elapsed, steps);
        }
        steps *= 2;
    };
    let mut best = first;
    for _ in 0..2 {
        best = best.min(window(timed, &mut next_seed));
    }
    let stats1 = persistent.pool_stats();
    let total_steps = next_seed - warmup;

    let rec = CellRecord {
        config: config.to_string(),
        variant: variant.to_string(),
        pooled,
        pruned,
        fused,
        threads,
        ns_per_step: best.as_nanos() as f64 / timed as f64,
        steps_timed: timed,
        // The unpooled lanes never touch the persistent pool, so their
        // tape allocations are counted as (nodes' buffers) via the fresh
        // graphs' own pools — report those instead.
        pool_allocs_per_step: (stats1.misses - stats0.misses) as f64 / total_steps as f64,
        pool_hits_per_step: (stats1.hits - stats0.hits) as f64 / total_steps as f64,
        final_loss: last_loss,
    };
    // The vendored serde is serialize-only, so the worker→parent channel
    // is a whitespace-delimited line rather than JSON.
    println!(
        "CELL {} {} {} {} {} {} {} {} {} {} {}",
        rec.config,
        rec.variant,
        rec.pooled,
        rec.pruned,
        rec.fused,
        rec.threads,
        rec.ns_per_step,
        rec.steps_timed,
        rec.pool_allocs_per_step,
        rec.pool_hits_per_step,
        rec.final_loss
    );
}

/// Re-executes this binary as a worker with `NOFIS_THREADS` pinned, and
/// parses the `CELL ...` record line it prints.
fn spawn_worker(variant: &str, config: &str, threads: usize, smoke: bool) -> CellRecord {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--worker").arg(variant).arg("--config").arg(config);
    if smoke {
        cmd.arg("--smoke");
    }
    cmd.env("NOFIS_THREADS", threads.to_string());
    let out = cmd.output().expect("spawn bench worker");
    assert!(
        out.status.success(),
        "worker {variant}/{config}@{threads} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 worker output");
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with("CELL "))
        .expect("worker emitted no CELL record");
    let f: Vec<&str> = line.split_whitespace().collect();
    assert_eq!(f.len(), 12, "malformed worker record: {line}");
    CellRecord {
        config: f[1].to_string(),
        variant: f[2].to_string(),
        pooled: f[3].parse().expect("pooled"),
        pruned: f[4].parse().expect("pruned"),
        fused: f[5].parse().expect("fused"),
        threads: f[6].parse().expect("threads"),
        ns_per_step: f[7].parse().expect("ns_per_step"),
        steps_timed: f[8].parse().expect("steps_timed"),
        pool_allocs_per_step: f[9].parse().expect("allocs"),
        pool_hits_per_step: f[10].parse().expect("hits"),
        final_loss: f[11].parse().expect("loss"),
    }
}

fn main() {
    let mut smoke = false;
    let mut overhead_check = false;
    let mut ckpt_overhead_check = false;
    let mut worker_variant: Option<String> = None;
    let mut worker_config: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--assert-telemetry-overhead" => overhead_check = true,
            "--assert-checkpoint-overhead" => ckpt_overhead_check = true,
            "--worker" => worker_variant = Some(args.next().expect("--worker VARIANT")),
            "--config" => worker_config = Some(args.next().expect("--config NAME")),
            other => panic!("unknown argument {other}"),
        }
    }
    if overhead_check {
        assert_telemetry_overhead(smoke);
        return;
    }
    if ckpt_overhead_check {
        assert_checkpoint_overhead(smoke);
        return;
    }
    if let Some(variant) = worker_variant {
        let config = worker_config.as_deref().unwrap_or(CONFIGS[0].name);
        worker(&variant, config, smoke);
        return;
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Smoke mode: one config, shortest windows — a CI liveness check for
    // the whole worker/aggregation machinery, not a measurement.
    let configs: &[StepConfig] = if smoke { &CONFIGS[..1] } else { &CONFIGS };
    let mut cells = Vec::new();
    for cfg in configs {
        println!(
            "config {}: dim {} layers {} (frozen {}) hidden {} batch {}",
            cfg.name, cfg.dim, cfg.layers, cfg.frozen_layers, cfg.hidden, cfg.batch
        );
        for threads in [1usize, 4] {
            for (variant, ..) in VARIANTS {
                let rec = spawn_worker(variant, cfg.name, threads, smoke);
                println!(
                    "{:>20} @ {threads} threads: {:>10.0} ns/step  \
                     {:>6.1} pool allocs/step  {:>8.1} pool hits/step",
                    rec.variant, rec.ns_per_step, rec.pool_allocs_per_step, rec.pool_hits_per_step
                );
                cells.push(rec);
            }
        }
    }

    let mut speedup_full_vs_seed = Vec::new();
    for cfg in configs {
        for threads in [1usize, 4] {
            let find = |name: &str| {
                cells
                    .iter()
                    .find(|c| c.config == cfg.name && c.variant == name && c.threads == threads)
                    .expect("matrix cell")
            };
            let seed = find("seed");
            let full = find("pooled_pruned_fused");
            let rec = SpeedupRecord {
                config: cfg.name,
                threads,
                seed_ns_per_step: seed.ns_per_step,
                full_ns_per_step: full.ns_per_step,
                speedup: seed.ns_per_step / full.ns_per_step,
            };
            println!(
                "speedup pooled+pruned+fused vs seed [{}] @ {threads} threads: {:.2}x",
                cfg.name, rec.speedup
            );
            speedup_full_vs_seed.push(rec);
        }
    }

    let out = BenchTrainStep {
        host_parallelism: host,
        smoke,
        configs: configs.to_vec(),
        note: "allocs/step counts BufferPool misses over the timed window; \
               unpooled lanes build a fresh tape per step so their pool \
               column stays at zero by construction — their allocations \
               show up as time, not as pool traffic. ns/step is the \
               fastest of three timed windows (noise-robust minimum)",
        cells,
        speedup_full_vs_seed,
    };
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/BENCH_train_step.json",
        serde_json::to_string_pretty(&out).expect("serializable"),
    )
    .expect("write results/BENCH_train_step.json");
    println!("\nwrote results/BENCH_train_step.json");
}
