//! Steady-state NOFIS training-step throughput across the tape memory
//! model matrix: pooled/unpooled tape × frozen-gradient pruning on/off ×
//! 1/4 worker threads, plus the trace-once/replay compiled-tape engine,
//! with buffer-pool miss counters doubling as an allocations-per-step
//! meter.
//!
//! ```text
//! bench_train_step [--smoke]
//! bench_train_step --assert-telemetry-overhead [--smoke]
//! bench_train_step --assert-checkpoint-overhead [--smoke]
//! bench_train_step --assert-compile-overhead [--smoke]
//! bench_train_step --assert-compiled-speedup [--smoke]
//! ```
//!
//! `--assert-telemetry-overhead` runs an A/B pair in-process: the same
//! steady-state training step with and without the per-step telemetry site
//! that `nofis_core`'s training loop executes (telemetry disabled in both
//! lanes — the site then costs one relaxed atomic load). It asserts the
//! disabled instrumentation adds under 1% to the step time.
//!
//! `--assert-compile-overhead` times the one-off `CompiledStep::compile`
//! lowering against the per-step savings of replaying instead of
//! re-tracing, and asserts the compile cost amortizes in under 50 steps
//! (plus that steady-state replays are allocation-free).
//! `--assert-compiled-speedup` is the CI guard on the tentpole: the
//! compiled default-config (`stage3_default`) step must be at least 1.5x
//! faster than the interpreted pooled+pruned+fused path.
//!
//! Because the process-wide thread pool is sized exactly once (see
//! `nofis_parallel::global`), the thread axis is driven by re-executing
//! this binary as a subprocess worker with `NOFIS_THREADS` pinned per
//! child; each worker times one variant and prints a single JSON record on
//! stdout. The parent aggregates the matrix into
//! `results/BENCH_train_step.json`.
//!
//! Speedups of the hot paths over the seed path (fresh unfused tape per
//! step, no pruning, clone-per-step Adam input) are *reported*; the
//! bitwise contracts behind them are asserted in
//! `tests/frozen_prune_equivalence.rs`, `tests/golden_flows.rs`,
//! `tests/alloc_regression.rs`, and `tests/compiled_equivalence.rs`.

use nofis_autograd::{CompiledStep, Graph, ParamStore, PoolStats, Var};
use nofis_flows::RealNvp;
use nofis_nn::Adam;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// One (config, variant, thread-count) cell of the matrix, as emitted by
/// a worker.
#[derive(Serialize, Clone)]
struct CellRecord {
    config: String,
    variant: String,
    pooled: bool,
    pruned: bool,
    fused: bool,
    compiled: bool,
    /// Ran with `NOFIS_REFERENCE_MATH=1`: libm tanh + scalar reference
    /// matmul kernels — the numeric stack as it was before the compiled
    /// engine landed (the honest A/B baseline for the tentpole metric).
    reference: bool,
    threads: usize,
    ns_per_step: f64,
    steps_timed: u64,
    /// Pool misses per step over the timed window — the heap allocations
    /// the tape itself performed. 0.0 means fully recycled. For the
    /// compiled lane this meters the replay engine's backward scratch
    /// pool (its value/grad buffers are preplanned and never reallocated).
    pool_allocs_per_step: f64,
    pool_hits_per_step: f64,
    final_loss: f64,
}

#[derive(Serialize)]
struct BenchTrainStep {
    host_parallelism: usize,
    smoke: bool,
    configs: Vec<StepConfig>,
    note: &'static str,
    cells: Vec<CellRecord>,
    /// ns_per_step(seed) / ns_per_step(pooled+pruned+fused), per config
    /// and thread count.
    speedup_full_vs_seed: Vec<SpeedupRecord>,
    /// ns_per_step(pooled+pruned+fused) / ns_per_step(compiled), per
    /// config and thread count, **same math in both lanes** — what tape
    /// elimination alone buys (honesty row: close to 1.0x on matmul-bound
    /// configs).
    speedup_compiled_vs_fused: Vec<CompiledSpeedupRecord>,
    /// ns_per_step(fused_pr3) / ns_per_step(compiled), per config and
    /// thread count — the tentpole's acceptance metric. `fused_pr3` runs
    /// the interpreted fused path under `NOFIS_REFERENCE_MATH=1` (libm
    /// tanh, scalar kernels, transpose-composed backward): the hot path
    /// exactly as the previous PR shipped it. Here `fused_ns_per_step`
    /// is that reconstructed lane's time.
    speedup_compiled_vs_pr3_fused: Vec<CompiledSpeedupRecord>,
}

#[derive(Serialize)]
struct SpeedupRecord {
    config: &'static str,
    threads: usize,
    seed_ns_per_step: f64,
    full_ns_per_step: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct CompiledSpeedupRecord {
    config: &'static str,
    threads: usize,
    fused_ns_per_step: f64,
    compiled_ns_per_step: f64,
    speedup: f64,
}

/// A benchmarked step shape: a stage-3 NOFIS training step (frozen
/// two-stage prefix, trainable final stage) on a RealNVP flow.
#[derive(Serialize, Clone, Copy)]
struct StepConfig {
    name: &'static str,
    dim: usize,
    layers: usize,
    frozen_layers: usize,
    hidden: usize,
    batch: usize,
}

/// Two regimes of the same 3-stage frozen-prefix step. `stage3_small`
/// (two layers per stage, narrow nets, minibatch 32) is allocation-bound:
/// tape bookkeeping is a large share of the step and pooling + pruning +
/// fusion shine. `stage3_default` (the `NofisConfig` defaults: eight
/// layers per stage, hidden 32, minibatch 64) is matmul-bound, so the
/// same changes buy less — both are reported so the speedup is not an
/// artifact of one regime.
const CONFIGS: [StepConfig; 2] = [
    StepConfig {
        name: "stage3_small",
        dim: 4,
        layers: 6,
        frozen_layers: 4,
        hidden: 16,
        batch: 32,
    },
    StepConfig {
        name: "stage3_default",
        dim: 8,
        layers: 24,
        frozen_layers: 16,
        hidden: 32,
        batch: 64,
    },
];

/// The full (pooled, pruned, fused, compiled, reference) matrix. `seed`
/// is the exact pre-optimization program (fresh tape per step, composed
/// ops, grads cloned out for Adam); `pooled_pruned_fused` is the
/// interpreted hot path on the current math stack (fast tanh + blocked
/// SIMD kernels, shared with `compiled`, so that pair isolates what tape
/// elimination alone buys); `compiled` is the trace-once/replay engine;
/// `fused_pr3` is the interpreted hot path under
/// `NOFIS_REFERENCE_MATH=1` — libm tanh + scalar kernels, i.e. the hot
/// path exactly as the previous PR shipped it, reconstructed as the
/// baseline for the compiled engine's acceptance metric.
const VARIANTS: [(&str, bool, bool, bool, bool, bool); 10] = [
    ("seed", false, false, false, false, false),
    ("seed_fused", false, false, true, false, false),
    ("seed_pruned", false, true, false, false, false),
    ("seed_pruned_fused", false, true, true, false, false),
    ("pooled", true, false, false, false, false),
    ("pooled_fused", true, false, true, false, false),
    ("pooled_pruned", true, true, false, false, false),
    ("pooled_pruned_fused", true, true, true, false, false),
    ("fused_pr3", true, true, true, false, true),
    ("compiled", true, true, true, true, false),
];

fn lcg_fill(buf: &mut [f64], seed: u64) {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    for v in buf.iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
    }
}

fn build(cfg: StepConfig) -> (ParamStore, RealNvp, Adam) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(97);
    let flow = RealNvp::new(&mut store, cfg.dim, cfg.layers, cfg.hidden, 2.0, &mut rng);
    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    for id in ids {
        for v in store.get_mut(id).as_mut_slice() {
            *v += rng.gen_range(-0.2..0.2);
        }
    }
    for id in flow.param_ids_for_layers(0..cfg.frozen_layers) {
        store.set_frozen(id, true);
    }
    let opt = Adam::new(1e-3).with_max_grad_norm(Some(5.0));
    (store, flow, opt)
}

/// The benchmark's stand-in oracle: a linear limit-state with an exact
/// gradient, shared verbatim between the interpreted trace and the
/// compiled replay so both lanes run the same math.
fn oracle(row: &[f64]) -> (f64, Vec<f64>) {
    let mut grad = vec![0.0; row.len()];
    grad[0] = -1.0;
    (1.0 - row[0], grad)
}

/// Builds the NOFIS-shaped loss tape on `g` — tempered oracle term, base
/// log-density term, log-det term — and returns the batch leaf and the
/// scalar loss (no backward).
fn trace_loss(
    g: &mut Graph,
    store: &ParamStore,
    flow: &RealNvp,
    cfg: StepConfig,
    seed: u64,
) -> (Var, Var) {
    let x = g.constant_with(cfg.batch, cfg.dim, |buf| lcg_fill(buf, seed));
    let (z, logdet) = flow.forward_graph(store, g, x, cfg.layers);
    let gvals = g.external_rowwise(z, oracle);
    let tempered = g.min_scalar(gvals, 0.0);
    let sq = g.square(z);
    let ssq = g.sum_cols(sq);
    let half = g.scale(ssq, -0.5);
    let a = g.add(logdet, tempered);
    let per_sample = g.add(a, half);
    let mean = g.mean_all(per_sample);
    let loss = g.neg(mean);
    (x, loss)
}

/// One NOFIS-shaped training step on an already prepared graph: tempered
/// oracle term, base log-density term, log-det term, backward, Adam.
fn run_step(
    g: &mut Graph,
    store: &mut ParamStore,
    flow: &RealNvp,
    opt: &mut Adam,
    cfg: StepConfig,
    pooled: bool,
    seed: u64,
) -> f64 {
    let (_x, loss) = trace_loss(g, store, flow, cfg, seed);
    g.backward(loss);
    if pooled {
        opt.step_fused(store, g);
    } else {
        opt.step(store, &g.param_grads());
    }
    g.value(loss).item()
}

/// Steady-state numbers from one timed lane.
struct Timing {
    ns_per_step: f64,
    steps_timed: u64,
    allocs_per_step: f64,
    hits_per_step: f64,
    last_loss: f64,
}

/// The shared timing harness: warm up, grow the timed window until it
/// clears the timer-resolution floor, keep the fastest of three windows
/// (the noise-robust minimum on a shared host), and meter pool traffic
/// over the timed region only (warmup allocations — first-touch pool
/// misses — are excluded). `step` runs one training step for the given
/// seed and reports the lane's cumulative pool counters.
fn measure(smoke: bool, mut step: impl FnMut(u64) -> (f64, PoolStats)) -> Timing {
    let warmup = if smoke { 2 } else { 5 };
    let mut stats0 = PoolStats::default();
    let mut last_loss = 0.0;
    for s in 0..warmup {
        let (loss, stats) = step(s);
        assert!(loss.is_finite(), "non-finite warmup loss");
        stats0 = stats;
        last_loss = loss;
    }
    let min_ms = if smoke { 20 } else { 150 };
    let mut steps = 4u64;
    let mut next_seed = warmup;
    let mut stats1 = stats0;
    let mut window = |steps: u64, next_seed: &mut u64| -> std::time::Duration {
        let t = Instant::now();
        for _ in 0..steps {
            let (loss, stats) = step(*next_seed);
            last_loss = loss;
            stats1 = stats;
            *next_seed += 1;
        }
        t.elapsed()
    };
    let (first, timed) = loop {
        let elapsed = window(steps, &mut next_seed);
        if elapsed.as_millis() >= min_ms || steps >= 1 << 20 {
            break (elapsed, steps);
        }
        steps *= 2;
    };
    let mut best = first;
    for _ in 0..2 {
        best = best.min(window(timed, &mut next_seed));
    }
    drop(window);
    let total_steps = next_seed - warmup;
    Timing {
        ns_per_step: best.as_nanos() as f64 / timed as f64,
        steps_timed: timed,
        allocs_per_step: (stats1.misses - stats0.misses) as f64 / total_steps as f64,
        hits_per_step: (stats1.hits - stats0.hits) as f64 / total_steps as f64,
        last_loss,
    }
}

/// The per-step telemetry site of `nofis_core`'s training loop, replicated
/// field-for-field so the overhead lane pays exactly what production steps
/// pay when telemetry is disabled (one relaxed atomic load in
/// `enabled()`).
#[inline(never)]
fn telemetry_step_site(stage: usize, epoch: usize, n: usize, loss: f64, grad_norm: Option<f64>) {
    use nofis_telemetry as tele;
    if tele::enabled(tele::Level::Trace) {
        let mut step = tele::event(tele::Level::Trace, "train.step")
            .field("stage", stage)
            .field("epoch", epoch)
            .field("n", n)
            .field("loss", loss);
        if let Some(norm) = grad_norm {
            step = step.field("grad_norm", norm);
        }
        step.emit();
    }
}

/// Checks that disabled telemetry adds under 1% to the steady-state step.
///
/// A whole-step A/B comparison cannot resolve this: the true cost is a
/// relaxed atomic load (~1 ns) against a ~10⁵ ns step, far below a shared
/// host's run-to-run timing noise (observed at ±3–5%). Instead each factor
/// is measured where it is measurable: the step time from timed step
/// windows, the disabled-site cost from a tight loop over millions of
/// invocations of the *exact* replicated site — then the ratio is
/// asserted. A generous `SITES_PER_STEP` multiplier covers every disabled
/// `enabled()` check a production step can reach (the `train.step` site
/// plus budget/epoch/stage sites amortized over the minibatch loop).
fn assert_telemetry_overhead(smoke: bool) {
    assert!(
        !nofis_telemetry::enabled(nofis_telemetry::Level::Error),
        "telemetry must be disabled for the overhead check"
    );
    const SITES_PER_STEP: f64 = 16.0;
    let cfg = CONFIGS[0];
    let (mut store, flow, mut opt) = build(cfg);
    let mut g = Graph::new();
    g.set_fusion(true);
    g.set_pruning(true);
    let mut next_seed = 0u64;
    let mut step = |g: &mut Graph, seed: u64| {
        g.reset();
        run_step(g, &mut store, &flow, &mut opt, cfg, true, seed)
    };
    for _ in 0..16 {
        assert!(step(&mut g, next_seed).is_finite());
        next_seed += 1;
    }

    // Step time: adaptive window length, minimum of three windows (the
    // allocation-bound `stage3_small` shape — the cheapest step, so the
    // worst case for *relative* site overhead).
    let min_ms = if smoke { 30 } else { 150 };
    let mut steps = 16u64;
    let step_window = loop {
        let t = Instant::now();
        for _ in 0..steps {
            step(&mut g, next_seed);
            next_seed += 1;
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= min_ms || steps >= 1 << 20 {
            break elapsed;
        }
        steps *= 2;
    };
    let mut best_step = step_window;
    for _ in 0..2 {
        let t = Instant::now();
        for _ in 0..steps {
            step(&mut g, next_seed);
            next_seed += 1;
        }
        best_step = best_step.min(t.elapsed());
    }
    let step_ns = best_step.as_nanos() as f64 / steps as f64;

    // Disabled-site cost: tight loop, black_box keeps the inputs and the
    // call alive. Minimum of three windows.
    let site_iters: u64 = if smoke { 2_000_000 } else { 10_000_000 };
    let mut best_site = std::time::Duration::MAX;
    let mut loss = 0.5f64;
    for _ in 0..3 {
        let t = Instant::now();
        for i in 0..site_iters {
            loss = std::hint::black_box(loss) + 1e-12;
            telemetry_step_site(
                3,
                std::hint::black_box(i as usize),
                cfg.batch,
                loss,
                Some(5.0),
            );
        }
        best_site = best_site.min(t.elapsed());
    }
    std::hint::black_box(loss);
    let site_ns = best_site.as_nanos() as f64 / site_iters as f64;

    let overhead = SITES_PER_STEP * site_ns / step_ns;
    println!(
        "telemetry overhead (disabled): {step_ns:.0} ns/step, {site_ns:.2} ns/site \
         x {SITES_PER_STEP} sites/step = {:+.4}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.01,
        "disabled telemetry sites add {:.4}% (>1%) to the training step",
        overhead * 100.0
    );
    println!("OK: disabled telemetry adds <1% to bench_train_step");
}

/// The per-step checkpoint site of `nofis_core`'s training loop with
/// checkpointing *disabled* (`NofisConfig::checkpoint == None`), replicated
/// shape-for-shape: one `Option` discriminant check per optimizer step,
/// plus the `due()` modulo when a checkpointer exists. The disabled lane —
/// the one the <1% contract covers — takes only the `None` branch.
#[inline(never)]
fn checkpoint_step_site(every_steps: &mut Option<u64>, global_step: u64) -> bool {
    if let Some(every) = every_steps.as_mut() {
        global_step % *every == 0
    } else {
        false
    }
}

/// Checks that disabled checkpointing adds under 1% to the steady-state
/// training step, with the same measure-each-factor-where-it-is-measurable
/// methodology as [`assert_telemetry_overhead`]: the step time from timed
/// step windows, the disabled-site cost from a tight loop over the exact
/// replicated site, then the asserted ratio. `SITES_PER_STEP` is generous
/// — the production loop runs ONE due-check per optimizer step.
fn assert_checkpoint_overhead(smoke: bool) {
    const SITES_PER_STEP: f64 = 4.0;
    let cfg = CONFIGS[0];
    let (mut store, flow, mut opt) = build(cfg);
    let mut g = Graph::new();
    g.set_fusion(true);
    g.set_pruning(true);
    let mut next_seed = 0u64;
    let mut step = |g: &mut Graph, seed: u64| {
        g.reset();
        run_step(g, &mut store, &flow, &mut opt, cfg, true, seed)
    };
    for _ in 0..16 {
        assert!(step(&mut g, next_seed).is_finite());
        next_seed += 1;
    }

    let min_ms = if smoke { 30 } else { 150 };
    let mut steps = 16u64;
    let step_window = loop {
        let t = Instant::now();
        for _ in 0..steps {
            step(&mut g, next_seed);
            next_seed += 1;
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= min_ms || steps >= 1 << 20 {
            break elapsed;
        }
        steps *= 2;
    };
    let mut best_step = step_window;
    for _ in 0..2 {
        let t = Instant::now();
        for _ in 0..steps {
            step(&mut g, next_seed);
            next_seed += 1;
        }
        best_step = best_step.min(t.elapsed());
    }
    let step_ns = best_step.as_nanos() as f64 / steps as f64;

    let site_iters: u64 = if smoke { 2_000_000 } else { 10_000_000 };
    let mut best_site = std::time::Duration::MAX;
    let mut due = 0u64;
    for _ in 0..3 {
        let mut disabled: Option<u64> = None;
        let t = Instant::now();
        for i in 0..site_iters {
            let cp = std::hint::black_box(&mut disabled);
            if checkpoint_step_site(cp, std::hint::black_box(i)) {
                due += 1;
            }
        }
        best_site = best_site.min(t.elapsed());
    }
    std::hint::black_box(due);
    let site_ns = best_site.as_nanos() as f64 / site_iters as f64;

    let overhead = SITES_PER_STEP * site_ns / step_ns;
    println!(
        "checkpoint overhead (disabled): {step_ns:.0} ns/step, {site_ns:.2} ns/site \
         x {SITES_PER_STEP} sites/step = {:+.4}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.01,
        "disabled checkpoint sites add {:.4}% (>1%) to the training step",
        overhead * 100.0
    );
    println!("OK: disabled checkpointing adds <1% to bench_train_step");
}

/// Checks the one-off trace+compile cost amortizes in under 50 steps on
/// the default config — the recompilation-trigger budget that makes
/// `compile_tape` safe to leave on by default (stage shapes live for
/// hundreds of steps; tail minibatches retrace interpreted).
///
/// The *extra* work the compiling step performs, on top of the
/// interpreted trace + backward it runs anyway (`nofis_core`'s train loop
/// compiles right after a normal interpreted step), is the
/// `CompiledStep::compile` lowering itself — so that is what is timed,
/// against the per-step savings of replaying instead of re-tracing. Also
/// asserts steady-state replays are allocation-free (the preplanned
/// buffer contract).
fn assert_compile_overhead(smoke: bool) {
    let cfg = CONFIGS[1]; // stage3_default: the deepest tape, worst-case compile cost
    let (mut store, flow, mut opt) = build(cfg);

    let mut g = Graph::new();
    g.set_fusion(true);
    g.set_pruning(true);
    let interp = measure(smoke, |s| {
        g.reset();
        let loss = run_step(&mut g, &mut store, &flow, &mut opt, cfg, true, s);
        (loss, g.pool_stats())
    });

    g.reset();
    let (x, loss) = trace_loss(&mut g, &store, &flow, cfg, 1 << 41);
    g.backward(loss);
    let reps = if smoke { 3 } else { 10 };
    let mut best_compile = std::time::Duration::MAX;
    let mut cs = CompiledStep::compile(&g, loss, Some(x), &store);
    for _ in 0..reps {
        let t = Instant::now();
        let fresh = CompiledStep::compile(&g, loss, Some(x), &store);
        best_compile = best_compile.min(t.elapsed());
        cs = fresh;
    }
    let compile_ns = best_compile.as_nanos() as f64;
    drop(g);

    let replay = measure(smoke, |s| {
        cs.replay_forward(
            &store,
            |buf| lcg_fill(buf, s),
            nofis_parallel::global(),
            oracle,
        );
        cs.backward();
        opt.step_fused(&mut store, &cs);
        (cs.value(loss).item(), cs.pool_stats())
    });
    assert_eq!(
        replay.allocs_per_step, 0.0,
        "steady-state compiled replay must be allocation-free"
    );

    let savings = interp.ns_per_step - replay.ns_per_step;
    assert!(
        savings > 0.0,
        "replay ({:.0} ns/step) is not faster than the interpreted step ({:.0} ns/step)",
        replay.ns_per_step,
        interp.ns_per_step
    );
    let amortize_steps = compile_ns / savings;
    println!(
        "compile cost {compile_ns:.0} ns; replay saves {savings:.0} ns/step \
         over interpreted ({:.0} vs {:.0}) -> amortized in {amortize_steps:.1} steps",
        interp.ns_per_step, replay.ns_per_step
    );
    assert!(
        amortize_steps < 50.0,
        "trace+compile takes {amortize_steps:.1} steps to amortize (>= 50)"
    );
    println!("OK: trace+compile amortizes in under 50 steps (and replays are allocation-free)");
}

/// The CI guard on the tentpole's acceptance criterion: the compiled
/// `stage3_default` step must be >= 1.5x faster than the interpreted
/// PR 3 fused path, reconstructed as the `fused_pr3` reference lane
/// (libm tanh + scalar kernels under `NOFIS_REFERENCE_MATH=1`).
///
/// Both lanes run as subprocess workers pinned to one thread — the
/// reference-math switch is read once per process, so the A/B *must* be
/// two processes — on the same host back to back, so machine noise
/// largely cancels and the ratio is what CI asserts on.
fn assert_compiled_speedup(smoke: bool) {
    let cfg = CONFIGS[1];
    assert_eq!(cfg.name, "stage3_default");

    let pr3 = spawn_worker("fused_pr3", cfg.name, 1, smoke);
    let compiled = spawn_worker("compiled", cfg.name, 1, smoke);

    let speedup = pr3.ns_per_step / compiled.ns_per_step;
    println!(
        "compiled replay vs PR 3 fused path [stage3_default @ 1 thread]: \
         {:.0} vs {:.0} ns/step = {speedup:.2}x",
        compiled.ns_per_step, pr3.ns_per_step
    );
    assert_eq!(
        compiled.pool_allocs_per_step, 0.0,
        "compiled lane must run at zero allocations per step"
    );
    assert!(
        speedup >= 1.5,
        "compiled default-config step is only {speedup:.2}x the PR 3 fused path (< 1.5x)"
    );
    println!("OK: compiled default-config step is >= 1.5x the PR 3 fused path");
}

/// Times one (config, variant) cell in-process and prints its record. The
/// global thread pool must already be pinned (via `NOFIS_THREADS`) by the
/// parent.
fn worker(variant: &str, config: &str, smoke: bool) {
    let (_, pooled, pruned, fused, compiled, reference) = *VARIANTS
        .iter()
        .find(|(name, ..)| *name == variant)
        .unwrap_or_else(|| panic!("unknown variant {variant}"));
    assert_eq!(
        nofis_parallel::math::reference_math(),
        reference,
        "worker {variant} must run with NOFIS_REFERENCE_MATH={}",
        if reference { "1" } else { "unset" }
    );
    let cfg = *CONFIGS
        .iter()
        .find(|c| c.name == config)
        .unwrap_or_else(|| panic!("unknown config {config}"));
    let threads = nofis_parallel::global().threads();
    let (mut store, flow, mut opt) = build(cfg);

    let timing = if compiled {
        // Trace once, compile once, then every step is a replay — exactly
        // the steady-state of `nofis_core`'s train loop with
        // `compile_tape` on (the default).
        let mut g = Graph::new();
        g.set_fusion(true);
        g.set_pruning(true);
        let (x, loss) = trace_loss(&mut g, &store, &flow, cfg, 1 << 40);
        g.backward(loss);
        let mut cs = CompiledStep::compile(&g, loss, Some(x), &store);
        drop(g);
        measure(smoke, |s| {
            cs.replay_forward(
                &store,
                |buf| lcg_fill(buf, s),
                nofis_parallel::global(),
                oracle,
            );
            cs.backward();
            opt.step_fused(&mut store, &cs);
            (cs.value(loss).item(), cs.pool_stats())
        })
    } else {
        // Persistent graph for the pooled lanes; the seed lanes rebuild it
        // from scratch every step, exactly like the pre-optimization loop.
        let mut persistent = Graph::new();
        persistent.set_fusion(fused);
        persistent.set_pruning(pruned);
        measure(smoke, |s| {
            let loss = if pooled {
                persistent.reset();
                run_step(&mut persistent, &mut store, &flow, &mut opt, cfg, true, s)
            } else {
                let mut fresh = Graph::new();
                fresh.set_fusion(fused);
                fresh.set_pruning(pruned);
                run_step(&mut fresh, &mut store, &flow, &mut opt, cfg, false, s)
            };
            // The unpooled lanes never touch the persistent pool, so their
            // tape allocations show up as time, not pool traffic.
            (loss, persistent.pool_stats())
        })
    };

    let rec = CellRecord {
        config: config.to_string(),
        variant: variant.to_string(),
        pooled,
        pruned,
        fused,
        compiled,
        reference,
        threads,
        ns_per_step: timing.ns_per_step,
        steps_timed: timing.steps_timed,
        pool_allocs_per_step: timing.allocs_per_step,
        pool_hits_per_step: timing.hits_per_step,
        final_loss: timing.last_loss,
    };
    // The vendored serde is serialize-only, so the worker→parent channel
    // is a whitespace-delimited line rather than JSON.
    println!(
        "CELL {} {} {} {} {} {} {} {} {} {} {} {} {}",
        rec.config,
        rec.variant,
        rec.pooled,
        rec.pruned,
        rec.fused,
        rec.compiled,
        rec.reference,
        rec.threads,
        rec.ns_per_step,
        rec.steps_timed,
        rec.pool_allocs_per_step,
        rec.pool_hits_per_step,
        rec.final_loss
    );
}

/// Re-executes this binary as a worker with `NOFIS_THREADS` pinned, and
/// parses the `CELL ...` record line it prints.
fn spawn_worker(variant: &str, config: &str, threads: usize, smoke: bool) -> CellRecord {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--worker").arg(variant).arg("--config").arg(config);
    if smoke {
        cmd.arg("--smoke");
    }
    cmd.env("NOFIS_THREADS", threads.to_string());
    // Reference-math lanes run under the once-read env switch; everyone
    // else must see it unset even if the parent environment carries it.
    let reference = VARIANTS
        .iter()
        .find(|(name, ..)| *name == variant)
        .map(|v| v.5)
        .unwrap_or(false);
    if reference {
        cmd.env("NOFIS_REFERENCE_MATH", "1");
    } else {
        cmd.env_remove("NOFIS_REFERENCE_MATH");
    }
    let out = cmd.output().expect("spawn bench worker");
    assert!(
        out.status.success(),
        "worker {variant}/{config}@{threads} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 worker output");
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with("CELL "))
        .expect("worker emitted no CELL record");
    let f: Vec<&str> = line.split_whitespace().collect();
    assert_eq!(f.len(), 14, "malformed worker record: {line}");
    CellRecord {
        config: f[1].to_string(),
        variant: f[2].to_string(),
        pooled: f[3].parse().expect("pooled"),
        pruned: f[4].parse().expect("pruned"),
        fused: f[5].parse().expect("fused"),
        compiled: f[6].parse().expect("compiled"),
        reference: f[7].parse().expect("reference"),
        threads: f[8].parse().expect("threads"),
        ns_per_step: f[9].parse().expect("ns_per_step"),
        steps_timed: f[10].parse().expect("steps_timed"),
        pool_allocs_per_step: f[11].parse().expect("allocs"),
        pool_hits_per_step: f[12].parse().expect("hits"),
        final_loss: f[13].parse().expect("loss"),
    }
}

fn main() {
    let mut smoke = false;
    let mut overhead_check = false;
    let mut ckpt_overhead_check = false;
    let mut compile_overhead_check = false;
    let mut compiled_speedup_check = false;
    let mut worker_variant: Option<String> = None;
    let mut worker_config: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--assert-telemetry-overhead" => overhead_check = true,
            "--assert-checkpoint-overhead" => ckpt_overhead_check = true,
            "--assert-compile-overhead" => compile_overhead_check = true,
            "--assert-compiled-speedup" => compiled_speedup_check = true,
            "--worker" => worker_variant = Some(args.next().expect("--worker VARIANT")),
            "--config" => worker_config = Some(args.next().expect("--config NAME")),
            other => panic!("unknown argument {other}"),
        }
    }
    if overhead_check {
        assert_telemetry_overhead(smoke);
        return;
    }
    if ckpt_overhead_check {
        assert_checkpoint_overhead(smoke);
        return;
    }
    if compile_overhead_check {
        assert_compile_overhead(smoke);
        return;
    }
    if compiled_speedup_check {
        assert_compiled_speedup(smoke);
        return;
    }
    if let Some(variant) = worker_variant {
        let config = worker_config.as_deref().unwrap_or(CONFIGS[0].name);
        worker(&variant, config, smoke);
        return;
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Smoke mode: one config, shortest windows — a CI liveness check for
    // the whole worker/aggregation machinery, not a measurement.
    let configs: &[StepConfig] = if smoke { &CONFIGS[..1] } else { &CONFIGS };
    let mut cells = Vec::new();
    for cfg in configs {
        println!(
            "config {}: dim {} layers {} (frozen {}) hidden {} batch {}",
            cfg.name, cfg.dim, cfg.layers, cfg.frozen_layers, cfg.hidden, cfg.batch
        );
        for threads in [1usize, 4] {
            for (variant, ..) in VARIANTS {
                let rec = spawn_worker(variant, cfg.name, threads, smoke);
                println!(
                    "{:>20} @ {threads} threads: {:>10.0} ns/step  \
                     {:>6.1} pool allocs/step  {:>8.1} pool hits/step",
                    rec.variant, rec.ns_per_step, rec.pool_allocs_per_step, rec.pool_hits_per_step
                );
                cells.push(rec);
            }
        }
    }

    let mut speedup_full_vs_seed = Vec::new();
    let mut speedup_compiled_vs_fused = Vec::new();
    let mut speedup_compiled_vs_pr3_fused = Vec::new();
    for cfg in configs {
        for threads in [1usize, 4] {
            let find = |name: &str| {
                cells
                    .iter()
                    .find(|c| c.config == cfg.name && c.variant == name && c.threads == threads)
                    .expect("matrix cell")
            };
            let seed = find("seed");
            let full = find("pooled_pruned_fused");
            let compiled = find("compiled");
            let rec = SpeedupRecord {
                config: cfg.name,
                threads,
                seed_ns_per_step: seed.ns_per_step,
                full_ns_per_step: full.ns_per_step,
                speedup: seed.ns_per_step / full.ns_per_step,
            };
            println!(
                "speedup pooled+pruned+fused vs seed [{}] @ {threads} threads: {:.2}x",
                cfg.name, rec.speedup
            );
            speedup_full_vs_seed.push(rec);
            let crec = CompiledSpeedupRecord {
                config: cfg.name,
                threads,
                fused_ns_per_step: full.ns_per_step,
                compiled_ns_per_step: compiled.ns_per_step,
                speedup: full.ns_per_step / compiled.ns_per_step,
            };
            println!(
                "speedup compiled vs pooled+pruned+fused [{}] @ {threads} threads: {:.2}x",
                cfg.name, crec.speedup
            );
            speedup_compiled_vs_fused.push(crec);
            let pr3 = find("fused_pr3");
            let prec = CompiledSpeedupRecord {
                config: cfg.name,
                threads,
                fused_ns_per_step: pr3.ns_per_step,
                compiled_ns_per_step: compiled.ns_per_step,
                speedup: pr3.ns_per_step / compiled.ns_per_step,
            };
            println!(
                "speedup compiled vs PR 3 fused path [{}] @ {threads} threads: {:.2}x",
                cfg.name, prec.speedup
            );
            speedup_compiled_vs_pr3_fused.push(prec);
        }
    }

    let out = BenchTrainStep {
        host_parallelism: host,
        smoke,
        configs: configs.to_vec(),
        note: "allocs/step counts BufferPool misses over the timed window; \
               unpooled lanes build a fresh tape per step so their pool \
               column stays at zero by construction — their allocations \
               show up as time, not as pool traffic. The compiled lane \
               meters its backward scratch pool (value/grad buffers are \
               preplanned and never reallocated). ns/step is the fastest \
               of three timed windows (noise-robust minimum)",
        cells,
        speedup_full_vs_seed,
        speedup_compiled_vs_fused,
        speedup_compiled_vs_pr3_fused,
    };
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/BENCH_train_step.json",
        serde_json::to_string_pretty(&out).expect("serializable"),
    )
    .expect("write results/BENCH_train_step.json");
    println!("\nwrote results/BENCH_train_step.json");
}
