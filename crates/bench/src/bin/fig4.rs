//! Regenerates Figure 4: the Leaf proposal learned under the *limited*
//! 32K-call budget (left) and the estimation error as a function of the
//! final IS sample count `N_IS` (right).
//!
//! ```text
//! fig4 [--repeats R] [--seed S]
//! ```

use nofis_bench::heatmap::Heatmap;
use nofis_core::{Levels, Nofis, NofisConfig};
use nofis_prob::{log_error, RunningStats};
use nofis_testcases::Leaf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Result {
    n_is_sweep: Vec<usize>,
    mean_log_error: Vec<f64>,
    std_log_error: Vec<f64>,
    learned: Heatmap,
}

fn main() {
    let mut repeats = 5usize;
    let mut seed = 11u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats N")
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            other => panic!("unknown argument {other}"),
        }
    }

    // Paper setup for Leaf: M = 4, E = 20, N = 400 → 32K training calls.
    let config = NofisConfig {
        levels: Levels::Fixed(vec![15.0, 8.0, 3.0, 0.0]),
        layers_per_stage: 8,
        hidden: 24,
        epochs: 20,
        batch_size: 400,
        n_is: 20,
        tau: 10.0,
        learning_rate: 5e-3,
        minibatch: 4096,
        ..Default::default()
    };
    let nofis = Nofis::new(config).expect("valid fig4 config");
    let mut rng = StdRng::seed_from_u64(seed);
    let trained = nofis.train(&Leaf, &mut rng).expect("fig4 training failed");

    let learned = Heatmap::from_fn(97, 6.0, |x, y| trained.log_density(&[x, y]).exp());
    println!("learned q_MK under the 32K budget:");
    print!("{}", learned.to_ascii(56));

    let sweep = vec![20usize, 50, 100, 200, 500, 1000, 2000, 5000];
    let mut mean_errs = Vec::new();
    let mut std_errs = Vec::new();
    println!("\nN_IS sweep (mean log error over {repeats} IS repeats):");
    for &n_is in &sweep {
        let mut stats = RunningStats::new();
        for r in 0..repeats {
            let mut is_rng = StdRng::seed_from_u64(seed + 100 + r as u64);
            let result = trained
                .estimate(&Leaf, n_is, &mut is_rng)
                .expect("fig4 estimate failed");
            stats.push(log_error(result.estimate, Leaf::GOLDEN_PR));
        }
        println!(
            "  N_IS = {n_is:>5}: log error {:.3} ± {:.3}",
            stats.mean(),
            stats.std_dev()
        );
        mean_errs.push(stats.mean());
        std_errs.push(stats.std_dev());
    }

    let result = Fig4Result {
        n_is_sweep: sweep,
        mean_log_error: mean_errs,
        std_log_error: std_errs,
        learned,
    };
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/fig4.json",
        serde_json::to_string(&result).expect("serializable"),
    )
    .expect("write results/fig4.json");
    println!("\nwrote results/fig4.json");
}
