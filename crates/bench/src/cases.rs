//! Per-case experiment configuration for Table 1.
//!
//! Budgets mirror the paper's reported call counts (column "number of
//! calls" of Table 1) as closely as the methods' granularities allow; all
//! reported counts in our outputs are *measured* through
//! [`nofis_prob::CountingOracle`], not taken from here.

use nofis_core::{Levels, NofisConfig};
use nofis_testcases::registry::{all_cases, CaseEntry};

/// NOFIS config with a hand-fixed level ladder (the paper's methodology:
/// thresholds chosen so `P[Ω_{a_m}]` scales by roughly 0.1 per stage, here
/// derived from the calibration quantiles recorded in EXPERIMENTS.md).
fn nofis_fixed(
    levels: &[f64],
    epochs: usize,
    batch: usize,
    n_is: usize,
    hidden: usize,
    tau: f64,
    layers_per_stage: usize,
) -> NofisConfig {
    NofisConfig {
        levels: Levels::Fixed(levels.to_vec()),
        layers_per_stage,
        hidden,
        s_max: 2.0,
        epochs,
        batch_size: batch,
        n_is,
        tau,
        learning_rate: 5e-3,
        minibatch: 4096,
        freeze: true,
        ..Default::default()
    }
}

/// Everything the Table 1 runner needs for one test case.
#[derive(Debug)]
pub struct CaseConfig {
    /// Case identity, dimension, golden probability, constructor.
    pub entry: CaseEntry,
    /// NOFIS hyper-parameters (adaptive pilot-quantile levels; the pilot
    /// calls are part of the measured budget).
    pub nofis: NofisConfig,
    /// Monte Carlo sample budget.
    pub mc_samples: usize,
    /// SIR simulator budget (surrogate training set size).
    pub sir_train: usize,
    /// SUS population per level.
    pub sus_n: usize,
    /// SUS/SUC maximum level count.
    pub max_levels: usize,
    /// SUC population per level.
    pub suc_n: usize,
    /// SSS total budget.
    pub sss_budget: usize,
    /// Adapt-IS `(samples_per_round, rounds, final_samples)`.
    pub adapt_is: (usize, usize, usize),
}

fn nofis_config(
    stages: usize,
    epochs: usize,
    batch: usize,
    n_is: usize,
    pilot: usize,
    hidden: usize,
) -> NofisConfig {
    NofisConfig {
        levels: Levels::AdaptiveQuantile {
            max_stages: stages,
            p0: 0.12,
            pilot,
        },
        layers_per_stage: 8,
        hidden,
        s_max: 2.0,
        epochs,
        batch_size: batch,
        n_is,
        tau: 10.0,
        learning_rate: 5e-3,
        minibatch: 4096,
        freeze: true,
        ..Default::default()
    }
}

/// The ten Table 1 case configurations, in paper order.
pub fn table1_configs() -> Vec<CaseConfig> {
    let entries = all_cases();
    let mut it = entries.into_iter();
    let mut next = || it.next().expect("ten cases");

    vec![
        // #1 Leaf (paper NOFIS budget 32.0K: M=4, E=20, N=400).
        CaseConfig {
            entry: next(),
            nofis: nofis_config(4, 19, 400, 100, 150, 24),
            mc_samples: 50_000,
            sir_train: 50_000,
            sus_n: 7_000,
            max_levels: 9,
            suc_n: 6_000,
            sss_budget: 40_000,
            adapt_is: (5_000, 6, 5_000),
        },
        // #2 Cube (paper 197.5K: larger M, E, N for the 1e-9 target).
        CaseConfig {
            entry: next(),
            nofis: nofis_config(9, 22, 900, 5_000, 300, 24),
            mc_samples: 500_000,
            sir_train: 100_000,
            sus_n: 23_000,
            max_levels: 12,
            suc_n: 20_000,
            sss_budget: 400_000,
            adapt_is: (25_000, 8, 27_000),
        },
        // #3 Rosen (paper 7.0K).
        CaseConfig {
            entry: next(),
            nofis: nofis_fixed(&[26.1, 17.0, 4.8, 0.0], 15, 110, 1500, 24, 1.0, 8),
            mc_samples: 7_000,
            sir_train: 7_000,
            sus_n: 2_000,
            max_levels: 5,
            suc_n: 1_800,
            sss_budget: 8_000,
            adapt_is: (2_100, 3, 1_100),
        },
        // #4 Levy (paper 48.2K).
        CaseConfig {
            entry: next(),
            nofis: nofis_fixed(&[31.3, 22.3, 14.9, 8.7, 4.0, 0.0], 20, 400, 200, 28, 1.0, 8),
            mc_samples: 50_000,
            sir_train: 50_000,
            sus_n: 8_000,
            max_levels: 8,
            suc_n: 7_000,
            sss_budget: 40_000,
            adapt_is: (8_000, 6, 8_000),
        },
        // #5 Powell (paper 7.0K).
        CaseConfig {
            entry: next(),
            nofis: nofis_fixed(
                &[17.7, 14.1, 11.5, 9.5, 6.0, 3.2, 1.5, 0.0],
                9,
                97,
                600,
                32,
                1.0,
                6,
            ),
            mc_samples: 10_000,
            sir_train: 10_000,
            sus_n: 1_800,
            max_levels: 6,
            suc_n: 1_700,
            sss_budget: 8_000,
            adapt_is: (1_300, 5, 1_400),
        },
        // #6 Opamp (paper 45K).
        CaseConfig {
            entry: next(),
            nofis: nofis_config(5, 20, 440, 500, 200, 24),
            mc_samples: 100_000,
            sir_train: 50_000,
            sus_n: 9_000,
            max_levels: 7,
            suc_n: 8_500,
            sss_budget: 60_000,
            adapt_is: (8_000, 5, 8_000),
        },
        // #7 Oscillator (paper 31K).
        CaseConfig {
            entry: next(),
            nofis: nofis_config(6, 16, 310, 500, 150, 24),
            mc_samples: 100_000,
            sir_train: 50_000,
            sus_n: 7_500,
            max_levels: 8,
            suc_n: 7_000,
            sss_budget: 40_000,
            adapt_is: (7_000, 5, 8_000),
        },
        // #8 Charge Pump (paper 35K).
        CaseConfig {
            entry: next(),
            nofis: nofis_config(6, 18, 310, 500, 150, 28),
            mc_samples: 100_000,
            sir_train: 100_000,
            sus_n: 7_500,
            max_levels: 8,
            suc_n: 8_000,
            sss_budget: 40_000,
            adapt_is: (7_000, 5, 8_000),
        },
        // #9 Y-branch (paper 32.5K).
        CaseConfig {
            entry: next(),
            nofis: nofis_fixed(&[18.5, 10.9, 7.5, 4.1, 0.0], 20, 310, 500, 28, 1.0, 8),
            mc_samples: 50_000,
            sir_train: 50_000,
            sus_n: 7_000,
            max_levels: 7,
            suc_n: 4_500,
            sss_budget: 40_000,
            adapt_is: (7_000, 5, 8_000),
        },
        // #10 ResNet18 surrogate (paper 18K).
        CaseConfig {
            entry: next(),
            nofis: nofis_fixed(&[8.2, 6.2, 3.2, 1.5, 0.0], 12, 290, 500, 32, 1.5, 8),
            mc_samples: 20_000,
            sir_train: 20_000,
            sus_n: 5_000,
            max_levels: 6,
            suc_n: 5_200,
            sss_budget: 20_000,
            adapt_is: (3_000, 5, 5_000),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_configs_in_paper_order() {
        let cfgs = table1_configs();
        assert_eq!(cfgs.len(), 10);
        let names: Vec<&str> = cfgs.iter().map(|c| c.entry.name).collect();
        assert_eq!(
            names,
            vec![
                "Leaf",
                "Cube",
                "Rosen",
                "Levy",
                "Powell",
                "Opamp",
                "Oscillator",
                "Charge Pump",
                "Y-branch",
                "ResNet18"
            ]
        );
    }

    #[test]
    fn all_nofis_configs_validate() {
        for c in table1_configs() {
            assert!(c.nofis.validate().is_ok(), "case {}", c.entry.name);
        }
    }

    #[test]
    fn nofis_budgets_are_near_paper_scale() {
        // Spot-check the headline budgets (paper: 32K for Leaf, ~197K for
        // Cube, 7K for Rosen).
        let cfgs = table1_configs();
        let leaf = cfgs[0].nofis.training_budget() + cfgs[0].nofis.n_is as u64;
        assert!((28_000..=40_000).contains(&leaf), "leaf budget {leaf}");
        let cube = cfgs[1].nofis.training_budget() + cfgs[1].nofis.n_is as u64;
        assert!((150_000..=230_000).contains(&cube), "cube budget {cube}");
        let rosen = cfgs[2].nofis.training_budget() + cfgs[2].nofis.n_is as u64;
        assert!((6_000..=9_000).contains(&rosen), "rosen budget {rosen}");
    }
}
