//! Sequential experiment runner with measured call accounting.

use crate::cases::CaseConfig;
use crate::NofisEstimator;
use nofis_baselines::{
    AdaptIsEstimator, McEstimator, RareEventEstimator, SirEstimator, SssEstimator, SucEstimator,
    SusEstimator,
};
use nofis_prob::{log_error, CountingOracle, RunningStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Aggregated result of repeated runs of one method on one case.
#[derive(Debug, Clone, Serialize)]
pub struct MethodResult {
    /// Method name ("MC", "SIR", …, "NOFIS").
    pub method: String,
    /// Mean measured simulator calls per run.
    pub mean_calls: f64,
    /// Mean absolute log error against the golden probability.
    pub mean_log_error: f64,
    /// Standard deviation of the log error across runs.
    pub std_log_error: f64,
    /// Mean probability estimate.
    pub mean_estimate: f64,
    /// Number of repeated runs.
    pub runs: usize,
}

/// Result row for one test case (all seven methods).
#[derive(Debug, Serialize)]
pub struct CaseResult {
    /// Case id (Table 1 row).
    pub id: usize,
    /// Case name.
    pub name: String,
    /// Dimension.
    pub dim: usize,
    /// Golden probability used in the metric.
    pub golden_pr: f64,
    /// Per-method aggregates in Table 1 column order.
    pub methods: Vec<MethodResult>,
}

/// Runs one estimator `runs` times on the case and aggregates.
pub fn run_method(
    estimator: &dyn RareEventEstimator,
    case: &CaseConfig,
    runs: usize,
    seed0: u64,
) -> MethodResult {
    let mut calls = RunningStats::new();
    let mut errs = RunningStats::new();
    let mut estimates = RunningStats::new();
    for r in 0..runs {
        let ls = (case.entry.make)();
        let oracle = CountingOracle::new(&ls);
        let mut rng = StdRng::seed_from_u64(seed0 + r as u64);
        let p = estimator.estimate(&oracle, &mut rng);
        calls.push(oracle.calls() as f64);
        errs.push(log_error(p, case.entry.golden_pr));
        estimates.push(p);
    }
    MethodResult {
        method: estimator.method_name().to_string(),
        mean_calls: calls.mean(),
        mean_log_error: errs.mean(),
        std_log_error: errs.std_dev(),
        mean_estimate: estimates.mean(),
        runs,
    }
}

/// Builds the seven Table 1 estimators for a case.
pub fn estimators_for(case: &CaseConfig) -> Vec<Box<dyn RareEventEstimator>> {
    let (ais_n, ais_rounds, ais_final) = case.adapt_is;
    vec![
        Box::new(McEstimator::new(case.mc_samples)),
        Box::new(SirEstimator::new(case.sir_train, 2_000_000)),
        Box::new(SucEstimator::new(case.suc_n, 0.1, case.max_levels)),
        Box::new(SusEstimator::new(case.sus_n, 0.1, case.max_levels)),
        Box::new(SssEstimator::new(case.sss_budget)),
        Box::new(AdaptIsEstimator::new(ais_n, ais_rounds, ais_final)),
        Box::new(NofisEstimator::new(case.nofis.clone())),
    ]
}

/// Runs every method of Table 1 on one case.
pub fn run_case(case: &CaseConfig, runs: usize, seed0: u64, verbose: bool) -> CaseResult {
    let mut methods = Vec::new();
    for est in estimators_for(case) {
        let t0 = std::time::Instant::now();
        let res = run_method(est.as_ref(), case, runs, seed0);
        if verbose {
            eprintln!(
                "  [{:>8}] {}: calls {:.1}K, log-err {:.3} ± {:.3} ({:.1?})",
                res.method,
                case.entry.name,
                res.mean_calls / 1e3,
                res.mean_log_error,
                res.std_log_error,
                t0.elapsed()
            );
        }
        methods.push(res);
    }
    CaseResult {
        id: case.entry.id,
        name: case.entry.name.to_string(),
        dim: case.entry.dim,
        golden_pr: case.entry.golden_pr,
        methods,
    }
}

/// Runs only the NOFIS column of a case (used to re-measure NOFIS rows
/// after algorithm changes without re-spending the baseline budgets).
pub fn run_case_nofis_only(case: &CaseConfig, runs: usize, seed0: u64) -> CaseResult {
    let est = NofisEstimator::new(case.nofis.clone());
    let t0 = std::time::Instant::now();
    let res = run_method(&est, case, runs, seed0);
    eprintln!(
        "  [   NOFIS] {}: calls {:.1}K, log-err {:.3} ± {:.3} ({:.1?})",
        case.entry.name,
        res.mean_calls / 1e3,
        res.mean_log_error,
        res.std_log_error,
        t0.elapsed()
    );
    CaseResult {
        id: case.entry.id,
        name: case.entry.name.to_string(),
        dim: case.entry.dim,
        golden_pr: case.entry.golden_pr,
        methods: vec![res],
    }
}

/// Formats a [`CaseResult`] as a Table 1 style row.
pub fn format_row(r: &CaseResult) -> String {
    let cells: Vec<String> = r
        .methods
        .iter()
        .map(|m| format!("{:.1}K / {:.2}", m.mean_calls / 1e3, m.mean_log_error))
        .collect();
    format!(
        "(#{}) {:<12} D={:<3} Pr={:.2e} | {}",
        r.id,
        r.name,
        r.dim,
        r.golden_pr,
        cells.join(" | ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::table1_configs;

    #[test]
    fn run_method_aggregates_mc_on_rosen() {
        // Rosen is the cheapest non-trivial case (Pr ≈ 4.7e-4).
        let mut case = table1_configs().remove(2);
        case.mc_samples = 20_000;
        let mc = McEstimator::new(case.mc_samples);
        let res = run_method(&mc, &case, 2, 1);
        assert_eq!(res.runs, 2);
        assert_eq!(res.mean_calls, 20_000.0);
        assert!(res.mean_log_error.is_finite());
    }

    #[test]
    fn estimator_list_matches_table_columns() {
        let case = &table1_configs()[2];
        let names: Vec<&str> = estimators_for(case)
            .iter()
            .map(|e| e.method_name())
            .collect();
        assert_eq!(
            names,
            vec!["MC", "SIR", "SUC", "SUS", "SSS", "Adapt-IS", "NOFIS"]
        );
    }
}
