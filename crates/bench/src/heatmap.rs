//! 2-D density heatmap helpers for the Figure 2/3/4 reproductions.

use serde::Serialize;

/// A rasterized 2-D scalar field over `[-extent, extent]²`.
#[derive(Debug, Clone, Serialize)]
pub struct Heatmap {
    /// Grid resolution per axis.
    pub resolution: usize,
    /// Half-extent of the square domain.
    pub extent: f64,
    /// Row-major values, `resolution²` entries; row 0 is the smallest `y`.
    pub values: Vec<f64>,
}

impl Heatmap {
    /// Rasterizes `f(x, y)` on a `resolution × resolution` grid.
    ///
    /// # Panics
    ///
    /// Panics if `resolution < 2` or `extent <= 0`.
    pub fn from_fn(resolution: usize, extent: f64, mut f: impl FnMut(f64, f64) -> f64) -> Self {
        assert!(resolution >= 2, "need at least a 2x2 grid");
        assert!(extent > 0.0, "extent must be positive");
        let step = 2.0 * extent / (resolution - 1) as f64;
        let mut values = Vec::with_capacity(resolution * resolution);
        for iy in 0..resolution {
            let y = -extent + iy as f64 * step;
            for ix in 0..resolution {
                let x = -extent + ix as f64 * step;
                values.push(f(x, y));
            }
        }
        Heatmap {
            resolution,
            extent,
            values,
        }
    }

    /// Largest value in the map.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Total mass (sum × cell area) — useful to sanity check normalized
    /// densities.
    pub fn mass(&self) -> f64 {
        let step = 2.0 * self.extent / (self.resolution - 1) as f64;
        self.values.iter().sum::<f64>() * step * step
    }

    /// Renders an ASCII-art view (darker glyph = larger value), suitable
    /// for terminal inspection of learned proposals.
    pub fn to_ascii(&self, width: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max = self.max().max(1e-300);
        let stride = (self.resolution / width.max(1)).max(1);
        let mut out = String::new();
        // Render top-to-bottom as decreasing y.
        for iy in (0..self.resolution).step_by(stride).rev() {
            for ix in (0..self.resolution).step_by(stride) {
                let v = self.values[iy * self.resolution + ix] / max;
                let idx = ((v.max(0.0)).sqrt() * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Normalized cross-correlation with another map of the same shape —
    /// used to quantify how well the learned `q_MK` matches the optimal
    /// `q*` in the Figure 2 reproduction (1.0 = identical shapes).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn correlation(&self, other: &Heatmap) -> f64 {
        assert_eq!(self.resolution, other.resolution, "resolution mismatch");
        let n = self.values.len() as f64;
        let ma = self.values.iter().sum::<f64>() / n;
        let mb = other.values.iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (a, b) in self.values.iter().zip(&other.values) {
            num += (a - ma) * (b - mb);
            da += (a - ma) * (a - ma);
            db += (b - mb) * (b - mb);
        }
        num / (da.sqrt() * db.sqrt()).max(1e-300)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rasterizes_gaussian() {
        let h = Heatmap::from_fn(41, 4.0, |x, y| (-0.5 * (x * x + y * y)).exp());
        // Peak at center.
        let c = h.resolution / 2;
        assert!((h.values[c * h.resolution + c] - 1.0).abs() < 1e-12);
        // Mass ≈ 2π for the unnormalized Gaussian.
        assert!((h.mass() - std::f64::consts::TAU).abs() < 0.05);
    }

    #[test]
    fn self_correlation_is_one() {
        let h = Heatmap::from_fn(21, 3.0, |x, y| x * y + 1.0);
        assert!((h.correlation(&h) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_maps_correlate_poorly() {
        let a = Heatmap::from_fn(31, 3.0, |x, _| if x > 1.0 { 1.0 } else { 0.0 });
        let b = Heatmap::from_fn(31, 3.0, |x, _| if x < -1.0 { 1.0 } else { 0.0 });
        assert!(a.correlation(&b) < 0.0);
    }

    #[test]
    fn ascii_render_has_rows() {
        let h = Heatmap::from_fn(32, 2.0, |x, y| (-(x * x + y * y)).exp());
        let art = h.to_ascii(32);
        assert_eq!(art.lines().count(), 32);
        assert!(art.contains('@'));
    }
}
