//! Experiment harness regenerating every table and figure of the NOFIS
//! paper.
//!
//! Binaries (all print their artifact to stdout and dump JSON under
//! `results/`):
//!
//! * `table1` — the 10-case × 7-method comparison (calls / log-error).
//! * `fig2` — learned vs optimal 2-D proposal heatmaps.
//! * `fig3` — intermediate stage proposals and training-loss curves.
//! * `fig4` — limited-budget Leaf proposal + error vs `N_IS` sweep.
//! * `fig5` — ablations (NoFreeze / LongThre / SmallTemp) and the τ sweep.
//! * `calibrate` — threshold/golden-probability calibration utility.
//!
//! The library part hosts the pieces those binaries share: the
//! [`NofisEstimator`] adapter, the per-case experiment configuration
//! ([`cases`]), the sequential experiment [`runner`], and ASCII/JSON
//! [`heatmap`] helpers.

#![deny(missing_docs)]

pub mod cases;
pub mod heatmap;
pub mod runner;

use nofis_baselines::RareEventEstimator;
use nofis_core::{Nofis, NofisConfig};
use nofis_prob::LimitState;
use rand::{RngCore, SeedableRng};

/// Adapts [`Nofis`] to the common [`RareEventEstimator`] interface used by
/// the Table 1 runner.
#[derive(Debug, Clone)]
pub struct NofisEstimator {
    config: NofisConfig,
}

impl NofisEstimator {
    /// Wraps a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (harness configurations are
    /// static and vetted by tests).
    pub fn new(config: NofisConfig) -> Self {
        config
            .validate()
            .expect("harness NOFIS config must be valid");
        NofisEstimator { config }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &NofisConfig {
        &self.config
    }
}

impl RareEventEstimator for NofisEstimator {
    fn method_name(&self) -> &'static str {
        "NOFIS"
    }

    fn estimate(&self, limit_state: &(dyn LimitState + Sync), rng: &mut dyn RngCore) -> f64 {
        let nofis = Nofis::new(self.config.clone()).expect("validated at construction");
        // Re-seed a concrete RNG from the caller's stream (the trainer
        // needs `impl Rng`).
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        let mut train_rng = rand::rngs::StdRng::from_seed(seed);
        match nofis.run(&limit_state, &mut train_rng) {
            Ok((trained, result)) => {
                // Surface recovery events so a Table 1 row with a bad error
                // can be traced to an unhealthy run.
                for report in trained.stage_reports() {
                    if report.rolled_back || report.truncated {
                        eprintln!("  [nofis] {report}");
                    }
                }
                if result.rung.is_fallback() {
                    eprintln!("  [nofis] estimate fell back to {}", result.rung);
                }
                result.estimate
            }
            Err(err) => {
                // A failed run scores as "nothing observed": the runner's
                // log-error floor turns this into a large finite error.
                eprintln!("  [nofis] run failed: {err}");
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_core::Levels;
    use nofis_prob::CountingOracle;
    use rand::rngs::StdRng;

    struct HalfSpace;
    impl LimitState for HalfSpace {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            3.0 - x[0]
        }
        fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
            (3.0 - x[0], vec![-1.0, 0.0])
        }
    }

    #[test]
    fn adapter_runs_and_consumes_expected_budget() {
        // Trained well enough that the estimation ladder accepts the final
        // proposal — the exact-budget assertion below depends on the
        // healthy path (no fallback tranches).
        let cfg = NofisConfig {
            levels: Levels::Fixed(vec![1.5, 0.0]),
            layers_per_stage: 4,
            hidden: 16,
            epochs: 12,
            batch_size: 100,
            n_is: 200,
            tau: 15.0,
            learning_rate: 8e-3,
            ..Default::default()
        };
        let expected = cfg.training_budget() + 200;
        let est = NofisEstimator::new(cfg);
        assert_eq!(est.method_name(), "NOFIS");
        let oracle = CountingOracle::new(&HalfSpace);
        let mut rng = StdRng::seed_from_u64(0);
        let p = est.estimate(&oracle, &mut rng);
        assert!(p >= 0.0);
        assert_eq!(oracle.calls(), expected);
    }
}
