//! Criterion micro-benchmarks of the normalizing-flow kernels: coupling
//! transforms, full-flow sampling/density, and one NOFIS training step.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nofis_autograd::{Graph, ParamStore, Tensor};
use nofis_flows::RealNvp;
use nofis_parallel::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn randomized_flow(dim: usize, layers: usize) -> (ParamStore, RealNvp) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let flow = RealNvp::new(&mut store, dim, layers, 32, 2.0, &mut rng);
    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    for id in ids {
        for v in store.get_mut(id).as_mut_slice() {
            *v += rng.gen_range(-0.2..0.2);
        }
    }
    (store, flow)
}

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_transform");
    for &dim in &[2usize, 16, 62] {
        let (store, flow) = randomized_flow(dim, 8);
        let x: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.3).sin()).collect();
        group.bench_with_input(BenchmarkId::new("forward", dim), &dim, |b, _| {
            b.iter(|| flow.transform(&store, &x, 8))
        });
        group.bench_with_input(BenchmarkId::new("inverse", dim), &dim, |b, _| {
            let (y, _) = flow.transform(&store, &x, 8);
            b.iter(|| flow.inverse(&store, &y, 8))
        });
        group.bench_with_input(BenchmarkId::new("log_density", dim), &dim, |b, _| {
            b.iter(|| flow.log_density(&store, &x, 8))
        });
    }
    group.finish();
}

fn bench_training_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_training_step");
    group.sample_size(10);
    for &(dim, batch) in &[(2usize, 200usize), (16, 200), (62, 200)] {
        let (store, flow) = randomized_flow(dim, 16);
        let data = Tensor::from_fn(batch, dim, |r, c| ((r * dim + c) as f64 * 0.01).sin());
        group.bench_with_input(BenchmarkId::new("forward_backward", dim), &dim, |b, _| {
            b.iter(|| {
                let mut g = Graph::new();
                let x = g.constant(data.clone());
                let (z, ld) = flow.forward_graph(&store, &mut g, x, 16);
                let sq = g.square(z);
                let ssq = g.sum_cols(sq);
                let a = g.add(ld, ssq);
                let loss = g.mean_all(a);
                g.backward(loss);
                g.param_grads().len()
            })
        });
    }
    group.finish();
}

/// Seed path (fresh unfused tape per step, grads cloned out for Adam)
/// vs. the pooled hot path (tape arena reuse + frozen-gradient pruning +
/// fused kernels + fused Adam) on a stage-3 frozen-prefix NOFIS step.
/// The bitwise-equivalence tests pin that both lanes compute the same
/// numbers; this group measures only the time.
fn bench_pooled_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("pooled_training_step");
    group.sample_size(10);
    let (dim, layers, frozen, batch) = (8usize, 6usize, 4usize, 256usize);
    let build = || {
        let (mut store, flow) = randomized_flow(dim, layers);
        for id in flow.param_ids_for_layers(0..frozen) {
            store.set_frozen(id, true);
        }
        let opt = nofis_nn::Adam::new(1e-3).with_max_grad_norm(Some(5.0));
        (store, flow, opt)
    };
    let data = Tensor::from_fn(batch, dim, |r, c| ((r * dim + c) as f64 * 0.01).sin());
    let loss_of = |g: &mut Graph, store: &ParamStore, flow: &RealNvp| {
        let x = g.constant(data.clone());
        let (z, ld) = flow.forward_graph(store, g, x, layers);
        let sq = g.square(z);
        let ssq = g.sum_cols(sq);
        let a = g.add(ld, ssq);
        let loss = g.mean_all(a);
        g.backward(loss);
        loss
    };
    group.bench_function("seed_path", |b| {
        let (mut store, flow, mut opt) = build();
        b.iter(|| {
            let mut g = Graph::new();
            g.set_fusion(false);
            loss_of(&mut g, &store, &flow);
            opt.step(&mut store, &g.param_grads());
        })
    });
    group.bench_function("pooled_pruned_fused", |b| {
        let (mut store, flow, mut opt) = build();
        let mut g = Graph::new();
        g.set_pruning(true);
        b.iter(|| {
            g.reset();
            loss_of(&mut g, &store, &flow);
            opt.step_fused(&mut store, &g);
        })
    });
    group.finish();
}

/// Serial vs. parallel throughput of the shared matmul kernel at
/// training-shaped sizes (batch x dim by dim x hidden). The 1-thread pool
/// runs the identical code path, so the comparison isolates pure
/// parallel speedup; determinism tests elsewhere pin that the outputs are
/// bitwise equal.
fn bench_parallel_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_serial_vs_parallel");
    group.sample_size(20);
    let serial = ThreadPool::new(1);
    let par4 = ThreadPool::new(4);
    for &(m, k, n) in &[(256usize, 64usize, 64usize), (512, 128, 128)] {
        let a = Tensor::from_fn(m, k, |r, cc| ((r * k + cc) as f64 * 0.01).sin());
        let b = Tensor::from_fn(k, n, |r, cc| ((r * n + cc) as f64 * 0.013).cos());
        let shape = format!("{m}x{k}x{n}");
        group.bench_with_input(BenchmarkId::new("serial", &shape), &m, |be, _| {
            be.iter(|| black_box(a.matmul_with(&b, &serial)))
        });
        group.bench_with_input(BenchmarkId::new("parallel4", &shape), &m, |be, _| {
            be.iter(|| black_box(a.matmul_with(&b, &par4)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transform,
    bench_training_graph,
    bench_pooled_training_step,
    bench_parallel_matmul
);
criterion_main!(benches);
