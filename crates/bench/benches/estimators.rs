//! Criterion end-to-end benchmarks of the estimators on a small shared
//! event (a 3-D half-space with P ≈ 1.3e-3), including an ablation pair
//! for the masked-coupling design choice called out in DESIGN.md
//! (whole-tensor mask algebra vs per-row scalar transform).

use criterion::{criterion_group, criterion_main, Criterion};
use nofis_autograd::ParamStore;
use nofis_baselines::{
    AdaptIsEstimator, McEstimator, RareEventEstimator, SssEstimator, SusEstimator,
};
use nofis_bench::NofisEstimator;
use nofis_core::{Levels, NofisConfig};
use nofis_flows::RealNvp;
use nofis_prob::LimitState;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct HalfSpace;
impl LimitState for HalfSpace {
    fn dim(&self) -> usize {
        3
    }
    fn value(&self, x: &[f64]) -> f64 {
        3.0 - x[0]
    }
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        (3.0 - x[0], vec![-1.0, 0.0, 0.0])
    }
}

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_end_to_end");
    group.sample_size(10);

    group.bench_function("mc_10k", |b| {
        let est = McEstimator::new(10_000);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            est.estimate(&HalfSpace, &mut rng)
        })
    });
    group.bench_function("sus_1k_levels", |b| {
        let est = SusEstimator::new(1_000, 0.1, 5);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            est.estimate(&HalfSpace, &mut rng)
        })
    });
    group.bench_function("sss_6k", |b| {
        let est = SssEstimator::new(6_000);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            est.estimate(&HalfSpace, &mut rng)
        })
    });
    group.bench_function("adapt_is_5k", |b| {
        let est = AdaptIsEstimator::new(1_000, 4, 1_000);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            est.estimate(&HalfSpace, &mut rng)
        })
    });
    group.bench_function("nofis_small", |b| {
        let est = NofisEstimator::new(NofisConfig {
            levels: Levels::Fixed(vec![1.5, 0.0]),
            layers_per_stage: 4,
            hidden: 16,
            epochs: 6,
            batch_size: 64,
            n_is: 200,
            ..Default::default()
        });
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            est.estimate(&HalfSpace, &mut rng)
        })
    });
    group.finish();
}

/// Ablation bench for DESIGN.md: cost of flow depth (stage count) in the
/// per-sample transform — quantifies the "prefix evaluation" design.
fn bench_depth_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_depth_scaling");
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(2);
    let flow = RealNvp::new(&mut store, 16, 48, 32, 2.0, &mut rng);
    let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).cos()).collect();
    for &depth in &[8usize, 16, 32, 48] {
        group.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| flow.transform(&store, &x, depth))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators, bench_depth_scaling);
criterion_main!(benches);
