//! Criterion micro-benchmarks of the simulator substrates: one `g(x)`
//! evaluation (and gradient) per test case — the unit cost every
//! estimator's budget is denominated in.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nofis_parallel::ThreadPool;
use nofis_prob::{batch_values_with, LimitState};
use nofis_testcases::registry::all_cases;

fn bench_case_evaluations(c: &mut Criterion) {
    let mut group = c.benchmark_group("limit_state_value");
    for entry in all_cases() {
        let ls = (entry.make)();
        let x: Vec<f64> = (0..entry.dim)
            .map(|i| 0.3 * (i as f64 * 0.7).sin())
            .collect();
        group.bench_function(entry.name, |b| b.iter(|| ls.value(&x)));
    }
    group.finish();

    let mut group = c.benchmark_group("limit_state_value_grad");
    group.sample_size(20);
    for entry in all_cases() {
        let ls = (entry.make)();
        let x: Vec<f64> = (0..entry.dim)
            .map(|i| 0.3 * (i as f64 * 0.7).sin())
            .collect();
        group.bench_function(entry.name, |b| b.iter(|| ls.value_grad(&x)));
    }
    group.finish();
}

/// Serial vs. parallel chunked batch evaluation of each test-case oracle
/// on a 512-sample batch — the shape of one pilot/IS evaluation pass.
/// Both lanes go through `batch_values_with`, so the 1-thread number is
/// the true serial baseline for the same code path.
fn bench_parallel_batch_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_batch_serial_vs_parallel");
    group.sample_size(10);
    let serial = ThreadPool::new(1);
    let par4 = ThreadPool::new(4);
    const BATCH: usize = 512;
    for entry in all_cases() {
        let ls = (entry.make)();
        let xs: Vec<Vec<f64>> = (0..BATCH)
            .map(|i| {
                (0..entry.dim)
                    .map(|j| 0.3 * ((i * entry.dim + j) as f64 * 0.7).sin())
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("serial", entry.name), &BATCH, |b, _| {
            b.iter(|| black_box(batch_values_with(&*ls, &xs, &serial)))
        });
        group.bench_with_input(BenchmarkId::new("parallel4", entry.name), &BATCH, |b, _| {
            b.iter(|| black_box(batch_values_with(&*ls, &xs, &par4)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_case_evaluations, bench_parallel_batch_eval);
criterion_main!(benches);
