//! Criterion micro-benchmarks of the simulator substrates: one `g(x)`
//! evaluation (and gradient) per test case — the unit cost every
//! estimator's budget is denominated in.

use criterion::{criterion_group, criterion_main, Criterion};
use nofis_prob::LimitState;
use nofis_testcases::registry::all_cases;

fn bench_case_evaluations(c: &mut Criterion) {
    let mut group = c.benchmark_group("limit_state_value");
    for entry in all_cases() {
        let ls = (entry.make)();
        let x: Vec<f64> = (0..entry.dim)
            .map(|i| 0.3 * (i as f64 * 0.7).sin())
            .collect();
        group.bench_function(entry.name, |b| b.iter(|| ls.value(&x)));
    }
    group.finish();

    let mut group = c.benchmark_group("limit_state_value_grad");
    group.sample_size(20);
    for entry in all_cases() {
        let ls = (entry.make)();
        let x: Vec<f64> = (0..entry.dim)
            .map(|i| 0.3 * (i as f64 * 0.7).sin())
            .collect();
        group.bench_function(entry.name, |b| b.iter(|| ls.value_grad(&x)));
    }
    group.finish();
}

criterion_group!(benches, bench_case_evaluations);
criterion_main!(benches);
