use nofis_autograd::{GradSource, ParamId, ParamStore, Tensor};

/// A snapshot of the optimizer's per-parameter state — the first/second
/// moment estimates and the per-parameter step counts — for durable
/// checkpointing.
///
/// The hyper-parameters (learning rate, betas, eps, clipping threshold) are
/// deliberately *not* part of the state: they are derived from the training
/// configuration and the caller reconstructs the optimizer from those
/// before restoring. Restoring into an `Adam` with the same
/// hyper-parameters makes the very next [`Adam::step`] bitwise identical to
/// the step the snapshotted optimizer would have taken.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdamState {
    /// Per-parameter `(m, v)` moment pairs, indexed like the param store
    /// (`None` for parameters the optimizer has never updated).
    pub moments: Vec<Option<(Tensor, Tensor)>>,
    /// Per-parameter bias-correction step counts.
    pub steps: Vec<u64>,
}

/// The Adam optimizer (Kingma & Ba, 2015) with bias correction.
///
/// Frozen parameters (see [`ParamStore::set_frozen`]) are skipped entirely
/// — their moment state is not advanced — which implements NOFIS's
/// stage-freezing policy.
///
/// # Example
///
/// ```
/// use nofis_autograd::{Graph, ParamStore, Tensor};
/// use nofis_nn::Adam;
///
/// let mut store = ParamStore::new();
/// let w = store.add(Tensor::scalar(5.0));
/// let mut opt = Adam::new(0.1);
/// for _ in 0..200 {
///     let mut g = Graph::new();
///     let wv = store.inject(&mut g, w);
///     let sq = g.square(wv);
///     let loss = g.sum_all(sq);
///     g.backward(loss);
///     opt.step(&mut store, &g.param_grads());
/// }
/// assert!(store.get(w).item().abs() < 1e-2); // minimizes w^2
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    /// Per-parameter first/second moment estimates, keyed by param index.
    moments: Vec<Option<(Tensor, Tensor)>>,
    /// Per-parameter step counts (bias correction is per parameter so that
    /// freezing and later unfreezing behaves sensibly).
    steps: Vec<u64>,
    /// Optional global-norm gradient clipping threshold.
    max_grad_norm: Option<f64>,
    /// Generation-stamped scratch used by [`Adam::step_fused`] to detect a
    /// parameter injected at several tape positions without allocating.
    seen: Vec<u64>,
    seen_gen: u64,
    /// Global gradient L2 norm measured by the last clipping pass (see
    /// [`Adam::last_grad_norm`]).
    last_grad_norm: Option<f64>,
}

impl Adam {
    /// Creates an optimizer with the given learning rate and the standard
    /// defaults `beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates an optimizer with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, the betas are outside `[0, 1)`, or `eps <= 0`.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        assert!(eps > 0.0, "eps must be positive");
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            moments: Vec::new(),
            steps: Vec::new(),
            max_grad_norm: None,
            seen: Vec::new(),
            seen_gen: 0,
            last_grad_norm: None,
        }
    }

    /// Enables (or, with `None`, disables) global-norm gradient clipping.
    ///
    /// Before each [`Adam::step`], the L2 norm of all non-frozen, finite
    /// gradients is computed jointly; when it exceeds `max_norm` every
    /// gradient is scaled by `max_norm / norm`. This is the standard guard
    /// against exploding log-det gradients early in flow training.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is `Some` but not finite and positive.
    pub fn with_max_grad_norm(mut self, max_norm: Option<f64>) -> Self {
        if let Some(m) = max_norm {
            assert!(m.is_finite() && m > 0.0, "max_grad_norm must be positive");
        }
        self.max_grad_norm = max_norm;
        self
    }

    /// The global-norm clipping threshold, if enabled.
    pub fn max_grad_norm(&self) -> Option<f64> {
        self.max_grad_norm
    }

    /// The joint L2 norm of the gradients seen by the most recent
    /// [`Adam::step`] / [`Adam::step_fused`], measured by the clipping
    /// pass *before* any rescaling. `None` until a step has run with
    /// clipping enabled — the norm is a byproduct of clipping, never an
    /// extra pass. Exposed for telemetry (per-step `grad_norm` events).
    pub fn last_grad_norm(&self) -> Option<f64> {
        self.last_grad_norm
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Updates the learning rate (e.g. for a decay schedule).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn set_lr(&mut self, lr: f64) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Exports the per-parameter optimizer state for checkpointing.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            moments: self.moments.clone(),
            steps: self.steps.clone(),
        }
    }

    /// Restores per-parameter state previously taken with
    /// [`Adam::export_state`]. Hyper-parameters are untouched — construct
    /// the optimizer with the desired ones first.
    pub fn restore_state(&mut self, state: AdamState) {
        self.moments = state.moments;
        self.steps = state.steps;
    }

    /// Applies one Adam update to every non-frozen parameter in `grads`.
    ///
    /// Gradients with non-finite entries are skipped defensively (a diverged
    /// batch then simply does not move the parameters). When
    /// [`Adam::with_max_grad_norm`] is set, all participating gradients are
    /// first rescaled so their joint L2 norm does not exceed the threshold.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Tensor)]) {
        // Global-norm clipping factor over the gradients that will be applied.
        let clip = match self.max_grad_norm {
            Some(max_norm) => {
                let sq_sum: f64 = grads
                    .iter()
                    .filter(|(id, grad)| !store.is_frozen(*id) && grad.is_finite())
                    .map(|(_, grad)| grad.as_slice().iter().map(|g| g * g).sum::<f64>())
                    .sum();
                let norm = sq_sum.sqrt();
                self.last_grad_norm = Some(norm);
                if norm > max_norm {
                    max_norm / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        for (id, grad) in grads {
            self.update_param(store, *id, grad, clip);
        }
    }

    /// Applies one Adam update directly from a [`GradSource`]'s
    /// parameter-leaf gradients — an interpreted `Graph` after `backward`
    /// or a `CompiledStep` after replay — without materializing a
    /// `Vec<(ParamId, Tensor)>`.
    ///
    /// The arithmetic — global-norm clip pass included — is bitwise
    /// identical to `self.step(store, &source.param_grads())`: gradients
    /// are visited in the same first-appearance tape order, and the one
    /// case where the fused walk would differ (a parameter injected at
    /// several tape positions, whose partial gradients must be summed
    /// before squaring) is detected and routed through the materializing
    /// path.
    pub fn step_fused(&mut self, store: &mut ParamStore, source: &impl GradSource) {
        // Duplicate detection with generation-stamped scratch (allocation-
        // free once `seen` covers the store).
        self.seen_gen += 1;
        let gen = self.seen_gen;
        let mut duplicate = false;
        {
            let seen = &mut self.seen;
            source.for_each_param_grad(|id, _| {
                let idx = id.index();
                if idx >= seen.len() {
                    seen.resize(idx + 1, 0);
                }
                if seen[idx] == gen {
                    duplicate = true;
                } else {
                    seen[idx] = gen;
                }
            });
        }
        if duplicate {
            let grads = source.param_grads();
            self.step(store, &grads);
            return;
        }
        let clip = match self.max_grad_norm {
            Some(max_norm) => {
                let mut sq_sum = 0.0;
                source.for_each_param_grad(|id, grad| {
                    if !store.is_frozen(id) && grad.is_finite() {
                        sq_sum += grad.as_slice().iter().map(|g| g * g).sum::<f64>();
                    }
                });
                let norm = sq_sum.sqrt();
                self.last_grad_norm = Some(norm);
                if norm > max_norm {
                    max_norm / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        source.for_each_param_grad(|id, grad| {
            self.update_param(store, id, grad, clip);
        });
    }

    /// Single fused pass over the `(param, m, v)` slices of one parameter.
    fn update_param(&mut self, store: &mut ParamStore, id: ParamId, grad: &Tensor, clip: f64) {
        if store.is_frozen(id) || !grad.is_finite() {
            return;
        }
        let idx = id.index();
        if idx >= self.moments.len() {
            self.moments.resize(idx + 1, None);
            self.steps.resize(idx + 1, 0);
        }
        let param = store.get_mut(id);
        let (m, v) = self.moments[idx].get_or_insert_with(|| {
            (
                Tensor::zeros(param.rows(), param.cols()),
                Tensor::zeros(param.rows(), param.cols()),
            )
        });
        self.steps[idx] += 1;
        let t = self.steps[idx] as f64;
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        let lr = self.lr;
        let eps = self.eps;
        for (((pk, mk), vk), &gr) in param
            .as_mut_slice()
            .iter_mut()
            .zip(m.as_mut_slice())
            .zip(v.as_mut_slice())
            .zip(grad.as_slice())
        {
            let gk = clip * gr;
            *mk = b1 * *mk + (1.0 - b1) * gk;
            *vk = b2 * *vk + (1.0 - b2) * gk * gk;
            let m_hat = *mk / bc1;
            let v_hat = *vk / bc2;
            *pk -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_autograd::Graph;

    fn quadratic_step(store: &mut ParamStore, w: ParamId) -> Vec<(ParamId, Tensor)> {
        let mut g = Graph::new();
        let wv = store.inject(&mut g, w);
        let sq = g.square(wv);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.param_grads()
    }

    #[test]
    fn converges_on_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add(Tensor::from_row(&[3.0, -4.0]));
        let mut opt = Adam::new(0.05);
        for _ in 0..800 {
            let grads = quadratic_step(&mut store, w);
            opt.step(&mut store, &grads);
        }
        assert!(store.get(w).max_abs() < 1e-2);
    }

    #[test]
    fn frozen_params_do_not_move() {
        let mut store = ParamStore::new();
        let w = store.add(Tensor::scalar(2.0));
        store.set_frozen(w, true);
        let mut opt = Adam::new(0.1);
        let grads = quadratic_step(&mut store, w);
        opt.step(&mut store, &grads);
        assert_eq!(store.get(w).item(), 2.0);
        store.set_frozen(w, false);
        let grads = quadratic_step(&mut store, w);
        opt.step(&mut store, &grads);
        assert!(store.get(w).item() < 2.0);
    }

    #[test]
    fn non_finite_grads_are_skipped() {
        let mut store = ParamStore::new();
        let w = store.add(Tensor::scalar(1.0));
        let mut opt = Adam::new(0.1);
        opt.step(&mut store, &[(w, Tensor::scalar(f64::NAN))]);
        assert_eq!(store.get(w).item(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_lr() {
        let _ = Adam::new(-0.1);
    }

    #[test]
    fn clips_exploding_gradients_by_global_norm() {
        // A 3-4-0 gradient pair has global norm 5; with max_norm 1 the
        // effective gradient is scaled by 1/5 on every component.
        let mut store = ParamStore::new();
        let a = store.add(Tensor::scalar(0.0));
        let b = store.add(Tensor::from_row(&[0.0, 0.0]));
        let grads = vec![
            (a, Tensor::scalar(3.0e6)),
            (b, Tensor::from_row(&[4.0e6, 0.0])),
        ];

        let mut clipped = Adam::new(0.1).with_max_grad_norm(Some(1.0));
        let mut unclipped = Adam::new(0.1);
        let mut store2 = store.clone();
        clipped.step(&mut store, &grads);
        unclipped.step(&mut store2, &grads);

        // Both move downhill; the first Adam step size is ~lr either way,
        // but the second-moment state must reflect the *clipped* gradient.
        for (opt, st, label) in [(&clipped, &store, "clipped"), (&unclipped, &store2, "raw")] {
            assert!(st.get(a).item() < 0.0, "{label} should move");
            let _ = opt;
        }
        let m_clipped = clipped.moments[a.index()].as_ref().unwrap().0.item();
        let m_raw = unclipped.moments[a.index()].as_ref().unwrap().0.item();
        assert!((m_clipped - 0.1 * 0.6).abs() < 1e-12, "m = {m_clipped}");
        assert!(m_raw > 1e5, "raw first moment should be huge: {m_raw}");
        // Zero-component stays untouched in both.
        assert_eq!(store.get(b).as_slice()[1], 0.0);
    }

    #[test]
    fn frozen_params_do_not_count_toward_clip_norm() {
        let mut store = ParamStore::new();
        let frozen = store.add(Tensor::scalar(0.0));
        let live = store.add(Tensor::scalar(0.0));
        store.set_frozen(frozen, true);
        let grads = vec![
            (frozen, Tensor::scalar(1.0e9)), // must not inflate the norm
            (live, Tensor::scalar(0.5)),
        ];
        let mut opt = Adam::new(0.1).with_max_grad_norm(Some(1.0));
        opt.step(&mut store, &grads);
        // Live gradient (norm 0.5 < 1) is NOT scaled: first moment is
        // exactly (1 - beta1) * 0.5.
        let m = opt.moments[live.index()].as_ref().unwrap().0.item();
        assert!((m - 0.05).abs() < 1e-12, "m = {m}");
        assert_eq!(store.get(frozen).item(), 0.0);
    }

    #[test]
    fn last_grad_norm_reports_preclip_norm() {
        let mut store = ParamStore::new();
        let a = store.add(Tensor::scalar(0.0));
        let b = store.add(Tensor::from_row(&[0.0, 0.0]));
        let grads = vec![(a, Tensor::scalar(3.0)), (b, Tensor::from_row(&[4.0, 0.0]))];

        // Without clipping the norm is never measured.
        let mut plain = Adam::new(0.1);
        assert_eq!(plain.last_grad_norm(), None);
        plain.step(&mut store.clone(), &grads);
        assert_eq!(plain.last_grad_norm(), None);

        // With clipping, the pre-rescale norm is reported (3-4-0 → 5).
        let mut clipped = Adam::new(0.1).with_max_grad_norm(Some(1.0));
        clipped.step(&mut store, &grads);
        assert!((clipped.last_grad_norm().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn state_round_trip_resumes_bitwise() {
        // Run 5 steps, snapshot, run 3 more; separately restore the
        // snapshot into a fresh optimizer (same hyper-parameters) and run
        // the same 3 steps — parameters and state must match bitwise.
        let mut store = ParamStore::new();
        let w = store.add(Tensor::from_row(&[3.0, -4.0, 0.5]));
        let mut opt = Adam::new(0.05).with_max_grad_norm(Some(10.0));
        for _ in 0..5 {
            let grads = quadratic_step(&mut store, w);
            opt.step(&mut store, &grads);
        }
        let snap_store = store.clone();
        let snap = opt.export_state();
        assert_eq!(snap, opt.export_state(), "export is a pure read");

        for _ in 0..3 {
            let grads = quadratic_step(&mut store, w);
            opt.step(&mut store, &grads);
        }

        let mut resumed_store = snap_store;
        let mut resumed = Adam::new(0.05).with_max_grad_norm(Some(10.0));
        resumed.restore_state(snap);
        for _ in 0..3 {
            let grads = quadratic_step(&mut resumed_store, w);
            resumed.step(&mut resumed_store, &grads);
        }
        assert_eq!(store.get(w), resumed_store.get(w));
        assert_eq!(opt.export_state(), resumed.export_state());
    }

    #[test]
    fn set_lr_changes_rate() {
        let mut opt = Adam::new(0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
    }
}
