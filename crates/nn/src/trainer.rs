//! High-level surrogate model training.
//!
//! The SIR baseline fits a regression surrogate of the limit-state function
//! `g`, and the SUC baseline fits per-level binary classifiers; both reuse
//! these wrappers.

use crate::{Activation, Adam, Mlp};
use nofis_autograd::{Graph, ParamStore, Tensor};
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters for surrogate training.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            batch_size: 64,
            lr: 3e-3,
        }
    }
}

/// A feed-forward regression surrogate `R^D -> R` trained with MSE loss.
///
/// Targets are standardized internally so widely scaled limit-state values
/// (dB gains, µA mismatches) train equally well.
///
/// # Example
///
/// ```
/// use nofis_autograd::Tensor;
/// use nofis_nn::{Regressor, TrainConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let x = Tensor::from_fn(64, 1, |r, _| r as f64 / 32.0 - 1.0);
/// let y: Vec<f64> = (0..64).map(|r| {
///     let v = r as f64 / 32.0 - 1.0;
///     2.0 * v
/// }).collect();
/// let model = Regressor::fit(&x, &y, &[16], TrainConfig::default(), &mut rng);
/// assert!((model.predict_one(&[0.5]) - 1.0).abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct Regressor {
    store: ParamStore,
    net: Mlp,
    y_mean: f64,
    y_std: f64,
}

impl Regressor {
    /// Trains a surrogate on rows of `x` against targets `y`.
    ///
    /// `hidden` lists the hidden layer widths (the input/output sizes are
    /// inferred).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `y.len() != x.rows()`.
    pub fn fit(
        x: &Tensor,
        y: &[f64],
        hidden: &[usize],
        config: TrainConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(x.rows() > 0, "cannot fit a regressor on an empty dataset");
        assert_eq!(y.len(), x.rows(), "target length must match sample count");

        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / y.len() as f64;
        let y_std = var.sqrt().max(1e-12);
        let targets: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        let mut dims = vec![x.cols()];
        dims.extend_from_slice(hidden);
        dims.push(1);
        let mut store = ParamStore::new();
        let net = Mlp::new(&mut store, &dims, Activation::Tanh, rng);
        let mut opt = Adam::new(config.lr);

        let n = x.rows();
        let bs = config.batch_size.clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..config.epochs {
            order.shuffle(rng);
            for chunk in order.chunks(bs) {
                let xb = Tensor::from_fn(chunk.len(), x.cols(), |r, c| x[(chunk[r], c)]);
                let yb = Tensor::from_fn(chunk.len(), 1, |r, _| targets[chunk[r]]);
                let mut g = Graph::new();
                let xv = g.constant(xb);
                let yv = g.constant(yb);
                let pred = net.forward(&store, &mut g, xv);
                let diff = g.sub(pred, yv);
                let sq = g.square(diff);
                let loss = g.mean_all(sq);
                g.backward(loss);
                opt.step(&mut store, &g.param_grads());
            }
        }
        Regressor {
            store,
            net,
            y_mean,
            y_std,
        }
    }

    /// Predicts targets for a batch of rows.
    pub fn predict(&self, x: &Tensor) -> Vec<f64> {
        let raw = self.net.predict(&self.store, x);
        raw.as_slice()
            .iter()
            .map(|&v| v * self.y_std + self.y_mean)
            .collect()
    }

    /// Predicts the target for a single point.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        self.predict(&Tensor::from_row(x))[0]
    }
}

/// A feed-forward binary classifier `R^D -> [0, 1]` trained with logistic
/// loss.
///
/// # Example
///
/// ```
/// use nofis_autograd::Tensor;
/// use nofis_nn::{Classifier, TrainConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let x = Tensor::from_fn(64, 1, |r, _| r as f64 / 32.0 - 1.0);
/// let labels: Vec<bool> = (0..64).map(|r| r >= 32).collect();
/// let model = Classifier::fit(&x, &labels, &[8], TrainConfig::default(), &mut rng);
/// assert!(model.predict_proba_one(&[0.9]) > 0.5);
/// assert!(model.predict_proba_one(&[-0.9]) < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct Classifier {
    store: ParamStore,
    net: Mlp,
}

impl Classifier {
    /// Trains a classifier on rows of `x` against boolean labels.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `labels.len() != x.rows()`.
    pub fn fit(
        x: &Tensor,
        labels: &[bool],
        hidden: &[usize],
        config: TrainConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(x.rows() > 0, "cannot fit a classifier on an empty dataset");
        assert_eq!(
            labels.len(),
            x.rows(),
            "label length must match sample count"
        );

        let mut dims = vec![x.cols()];
        dims.extend_from_slice(hidden);
        dims.push(1);
        let mut store = ParamStore::new();
        let net = Mlp::new(&mut store, &dims, Activation::Tanh, rng);
        let mut opt = Adam::new(config.lr);

        let n = x.rows();
        let bs = config.batch_size.clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..config.epochs {
            order.shuffle(rng);
            for chunk in order.chunks(bs) {
                let xb = Tensor::from_fn(chunk.len(), x.cols(), |r, c| x[(chunk[r], c)]);
                let yb = Tensor::from_fn(
                    chunk.len(),
                    1,
                    |r, _| if labels[chunk[r]] { 1.0 } else { 0.0 },
                );
                let mut g = Graph::new();
                let xv = g.constant(xb);
                let yv = g.constant(yb);
                let logits = net.forward(&store, &mut g, xv);
                // Stable BCE-with-logits: softplus(z) - y*z.
                let sp = g.softplus(logits);
                let yz = g.mul(yv, logits);
                let per_sample = g.sub(sp, yz);
                let loss = g.mean_all(per_sample);
                g.backward(loss);
                opt.step(&mut store, &g.param_grads());
            }
        }
        Classifier { store, net }
    }

    /// Predicted probabilities of the positive class, one per row of `x`.
    pub fn predict_proba(&self, x: &Tensor) -> Vec<f64> {
        let logits = self.net.predict(&self.store, x);
        logits
            .as_slice()
            .iter()
            .map(|&z| {
                if z >= 0.0 {
                    1.0 / (1.0 + (-z).exp())
                } else {
                    let e = z.exp();
                    e / (1.0 + e)
                }
            })
            .collect()
    }

    /// Predicted probability of the positive class for one point.
    pub fn predict_proba_one(&self, x: &[f64]) -> f64 {
        self.predict_proba(&Tensor::from_row(x))[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn regressor_learns_linear_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data_rng = StdRng::seed_from_u64(11);
        let data: Vec<f64> = (0..512)
            .map(|_| rand::Rng::gen_range(&mut data_rng, -1.0..1.0))
            .collect();
        let x = Tensor::from_vec(256, 2, data);
        let y: Vec<f64> = (0..256)
            .map(|r| 3.0 * x[(r, 0)] - x[(r, 1)] + 0.5)
            .collect();
        let model = Regressor::fit(&x, &y, &[16, 16], TrainConfig::default(), &mut rng);
        let pred = model.predict_one(&[0.5, -0.5]);
        assert!((pred - (1.5 + 0.5 + 0.5)).abs() < 0.25, "pred={pred}");
    }

    #[test]
    fn regressor_handles_constant_targets() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::from_fn(16, 1, |r, _| r as f64);
        let y = vec![5.0; 16];
        let model = Regressor::fit(
            &x,
            &y,
            &[4],
            TrainConfig {
                epochs: 5,
                ..Default::default()
            },
            &mut rng,
        );
        assert!((model.predict_one(&[3.0]) - 5.0).abs() < 0.5);
    }

    #[test]
    fn classifier_separates_halves() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::from_fn(100, 2, |r, c| {
            let t = r as f64 / 50.0 - 1.0;
            if c == 0 {
                t
            } else {
                (r % 7) as f64 / 7.0 - 0.5
            }
        });
        let labels: Vec<bool> = (0..100).map(|r| x[(r, 0)] > 0.0).collect();
        let model = Classifier::fit(&x, &labels, &[8], TrainConfig::default(), &mut rng);
        assert!(model.predict_proba_one(&[0.8, 0.0]) > 0.7);
        assert!(model.predict_proba_one(&[-0.8, 0.0]) < 0.3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn regressor_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Regressor::fit(
            &Tensor::zeros(0, 2),
            &[],
            &[4],
            TrainConfig::default(),
            &mut rng,
        );
    }
}
