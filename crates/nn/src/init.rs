//! Weight initialization schemes.

use nofis_autograd::Tensor;
use rand::Rng;
use rand_distr::StandardNormal;

/// Initialization scheme for linear layers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Init {
    /// Xavier/Glorot normal: `std = sqrt(2 / (fan_in + fan_out))`. Good for
    /// `tanh` networks — the default for the coupling nets.
    #[default]
    Xavier,
    /// He normal: `std = sqrt(2 / fan_in)`. Good for ReLU networks.
    He,
    /// All zeros. Coupling layers use zero-initialized *output* layers so
    /// the flow starts at the identity map.
    Zero,
    /// Gaussian with an explicit standard deviation.
    Normal(
        /// Standard deviation of each weight.
        f64,
    ),
}

impl Init {
    /// Samples a `rows x cols` weight tensor (`rows = fan_in`,
    /// `cols = fan_out` for our `x @ w` convention).
    pub fn sample(self, rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
        let std = match self {
            Init::Xavier => (2.0 / (rows + cols) as f64).sqrt(),
            Init::He => (2.0 / rows as f64).sqrt(),
            Init::Zero => return Tensor::zeros(rows, cols),
            Init::Normal(s) => s,
        };
        let mut t = Tensor::zeros(rows, cols);
        for v in t.as_mut_slice() {
            let z: f64 = rng.sample(StandardNormal);
            *v = std * z;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_scale_is_sane() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Init::Xavier.sample(100, 100, &mut rng);
        let var = t.as_slice().iter().map(|x| x * x).sum::<f64>() / t.len() as f64;
        let expected = 2.0 / 200.0;
        assert!((var - expected).abs() < expected * 0.2);
    }

    #[test]
    fn zero_init_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Init::Zero.sample(3, 4, &mut rng);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn explicit_normal_std() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Init::Normal(0.01).sample(50, 50, &mut rng);
        assert!(t.max_abs() < 0.1);
    }
}
