use crate::{Init, Linear};
use nofis_autograd::{Graph, ParamId, ParamStore, Var};
use rand::Rng;

/// Hidden-layer activation function of an [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Hyperbolic tangent (default; used by the coupling nets).
    #[default]
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Softplus.
    Softplus,
}

impl Activation {
    /// Applies the activation on the graph.
    pub fn apply(self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::Tanh => g.tanh(x),
            Activation::Relu => g.relu(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Softplus => g.softplus(x),
        }
    }
}

/// A multilayer perceptron with identical hidden activations and a linear
/// output layer.
///
/// The final linear layer can optionally be zero-initialized
/// ([`Mlp::new_zero_output`]), which RealNVP coupling nets use so the flow
/// starts as the identity transformation.
///
/// # Example
///
/// ```
/// use nofis_autograd::{Graph, ParamStore, Tensor};
/// use nofis_nn::{Activation, Mlp};
/// use rand::SeedableRng;
///
/// let mut store = ParamStore::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = Mlp::new(&mut store, &[4, 16, 1], Activation::Tanh, &mut rng);
/// let mut g = Graph::new();
/// let x = g.constant(Tensor::zeros(8, 4));
/// let y = net.forward(&store, &mut g, x);
/// assert_eq!(g.value(y).shape(), (8, 1));
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP with layer sizes `dims` (at least input and output).
    ///
    /// Hidden layers use Xavier initialization for `Tanh`/`Sigmoid` and He
    /// for `Relu`/`Softplus`.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() < 2` or any dimension is zero.
    pub fn new(
        store: &mut ParamStore,
        dims: &[usize],
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        Self::build(store, dims, activation, rng, false)
    }

    /// Like [`Mlp::new`] but zero-initializes the final linear layer so the
    /// network initially outputs zeros.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() < 2` or any dimension is zero.
    pub fn new_zero_output(
        store: &mut ParamStore,
        dims: &[usize],
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        Self::build(store, dims, activation, rng, true)
    }

    fn build(
        store: &mut ParamStore,
        dims: &[usize],
        activation: Activation,
        rng: &mut impl Rng,
        zero_output: bool,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        assert!(dims.iter().all(|&d| d > 0), "all MLP dims must be positive");
        let hidden_init = match activation {
            Activation::Tanh | Activation::Sigmoid => Init::Xavier,
            Activation::Relu | Activation::Softplus => Init::He,
        };
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let last = i == dims.len() - 2;
            let init = if last && zero_output {
                Init::Zero
            } else {
                hidden_init
            };
            layers.push(Linear::new(store, dims[i], dims[i + 1], init, rng));
        }
        Mlp { layers, activation }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim()
    }

    /// Applies the network to a batch `[N, in_dim]`.
    ///
    /// With `Tanh` hidden activations, each hidden layer runs as one fused
    /// `matmul+bias+tanh` tape op (when the graph has fusion enabled);
    /// other activations compose the linear layer with their own op.
    pub fn forward(&self, store: &ParamStore, g: &mut Graph, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            let hidden = i + 1 < self.layers.len();
            if hidden && self.activation == Activation::Tanh {
                h = layer.forward_tanh(store, g, h);
            } else {
                h = layer.forward(store, g, h);
                if hidden {
                    h = self.activation.apply(g, h);
                }
            }
        }
        h
    }

    /// All parameter ids of the network, layer by layer.
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.layers
            .iter()
            .flat_map(|l| l.param_ids().into_iter())
            .collect()
    }

    /// Evaluates the network on raw rows without building gradient state.
    ///
    /// Convenience for inference-heavy callers (e.g. the SIR baseline
    /// evaluating millions of surrogate samples).
    pub fn predict(
        &self,
        store: &ParamStore,
        x: &nofis_autograd::Tensor,
    ) -> nofis_autograd::Tensor {
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let y = self.forward(store, &mut g, xv);
        g.value(y).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_autograd::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_output_mlp_outputs_zero() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new_zero_output(&mut store, &[3, 8, 2], Activation::Tanh, &mut rng);
        let x = Tensor::from_fn(4, 3, |r, c| (r + c) as f64);
        let y = net.predict(&store, &x);
        assert_eq!(y.shape(), (4, 2));
        assert_eq!(y.max_abs(), 0.0);
    }

    #[test]
    fn param_count_matches_architecture() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(&mut store, &[2, 5, 3], Activation::Relu, &mut rng);
        // (2*5 + 5) + (5*3 + 3) scalars over 4 tensors
        assert_eq!(net.param_ids().len(), 4);
        assert_eq!(store.scalar_count(), 2 * 5 + 5 + 5 * 3 + 3);
        assert_eq!(net.in_dim(), 2);
        assert_eq!(net.out_dim(), 3);
    }

    #[test]
    fn all_activations_run() {
        for act in [
            Activation::Tanh,
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Softplus,
        ] {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(7);
            let net = Mlp::new(&mut store, &[2, 4, 1], act, &mut rng);
            let y = net.predict(&store, &Tensor::filled(3, 2, 0.5));
            assert!(y.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_dim() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Mlp::new(&mut store, &[3], Activation::Tanh, &mut rng);
    }
}
