//! Neural-network building blocks on top of [`nofis_autograd`].
//!
//! Provides the pieces NOFIS and its baselines need:
//!
//! * [`Linear`] / [`Mlp`] — fully connected layers with selectable
//!   [`Activation`] and [`Init`] schemes (including the zero-initialized
//!   output layers RealNVP coupling nets use to start at the identity).
//! * [`Adam`] — the optimizer, aware of frozen parameters so NOFIS can
//!   freeze earlier coupling blocks per training stage.
//! * [`Regressor`] / [`Classifier`] — surrogate-model training loops used
//!   by the SIR and SUC baselines of the paper's Table 1.
//!
//! # Example
//!
//! ```
//! use nofis_autograd::{Graph, ParamStore, Tensor};
//! use nofis_nn::{Activation, Adam, Mlp};
//! use rand::SeedableRng;
//!
//! let mut store = ParamStore::new();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = Mlp::new(&mut store, &[2, 8, 1], Activation::Tanh, &mut rng);
//! let mut opt = Adam::new(1e-2);
//! // one training step on a dummy batch
//! let mut g = Graph::new();
//! let x = g.constant(Tensor::zeros(4, 2));
//! let y = net.forward(&store, &mut g, x);
//! let sq = g.square(y);
//! let loss = g.mean_all(sq);
//! g.backward(loss);
//! opt.step(&mut store, &g.param_grads());
//! ```

#![deny(missing_docs)]

mod adam;
mod init;
mod linear;
mod mlp;
mod trainer;

pub use adam::{Adam, AdamState};
pub use init::Init;
pub use linear::Linear;
pub use mlp::{Activation, Mlp};
pub use trainer::{Classifier, Regressor, TrainConfig};
