use crate::Init;
use nofis_autograd::{Graph, ParamId, ParamStore, Tensor, Var};
use rand::Rng;

/// A fully connected layer computing `y = x @ W + b` for batched inputs.
///
/// # Example
///
/// ```
/// use nofis_autograd::{Graph, ParamStore, Tensor};
/// use nofis_nn::{Init, Linear};
/// use rand::SeedableRng;
///
/// let mut store = ParamStore::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let layer = Linear::new(&mut store, 3, 2, Init::Xavier, &mut rng);
/// let mut g = Graph::new();
/// let x = g.constant(Tensor::zeros(5, 3));
/// let y = layer.forward(&store, &mut g, x);
/// assert_eq!(g.value(y).shape(), (5, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a layer with weights drawn from `init` and zero biases,
    /// registering both tensors in `store`.
    pub fn new(
        store: &mut ParamStore,
        in_dim: usize,
        out_dim: usize,
        init: Init,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.add(init.sample(in_dim, out_dim, rng));
        let b = store.add(Tensor::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to a batch `[N, in_dim]`, producing `[N, out_dim]`.
    ///
    /// Uses the fused `matmul+bias` tape op when the graph has fusion
    /// enabled (the default); the unfused composition is bitwise identical.
    pub fn forward(&self, store: &ParamStore, g: &mut Graph, x: Var) -> Var {
        self.forward_impl(store, g, x, false)
    }

    /// Applies the layer followed by `tanh`, fused into a single tape op
    /// when the graph has fusion enabled. Bitwise identical to
    /// `g.tanh(self.forward(...))`.
    pub fn forward_tanh(&self, store: &ParamStore, g: &mut Graph, x: Var) -> Var {
        self.forward_impl(store, g, x, true)
    }

    fn forward_impl(&self, store: &ParamStore, g: &mut Graph, x: Var, apply_tanh: bool) -> Var {
        let w = store.inject(g, self.w);
        let b = store.inject(g, self.b);
        if g.fusion_enabled() {
            g.linear(x, w, b, apply_tanh)
        } else {
            let xw = g.matmul(x, w);
            let pre = g.add_row(xw, b);
            if apply_tanh {
                g.tanh(pre)
            } else {
                pre
            }
        }
    }

    /// The parameter ids `[weights, bias]` of this layer.
    pub fn param_ids(&self) -> [ParamId; 2] {
        [self.w, self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(&mut store, 2, 3, Init::Zero, &mut rng);
        store.get_mut(layer.param_ids()[1]).as_mut_slice()[1] = 7.0;

        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let y = layer.forward(&store, &mut g, x);
        assert_eq!(g.value(y).shape(), (2, 3));
        // zero weights -> output equals bias broadcast
        assert_eq!(g.value(y)[(0, 1)], 7.0);
        assert_eq!(g.value(y)[(1, 1)], 7.0);
        assert_eq!(g.value(y)[(1, 0)], 0.0);
    }

    #[test]
    fn gradients_reach_both_params() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(&mut store, 2, 1, Init::Xavier, &mut rng);

        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(3, 2, vec![1.0; 6]));
        let y = layer.forward(&store, &mut g, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        let grads = g.param_grads();
        assert_eq!(grads.len(), 2);
        let bias_grad = grads
            .iter()
            .find(|(id, _)| *id == layer.param_ids()[1])
            .unwrap();
        assert_eq!(bias_grad.1.as_slice(), &[3.0]);
    }
}
