//! Event records, field values, and the builder / span entry points.

use crate::{dispatch, enabled, epoch, Level};
use std::time::Instant;

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// A point-in-time occurrence.
    Event,
    /// A completed scope; `duration_us` is set.
    Span,
    /// A monotonic counter sample (field `value`).
    Counter,
    /// An instantaneous measurement (field `value`).
    Gauge,
}

impl Kind {
    /// Canonical lowercase name, as written in JSONL traces.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Event => "event",
            Kind::Span => "span",
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
        }
    }

    /// Parses a canonical kind name.
    pub fn parse(s: &str) -> Option<Kind> {
        match s {
            "event" => Some(Kind::Event),
            "span" => Some(Kind::Span),
            "counter" => Some(Kind::Counter),
            "gauge" => Some(Kind::Gauge),
            _ => None,
        }
    }
}

/// A typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, indices, byte sizes).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point. Non-finite values are serialized as the JSON
    /// strings `"NaN"`, `"inf"`, `"-inf"` (JSON has no literals for them).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short label (rung names, sources). Kept rare on hot paths.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One telemetry record, delivered to every interested [`Sink`](crate::Sink).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the process-wide telemetry epoch.
    pub ts_us: u64,
    /// Record kind.
    pub kind: Kind,
    /// Severity.
    pub level: Level,
    /// Dotted event name, e.g. `train.stage.start`.
    pub name: &'static str,
    /// Typed fields in emission order.
    pub fields: Vec<(&'static str, Value)>,
    /// Span duration; `Some` only for [`Kind::Span`].
    pub duration_us: Option<u64>,
}

impl Event {
    /// Looks up a field by key (first match).
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Field as `u64` (accepts `U64` and non-negative `I64`).
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Field as `f64` (accepts any numeric value).
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Field as `bool`.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        match self.field(key)? {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Field as string slice.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.field(key)? {
            Value::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Builder for a point event; obtained from [`event`], [`counter`], or
/// [`gauge`]. When telemetry is disabled at the requested level the
/// builder is inert and allocation-free (but field *arguments* are still
/// evaluated — guard expensive ones with [`enabled`]).
#[must_use = "an EventBuilder does nothing until .emit()"]
pub struct EventBuilder {
    inner: Option<Event>,
}

impl EventBuilder {
    /// Attaches a typed field.
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if let Some(ev) = &mut self.inner {
            ev.fields.push((key, value.into()));
        }
        self
    }

    /// Delivers the event to all interested sinks.
    pub fn emit(self) {
        if let Some(ev) = self.inner {
            dispatch(&ev);
        }
    }
}

/// Starts building a point event at `level` named `name`. Thread-local
/// context fields ([`crate::push_context`]) are prepended automatically.
pub fn event(level: Level, name: &'static str) -> EventBuilder {
    EventBuilder {
        inner: enabled(level).then(|| Event {
            ts_us: now_us(),
            kind: Kind::Event,
            level,
            name,
            fields: crate::context::snapshot(),
            duration_us: None,
        }),
    }
}

/// Emits-on-`emit()` a monotonic counter sample: `name{value}`.
pub fn counter(level: Level, name: &'static str, value: u64) -> EventBuilder {
    let mut b = event(level, name);
    if let Some(ev) = &mut b.inner {
        ev.kind = Kind::Counter;
        ev.fields.push(("value", Value::U64(value)));
    }
    b
}

/// Emits-on-`emit()` a gauge sample: `name{value}`.
pub fn gauge(level: Level, name: &'static str, value: f64) -> EventBuilder {
    let mut b = event(level, name);
    if let Some(ev) = &mut b.inner {
        ev.kind = Kind::Gauge;
        ev.fields.push(("value", Value::F64(value)));
    }
    b
}

/// A scoped measurement: records wall-clock duration from creation to
/// [`Span::end`] (or drop) and emits a [`Kind::Span`] event carrying any
/// fields attached along the way. Inert when telemetry is disabled.
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    level: Level,
    name: &'static str,
    start: Instant,
    start_us: u64,
    fields: Vec<(&'static str, Value)>,
}

/// Opens a span at `level` named `name`. Thread-local context fields
/// ([`crate::push_context`]) are prepended automatically.
pub fn span(level: Level, name: &'static str) -> Span {
    Span {
        inner: enabled(level).then(|| SpanInner {
            level,
            name,
            start: Instant::now(),
            start_us: now_us(),
            fields: crate::context::snapshot(),
        }),
    }
}

impl Span {
    /// Attaches a typed field to the eventual span event.
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
    }

    /// Whether the span is live (telemetry was enabled when it opened).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Closes the span now, emitting its event.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(inner) = self.inner.take() {
            let ev = Event {
                ts_us: inner.start_us,
                kind: Kind::Span,
                level: inner.level,
                name: inner.name,
                fields: inner.fields,
                duration_us: Some(inner.start.elapsed().as_micros() as u64),
            };
            dispatch(&ev);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{add_sink, remove_sink, MemorySink};
    use std::sync::Arc;

    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn builder_is_inert_when_disabled() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // No sinks registered in this scope: the builder must carry nothing.
        let b = event(Level::Error, "x").field("k", 1u64);
        assert!(b.inner.is_none());
        b.emit();
        let s = span(Level::Error, "y");
        assert!(!s.is_enabled());
        s.end();
    }

    #[test]
    fn span_measures_and_carries_fields() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sink = Arc::new(MemorySink::new(Level::Trace));
        let id = add_sink(sink.clone());
        let mut s = span(Level::Info, "stage");
        s.field("stage", 2u64);
        s.field("healthy", true);
        s.end();
        counter(Level::Debug, "calls", 42).emit();
        gauge(Level::Debug, "ess", 0.5).field("stage", 2u64).emit();
        remove_sink(id);
        let evs = sink.take();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, Kind::Span);
        assert_eq!(evs[0].u64_field("stage"), Some(2));
        assert_eq!(evs[0].bool_field("healthy"), Some(true));
        assert!(evs[0].duration_us.is_some());
        assert_eq!(evs[1].kind, Kind::Counter);
        assert_eq!(evs[1].u64_field("value"), Some(42));
        assert_eq!(evs[2].kind, Kind::Gauge);
        assert_eq!(evs[2].f64_field("value"), Some(0.5));
        assert_eq!(evs[2].u64_field("stage"), Some(2));
    }

    #[test]
    fn field_accessors_coerce_numerics() {
        let ev = Event {
            ts_us: 0,
            kind: Kind::Event,
            level: Level::Info,
            name: "t",
            fields: vec![
                ("u", Value::U64(7)),
                ("i", Value::I64(-3)),
                ("f", Value::F64(1.5)),
                ("s", Value::Str("rung".into())),
            ],
            duration_us: None,
        };
        assert_eq!(ev.u64_field("u"), Some(7));
        assert_eq!(ev.f64_field("i"), Some(-3.0));
        assert_eq!(ev.f64_field("u"), Some(7.0));
        assert_eq!(ev.u64_field("i"), None);
        assert_eq!(ev.str_field("s"), Some("rung"));
        assert_eq!(ev.field("missing"), None);
    }
}
