//! Reading and validating JSONL traces written by
//! [`JsonlSink`](crate::JsonlSink); the parsing half of the `nofis-trace`
//! tool, kept here so the schema's writer and reader live (and are
//! round-trip tested) in one crate.

use crate::json::{parse_json, Json};
use crate::{Kind, Level};

/// One parsed trace record (the reader-side mirror of
/// [`Event`](crate::Event), with owned names).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the emitting process's telemetry epoch.
    pub ts_us: u64,
    /// Record kind.
    pub kind: Kind,
    /// Severity.
    pub level: Level,
    /// Dotted event name.
    pub name: String,
    /// Fields in emission order.
    pub fields: Vec<(String, TraceValue)>,
    /// Span duration, for [`Kind::Span`] records.
    pub duration_us: Option<u64>,
}

/// A field value as read back from JSON. Numbers collapse to `f64`;
/// the strings `"NaN"`, `"inf"`, `"-inf"` decode to the corresponding
/// non-finite floats (matching the writer).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// Numeric field (including decoded non-finite floats).
    Num(f64),
    /// Boolean field.
    Bool(bool),
    /// String field.
    Str(String),
}

impl TraceValue {
    /// Numeric coercion.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TraceValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String coercion.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TraceValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

impl std::fmt::Display for TraceValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceValue::Num(n) => write!(f, "{n}"),
            TraceValue::Bool(b) => write!(f, "{b}"),
            TraceValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl TraceEvent {
    /// Field lookup (first match).
    pub fn field(&self, key: &str) -> Option<&TraceValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Field as `f64`.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(TraceValue::as_f64)
    }

    /// Field as `u64` (non-negative integral number).
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        let n = self.f64_field(key)?;
        (n >= 0.0 && n.fract() == 0.0).then_some(n as u64)
    }

    /// Field as string slice.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.field(key).and_then(TraceValue::as_str)
    }

    /// Field as bool.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        match self.field(key)? {
            TraceValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A schema violation in a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

fn trace_err(line: usize, message: impl Into<String>) -> TraceError {
    TraceError {
        line,
        message: message.into(),
    }
}

fn decode_value(v: &Json) -> Option<TraceValue> {
    match v {
        Json::Num(n) => Some(TraceValue::Num(*n)),
        Json::Bool(b) => Some(TraceValue::Bool(*b)),
        Json::Str(s) => Some(match s.as_str() {
            "NaN" => TraceValue::Num(f64::NAN),
            "inf" => TraceValue::Num(f64::INFINITY),
            "-inf" => TraceValue::Num(f64::NEG_INFINITY),
            _ => TraceValue::Str(s.clone()),
        }),
        _ => None,
    }
}

fn u64_member(doc: &Json, key: &str, line: usize) -> Result<u64, TraceError> {
    let n = doc
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| trace_err(line, format!("missing or non-numeric {key:?}")))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(trace_err(
            line,
            format!("{key:?} must be a non-negative integer"),
        ));
    }
    Ok(n as u64)
}

/// Parses and schema-validates one JSONL line (1-based `line` for error
/// reporting).
pub fn parse_line(text: &str, line: usize) -> Result<TraceEvent, TraceError> {
    let doc = parse_json(text).map_err(|e| trace_err(line, e.to_string()))?;
    let ts_us = u64_member(&doc, "ts_us", line)?;
    let kind_str = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| trace_err(line, "missing \"kind\""))?;
    let kind = Kind::parse(kind_str)
        .ok_or_else(|| trace_err(line, format!("unknown kind {kind_str:?}")))?;
    let level_str = doc
        .get("level")
        .and_then(Json::as_str)
        .ok_or_else(|| trace_err(line, "missing \"level\""))?;
    let level = Level::parse(level_str)
        .filter(|l| *l != Level::Off)
        .ok_or_else(|| trace_err(line, format!("unknown level {level_str:?}")))?;
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| trace_err(line, "missing \"name\""))?
        .to_string();
    if name.is_empty() {
        return Err(trace_err(line, "empty \"name\""));
    }
    let duration_us = match doc.get("duration_us") {
        None => None,
        Some(_) => Some(u64_member(&doc, "duration_us", line)?),
    };
    if (kind == Kind::Span) != duration_us.is_some() {
        return Err(trace_err(
            line,
            "\"duration_us\" must be present exactly for span records",
        ));
    }
    let fields_doc = doc
        .get("fields")
        .ok_or_else(|| trace_err(line, "missing \"fields\""))?;
    let members = match fields_doc {
        Json::Obj(members) => members,
        _ => return Err(trace_err(line, "\"fields\" must be an object")),
    };
    let mut fields = Vec::with_capacity(members.len());
    for (k, v) in members {
        let value = decode_value(v)
            .ok_or_else(|| trace_err(line, format!("field {k:?} has a non-scalar value")))?;
        fields.push((k.clone(), value));
    }
    if matches!(kind, Kind::Counter | Kind::Gauge) && !fields.iter().any(|(k, _)| k == "value") {
        return Err(trace_err(
            line,
            "counter/gauge records need a \"value\" field",
        ));
    }
    Ok(TraceEvent {
        ts_us,
        kind,
        level,
        name,
        fields,
        duration_us,
    })
}

/// Parses a whole JSONL trace (blank lines skipped), failing on the
/// first schema violation.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, TraceError> {
    let mut events = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        events.push(parse_line(raw, idx + 1)?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::event_to_json;
    use crate::{Event, Value};

    #[test]
    fn round_trips_writer_output() {
        let ev = Event {
            ts_us: 42,
            kind: Kind::Span,
            level: Level::Info,
            name: "train.stage",
            fields: vec![
                ("stage", Value::U64(1)),
                ("loss", Value::F64(f64::NAN)),
                ("rung", Value::Str("plain MC".into())),
                ("truncated", Value::Bool(true)),
            ],
            duration_us: Some(99),
        };
        let parsed = parse_line(&event_to_json(&ev), 1).unwrap();
        assert_eq!(parsed.ts_us, 42);
        assert_eq!(parsed.kind, Kind::Span);
        assert_eq!(parsed.level, Level::Info);
        assert_eq!(parsed.name, "train.stage");
        assert_eq!(parsed.duration_us, Some(99));
        assert_eq!(parsed.u64_field("stage"), Some(1));
        assert!(parsed.f64_field("loss").unwrap().is_nan());
        assert_eq!(parsed.str_field("rung"), Some("plain MC"));
        assert_eq!(parsed.bool_field("truncated"), Some(true));
    }

    #[test]
    fn rejects_schema_violations() {
        // Not JSON.
        assert!(parse_line("nope", 3).is_err());
        // Missing kind.
        assert!(parse_line(
            "{\"ts_us\":1,\"level\":\"info\",\"name\":\"x\",\"fields\":{}}",
            1
        )
        .is_err());
        // Unknown kind.
        assert!(parse_line(
            "{\"ts_us\":1,\"kind\":\"blob\",\"level\":\"info\",\"name\":\"x\",\"fields\":{}}",
            1
        )
        .is_err());
        // Span without duration.
        assert!(parse_line(
            "{\"ts_us\":1,\"kind\":\"span\",\"level\":\"info\",\"name\":\"x\",\"fields\":{}}",
            1
        )
        .is_err());
        // Non-span with duration.
        assert!(parse_line(
            "{\"ts_us\":1,\"kind\":\"event\",\"level\":\"info\",\"name\":\"x\",\"duration_us\":2,\"fields\":{}}",
            1
        )
        .is_err());
        // Counter without value field.
        assert!(parse_line(
            "{\"ts_us\":1,\"kind\":\"counter\",\"level\":\"info\",\"name\":\"x\",\"fields\":{\"other\":1}}",
            1
        )
        .is_err());
        // Negative timestamp.
        assert!(parse_line(
            "{\"ts_us\":-1,\"kind\":\"event\",\"level\":\"info\",\"name\":\"x\",\"fields\":{}}",
            1
        )
        .is_err());
        // Level off is not an event level.
        let e = parse_line(
            "{\"ts_us\":1,\"kind\":\"event\",\"level\":\"off\",\"name\":\"x\",\"fields\":{}}",
            7,
        )
        .unwrap_err();
        assert_eq!(e.line, 7);
    }

    #[test]
    fn parse_trace_skips_blank_lines_and_reports_line_numbers() {
        let good =
            "{\"ts_us\":1,\"kind\":\"event\",\"level\":\"info\",\"name\":\"a\",\"fields\":{}}";
        let text = format!("{good}\n\n{good}\n");
        assert_eq!(parse_trace(&text).unwrap().len(), 2);
        let bad = format!("{good}\nbroken\n");
        assert_eq!(parse_trace(&bad).unwrap_err().line, 2);
    }
}
