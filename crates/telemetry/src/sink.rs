//! Built-in sinks: pretty stderr, JSONL file, in-memory collector.

use crate::json::event_to_json;
use crate::{Event, Level};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A destination for telemetry events.
///
/// Sinks must be cheap and infallible from the caller's point of view:
/// `record` is called from hot code (possibly from multiple threads) and
/// must never panic or block on anything slower than a short mutex; I/O
/// errors are swallowed (telemetry must never take a run down).
pub trait Sink: Send + Sync {
    /// The most verbose level this sink wants; events below this severity
    /// threshold are filtered out before `record` is called.
    fn min_level(&self) -> Level;

    /// Delivers one event.
    fn record(&self, ev: &Event);

    /// Flushes any buffering. Default: no-op.
    fn flush(&self) {}
}

// ---------------------------------------------------------------------------
// StderrSink
// ---------------------------------------------------------------------------

/// Human-readable one-line-per-event sink on stderr.
///
/// Format: `[   1.234567s INFO ] train.stage.start stage=1 level=8 (+12.3ms)`
/// — timestamp since process start, level, name, `key=value` fields, and
/// a parenthesized duration for spans.
pub struct StderrSink {
    min_level: Level,
    // One writer lock so concurrent events produce whole lines.
    out: Mutex<()>,
}

impl StderrSink {
    /// A stderr sink accepting events at or above `min_level` severity.
    pub fn new(min_level: Level) -> Self {
        StderrSink {
            min_level,
            out: Mutex::new(()),
        }
    }

    fn format(ev: &Event) -> String {
        let secs = ev.ts_us as f64 / 1e6;
        let mut line = format!("[{secs:>11.6}s {:<5}] {}", ev.level.as_str(), ev.name);
        for (k, v) in &ev.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(&v.to_string());
        }
        if let Some(d) = ev.duration_us {
            line.push_str(&format!(" (+{:.3}ms)", d as f64 / 1e3));
        }
        line
    }
}

impl Sink for StderrSink {
    fn min_level(&self) -> Level {
        self.min_level
    }

    fn record(&self, ev: &Event) {
        let line = Self::format(ev);
        let _guard = self.out.lock().unwrap_or_else(|e| e.into_inner());
        // Ignore I/O errors: a closed stderr must not kill the run.
        let _ = writeln!(std::io::stderr(), "{line}");
    }
}

// ---------------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------------

/// Machine-readable sink: one JSON object per line, flushed per event so
/// the file is a valid (truncated) trace even if the process dies
/// mid-run. Accepts everything ([`Level::Trace`]) — a trace file is the
/// full record; filtering happens at read time.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn min_level(&self) -> Level {
        Level::Trace
    }

    fn record(&self, ev: &Event) {
        let line = event_to_json(ev);
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }

    fn flush(&self) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = w.flush();
    }
}

// ---------------------------------------------------------------------------
// MemorySink
// ---------------------------------------------------------------------------

/// Collects events in memory for test assertions.
pub struct MemorySink {
    min_level: Level,
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// A collector accepting events at or above `min_level` severity.
    pub fn new(min_level: Level) -> Self {
        MemorySink {
            min_level,
            events: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Recorded events with the given name (in order).
    pub fn named(&self, name: &str) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn min_level(&self) -> Level {
        self.min_level
    }

    fn record(&self, ev: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kind, Value};

    fn sample(name: &'static str, level: Level) -> Event {
        Event {
            ts_us: 1_234_567,
            kind: Kind::Event,
            level,
            name,
            fields: vec![("stage", Value::U64(1)), ("loss", Value::F64(-2.5))],
            duration_us: None,
        }
    }

    #[test]
    fn stderr_format_is_one_line() {
        let mut ev = sample("train.stage.start", Level::Info);
        ev.kind = Kind::Span;
        ev.duration_us = Some(2_500);
        let line = StderrSink::format(&ev);
        assert_eq!(
            line,
            "[   1.234567s info ] train.stage.start stage=1 loss=-2.5 (+2.500ms)"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn memory_sink_collects_and_filters_by_name() {
        let sink = MemorySink::new(Level::Debug);
        assert!(sink.is_empty());
        sink.record(&sample("a", Level::Info));
        sink.record(&sample("b", Level::Info));
        sink.record(&sample("a", Level::Warn));
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.named("a").len(), 2);
        assert_eq!(sink.events().len(), 3);
        assert_eq!(sink.take().len(), 3);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("nofis_telemetry_test");
        let path = dir.join("sink_test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&sample("x", Level::Info));
        sink.record(&sample("y", Level::Debug));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let doc = crate::json::parse_json(line).unwrap();
            assert!(doc.get("ts_us").is_some());
            assert!(doc.get("fields").is_some());
        }
        let _ = std::fs::remove_file(&path);
    }
}
