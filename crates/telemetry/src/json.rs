//! Minimal hand-rolled JSON writer and reader for the JSONL trace format.
//!
//! The workspace's vendored `serde` stand-in is serialize-only, and this
//! crate is dependency-free by design, so both directions live here: the
//! writer turns an [`Event`] into one JSON object per line, the reader
//! parses those lines back for `nofis-trace` and for round-trip tests.

use crate::{Event, Value};

/// Appends `s` JSON-escaped (without surrounding quotes) to `out`.
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn value_into(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` on f64 is the shortest round-trippable decimal form,
                // and a valid JSON number.
                out.push_str(&f.to_string());
            } else if f.is_nan() {
                out.push_str("\"NaN\"");
            } else if *f > 0.0 {
                out.push_str("\"inf\"");
            } else {
                out.push_str("\"-inf\"");
            }
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

/// Serializes one event as a single JSON object (no trailing newline).
pub fn event_to_json(ev: &Event) -> String {
    let mut out = String::with_capacity(96 + 24 * ev.fields.len());
    out.push_str("{\"ts_us\":");
    out.push_str(&ev.ts_us.to_string());
    out.push_str(",\"kind\":\"");
    out.push_str(ev.kind.as_str());
    out.push_str("\",\"level\":\"");
    out.push_str(ev.level.as_str());
    out.push_str("\",\"name\":\"");
    escape_into(&mut out, ev.name);
    out.push('"');
    if let Some(d) = ev.duration_us {
        out.push_str(",\"duration_us\":");
        out.push_str(&d.to_string());
    }
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in ev.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, k);
        out.push_str("\":");
        value_into(&mut out, v);
    }
    out.push_str("}}");
    out
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A parsed JSON value (reader side).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number. Integers beyond 2^53 lose precision; trace
    /// timestamps and counters stay far below that for realistic runs.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric coercion.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String coercion.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// A JSON parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse_json(input: &str) -> Result<Json, JsonParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after JSON value"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonParseError {
    JsonParseError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected {:?}", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> Result<Json, JsonParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected {lit:?}")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad utf-8"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, &format!("invalid number {text:?}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "utf-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kind, Level};

    #[test]
    fn writer_escapes_and_formats() {
        let ev = Event {
            ts_us: 12,
            kind: Kind::Event,
            level: Level::Warn,
            name: "a\"b",
            fields: vec![
                ("n", Value::U64(3)),
                ("x", Value::F64(-0.5)),
                ("nan", Value::F64(f64::NAN)),
                ("inf", Value::F64(f64::INFINITY)),
                ("ok", Value::Bool(true)),
                ("s", Value::Str("line\nbreak".into())),
            ],
            duration_us: None,
        };
        let line = event_to_json(&ev);
        assert_eq!(
            line,
            "{\"ts_us\":12,\"kind\":\"event\",\"level\":\"warn\",\"name\":\"a\\\"b\",\
             \"fields\":{\"n\":3,\"x\":-0.5,\"nan\":\"NaN\",\"inf\":\"inf\",\
             \"ok\":true,\"s\":\"line\\nbreak\"}}"
        );
    }

    #[test]
    fn writer_reader_round_trip() {
        let ev = Event {
            ts_us: 987654,
            kind: Kind::Span,
            level: Level::Info,
            name: "train.stage",
            fields: vec![
                ("stage", Value::U64(2)),
                ("best_loss", Value::F64(-3.25e-2)),
                ("truncated", Value::Bool(false)),
                ("rung", Value::Str("defensive mixture".into())),
            ],
            duration_us: Some(1500),
        };
        let parsed = parse_json(&event_to_json(&ev)).unwrap();
        assert_eq!(parsed.get("ts_us").unwrap().as_f64(), Some(987654.0));
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("span"));
        assert_eq!(parsed.get("duration_us").unwrap().as_f64(), Some(1500.0));
        let fields = parsed.get("fields").unwrap();
        assert_eq!(fields.get("stage").unwrap().as_f64(), Some(2.0));
        assert_eq!(fields.get("best_loss").unwrap().as_f64(), Some(-0.0325));
        assert_eq!(fields.get("truncated"), Some(&Json::Bool(false)));
        assert_eq!(
            fields.get("rung").unwrap().as_str(),
            Some("defensive mixture")
        );
    }

    #[test]
    fn parser_handles_structures_and_rejects_garbage() {
        let doc = parse_json("{\"a\":[1,2.5,null,\"x\\u0041\"],\"b\":{}}").unwrap();
        match doc.get("a").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items.len(), 4);
                assert_eq!(items[0].as_f64(), Some(1.0));
                assert_eq!(items[2], Json::Null);
                assert_eq!(items[3].as_str(), Some("xA"));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(parse_json("{\"a\":1} extra").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("01a").is_err());
    }
}
