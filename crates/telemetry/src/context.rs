//! Thread-local context fields, stamped onto every event the thread emits.
//!
//! The multi-job scheduler runs many NOFIS jobs in one process against one
//! trace file; without a per-record tag the trace is an uninterpretable
//! interleaving. [`push_context`] attaches a field (e.g. `job = 3`) to the
//! *current thread*: every [`event`](crate::event), [`span`](crate::span),
//! [`counter`](crate::counter), and [`gauge`](crate::gauge) created on this
//! thread while the guard lives carries the field, prepended before the
//! site's own fields. Guards nest and unwind in LIFO order on drop, so a
//! scheduler worker can tag a whole job execution with one scope.
//!
//! Context is thread-local by design: `nofis-parallel` helper threads do
//! not inherit the caller's context (events emitted from inside pool
//! chunks are rare and already carry their own identifying fields), and
//! keeping the lookup off the shared path keeps the disabled-telemetry
//! cost at one relaxed atomic load.

use crate::Value;
use std::cell::RefCell;

thread_local! {
    static CONTEXT: RefCell<Vec<(&'static str, Value)>> = const { RefCell::new(Vec::new()) };
}

/// Scope guard returned by [`push_context`]; dropping it removes the
/// field (and anything pushed after it on this thread, enforcing LIFO
/// scoping even under early returns and unwinds).
#[must_use = "the context field is removed when the guard drops"]
pub struct ContextGuard {
    restore_len: usize,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.borrow_mut().truncate(self.restore_len));
    }
}

/// Pushes a context field onto the current thread's stack; every telemetry
/// record created on this thread carries it until the returned guard
/// drops.
pub fn push_context(key: &'static str, value: impl Into<Value>) -> ContextGuard {
    CONTEXT.with(|c| {
        let mut stack = c.borrow_mut();
        let restore_len = stack.len();
        stack.push((key, value.into()));
        ContextGuard { restore_len }
    })
}

/// Snapshot of the current thread's context fields, oldest first (the
/// initial `fields` vector for a new event or span).
pub(crate) fn snapshot() -> Vec<(&'static str, Value)> {
    CONTEXT.with(|c| c.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_nest_and_unwind_lifo() {
        assert!(snapshot().is_empty());
        let g1 = push_context("job", 7u64);
        {
            let _g2 = push_context("attempt", 2u64);
            let snap = snapshot();
            assert_eq!(snap.len(), 2);
            assert_eq!(snap[0].0, "job");
            assert_eq!(snap[1].0, "attempt");
        }
        assert_eq!(snapshot().len(), 1);
        drop(g1);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn out_of_order_drop_still_restores() {
        let g1 = push_context("a", 1u64);
        let g2 = push_context("b", 2u64);
        // Dropping the outer guard first truncates past the inner one;
        // the inner drop is then a no-op (its restore point is gone).
        drop(g1);
        assert!(snapshot().is_empty());
        drop(g2);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn context_is_thread_local() {
        let _g = push_context("job", 1u64);
        let other = std::thread::spawn(|| snapshot().len()).join().unwrap();
        assert_eq!(other, 0);
        assert_eq!(snapshot().len(), 1);
    }
}
