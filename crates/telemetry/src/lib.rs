//! Structured telemetry for the NOFIS pipeline: spans, counters, gauges,
//! and events, fanned out to pluggable sinks.
//!
//! NOFIS's multi-stage schedule only works when every stage actually
//! converges before it freezes, and adaptive importance sampling fails
//! *quietly* when a proposal collapses. This crate gives every layer of
//! the workspace one uniform way to narrate what it is doing — per-stage
//! training progress, rollback decisions, fallback-ladder rungs, budget
//! spend, buffer-pool churn — without perturbing the computation.
//!
//! # Model
//!
//! * An [`Event`] is one timestamped record: a point event, a completed
//!   [`Span`] (with a duration), a monotonic counter sample, or a gauge
//!   sample. Fields are typed [`Value`]s keyed by `&'static str`.
//! * A [`Sink`] receives events. Built-ins: [`StderrSink`] (pretty
//!   one-line-per-event for humans), [`JsonlSink`] (one JSON object per
//!   line, machine-readable, consumed by the `nofis-trace` tool), and
//!   [`MemorySink`] (test assertions).
//! * Sinks register in a process-global registry ([`add_sink`] /
//!   [`remove_sink`]). [`init`] wires sinks from a [`Settings`] value plus
//!   the `NOFIS_LOG` / `NOFIS_TRACE_FILE` environment variables (env wins).
//!
//! # Disabled fast path
//!
//! When no sink is interested in a level, an instrumentation site costs a
//! single relaxed atomic load: the registry caches the maximum level any
//! sink accepts in an `AtomicU8`, and [`enabled`] compares against it.
//! [`event`]/[`span`]/[`counter`]/[`gauge`] all perform this check before
//! allocating anything. Callers whose *field expressions* are expensive
//! (formatting, `to_string`) should guard the whole site with
//! [`enabled`] — field arguments are evaluated eagerly.
//!
//! # Observe but never influence
//!
//! Telemetry records wall-clock timestamps and durations, but no value
//! read from the clock (or from any sink) ever feeds back into the
//! computation. Instrumented code takes the identical sequence of RNG
//! draws, oracle calls, and floating-point operations whether telemetry
//! is enabled or disabled — the golden-value and bitwise-determinism
//! suites run with it both on and off. See DESIGN.md §10.
//!
//! # Example
//!
//! ```
//! use nofis_telemetry as tele;
//! use std::sync::Arc;
//!
//! let sink = Arc::new(tele::MemorySink::new(tele::Level::Debug));
//! let id = tele::add_sink(sink.clone());
//!
//! let mut span = tele::span(tele::Level::Info, "train.stage");
//! span.field("stage", 1u64);
//! tele::event(tele::Level::Debug, "train.epoch")
//!     .field("epoch", 3u64)
//!     .field("loss", -1.25f64)
//!     .emit();
//! span.end();
//!
//! let events = sink.take();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].name, "train.epoch");
//! assert_eq!(events[1].name, "train.stage");
//! assert!(events[1].duration_us.is_some());
//! tele::remove_sink(id);
//! ```

#![deny(missing_docs)]

mod context;
mod event;
mod json;
mod sink;
pub mod trace;

pub use context::{push_context, ContextGuard};
pub use event::{counter, event, gauge, span, Event, EventBuilder, Kind, Span, Value};
pub use sink::{JsonlSink, MemorySink, Sink, StderrSink};

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Severity / verbosity of an event.
///
/// Ordered from most to least severe; a sink with `min_level = Info`
/// accepts `Error`, `Warn`, and `Info` events. `Off` never matches any
/// event and is only meaningful as a sink threshold / `NOFIS_LOG=off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// Nothing — used to silence a sink, never carried by an event.
    Off = 0,
    /// Unrecoverable failures (training diverged past retries, budget hit).
    Error = 1,
    /// Degraded-but-continuing conditions (rollback, ladder fallback).
    Warn = 2,
    /// Run / stage lifecycle: the default human-facing verbosity.
    Info = 3,
    /// Per-epoch progress and internal counters.
    Debug = 4,
    /// Per-step firehose (loss and grad-norm for every minibatch).
    Trace = 5,
}

impl Level {
    /// All levels an event can carry (excludes [`Level::Off`]).
    pub const EVENT_LEVELS: [Level; 5] = [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ];

    /// Canonical lowercase name (`"off"`, `"error"`, … `"trace"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name (case-insensitive; `"warning"` accepted for
    /// `"warn"`). Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Level {
    type Err = TelemetryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Level::parse(s).ok_or_else(|| TelemetryError::InvalidLevel { raw: s.to_string() })
    }
}

/// Errors raised while configuring telemetry (never while emitting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// A level name (e.g. from `NOFIS_LOG`) did not parse.
    InvalidLevel {
        /// The rejected input.
        raw: String,
    },
    /// The JSONL trace file could not be created.
    TraceFile {
        /// Path that failed to open.
        path: PathBuf,
        /// Stringified I/O error.
        message: String,
    },
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::InvalidLevel { raw } => write!(
                f,
                "invalid telemetry level {raw:?}: expected one of off, error, warn, info, debug, trace"
            ),
            TelemetryError::TraceFile { path, message } => {
                write!(f, "cannot open trace file {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

/// Sink selection carried on `NofisConfig` (and overridable from the
/// environment; see [`init`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Settings {
    /// Pretty per-event lines on stderr at this verbosity. `None` (the
    /// default) and `Some(Level::Off)` both mean no stderr sink.
    pub stderr: Option<Level>,
    /// Write a full-verbosity JSONL trace to this path.
    pub trace_file: Option<PathBuf>,
}

impl Settings {
    /// Stderr logging at `level`, no trace file.
    pub fn stderr(level: Level) -> Settings {
        Settings {
            stderr: Some(level),
            trace_file: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct SinkEntry {
    id: u64,
    sink: Arc<dyn Sink>,
}

/// Cached maximum level any registered sink accepts; the entire cost of a
/// disabled instrumentation site is one relaxed load of this.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);
static INIT_DONE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static RwLock<Vec<SinkEntry>> {
    static SINKS: OnceLock<RwLock<Vec<SinkEntry>>> = OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Process-start epoch; every `ts_us` is relative to this so traces from
/// one run share a zero point.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Opaque handle returned by [`add_sink`], used to [`remove_sink`] it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SinkId(u64);

/// Whether any registered sink accepts events at `level`.
///
/// This is the hot-path gate: one relaxed atomic load. Instrumentation
/// whose field expressions allocate or format should call this first.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed) && level != Level::Off
}

fn recompute_max_level(entries: &[SinkEntry]) {
    let max = entries
        .iter()
        .map(|e| e.sink.min_level() as u8)
        .max()
        .unwrap_or(0);
    MAX_LEVEL.store(max, Ordering::Relaxed);
}

/// Registers a sink; events at or above its `min_level` severity
/// threshold will be delivered to it from every thread.
pub fn add_sink(sink: Arc<dyn Sink>) -> SinkId {
    let mut entries = registry().write().unwrap_or_else(|e| e.into_inner());
    let id = NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed);
    entries.push(SinkEntry { id, sink });
    recompute_max_level(&entries);
    SinkId(id)
}

/// Unregisters a sink previously added with [`add_sink`]; returns whether
/// it was still registered. The sink is flushed on removal.
pub fn remove_sink(id: SinkId) -> bool {
    let mut entries = registry().write().unwrap_or_else(|e| e.into_inner());
    let before = entries.len();
    let mut removed: Option<Arc<dyn Sink>> = None;
    entries.retain(|e| {
        if e.id == id.0 {
            removed = Some(Arc::clone(&e.sink));
            false
        } else {
            true
        }
    });
    recompute_max_level(&entries);
    drop(entries);
    let was_registered = removed.is_some();
    if let Some(sink) = removed {
        sink.flush();
    }
    before > 0 && was_registered
}

/// Flushes every registered sink (buffered stderr / trace-file writers).
pub fn flush() {
    let entries = registry().read().unwrap_or_else(|e| e.into_inner());
    for e in entries.iter() {
        e.sink.flush();
    }
}

pub(crate) fn dispatch(ev: &Event) {
    let entries = registry().read().unwrap_or_else(|e| e.into_inner());
    for e in entries.iter() {
        if ev.level as u8 <= e.sink.min_level() as u8 {
            e.sink.record(ev);
        }
    }
}

// ---------------------------------------------------------------------------
// Initialization from Settings + environment
// ---------------------------------------------------------------------------

/// Resolves the effective settings: `NOFIS_LOG` overrides
/// `settings.stderr` (value `off` silences it), `NOFIS_TRACE_FILE`
/// overrides `settings.trace_file` (empty value means unset).
///
/// Exposed so configuration validation can reject a bad `NOFIS_LOG`
/// before a run starts.
pub fn resolve_settings(settings: &Settings) -> Result<Settings, TelemetryError> {
    let mut resolved = settings.clone();
    if let Ok(raw) = std::env::var("NOFIS_LOG") {
        if !raw.trim().is_empty() {
            resolved.stderr = Some(raw.parse::<Level>()?);
        }
    }
    if let Ok(raw) = std::env::var("NOFIS_TRACE_FILE") {
        if !raw.trim().is_empty() {
            resolved.trace_file = Some(PathBuf::from(raw));
        }
    }
    Ok(resolved)
}

/// Installs sinks according to `settings` plus environment overrides.
///
/// Idempotent per process: the first call wins and returns `Ok(true)`;
/// later calls return `Ok(false)` without touching the registry, so a
/// library entry point (e.g. `Nofis::new`) can call this unconditionally.
/// Sinks added directly via [`add_sink`] (tests) are unaffected.
///
/// Errors: invalid `NOFIS_LOG` value, or an unwritable trace file.
pub fn init(settings: &Settings) -> Result<bool, TelemetryError> {
    let resolved = resolve_settings(settings)?;
    if INIT_DONE.swap(true, Ordering::SeqCst) {
        return Ok(false);
    }
    if let Some(level) = resolved.stderr {
        if level != Level::Off {
            add_sink(Arc::new(StderrSink::new(level)));
        }
    }
    if let Some(path) = &resolved.trace_file {
        let sink = JsonlSink::create(path).map_err(|e| TelemetryError::TraceFile {
            path: path.clone(),
            message: e.to_string(),
        })?;
        add_sink(Arc::new(sink));
    }
    Ok(true)
}

/// Convenience for binaries: [`init`] with default settings, so only the
/// environment (`NOFIS_LOG`, `NOFIS_TRACE_FILE`) selects sinks.
pub fn init_from_env() -> Result<bool, TelemetryError> {
    init(&Settings::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry state is process-global; serialize the tests that mutate it.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn level_parse_round_trip() {
        for lvl in [
            Level::Off,
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(lvl.as_str()), Some(lvl));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse(" Info "), Some(Level::Info));
        assert_eq!(Level::parse("verbose"), None);
        assert!("loud".parse::<Level>().is_err());
    }

    #[test]
    fn disabled_sites_are_off_and_enabled_tracks_sinks() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled(Level::Off));
        let sink = Arc::new(MemorySink::new(Level::Info));
        let id = add_sink(sink.clone());
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        // The *global* gate is the max across sinks; per-sink filtering
        // happens at dispatch.
        assert!(!enabled(Level::Trace));
        event(Level::Debug, "dropped").emit();
        event(Level::Info, "kept").emit();
        assert!(remove_sink(id));
        assert!(!enabled(Level::Error));
        let events = sink.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "kept");
    }

    #[test]
    fn remove_unknown_sink_is_false() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!remove_sink(SinkId(u64::MAX)));
    }

    #[test]
    fn resolve_settings_prefers_env() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Env manipulation is racy across tests; scope it under the lock.
        std::env::set_var("NOFIS_LOG", "debug");
        std::env::set_var("NOFIS_TRACE_FILE", "/tmp/t.jsonl");
        let resolved = resolve_settings(&Settings::stderr(Level::Error)).unwrap();
        assert_eq!(resolved.stderr, Some(Level::Debug));
        assert_eq!(resolved.trace_file, Some(PathBuf::from("/tmp/t.jsonl")));
        std::env::set_var("NOFIS_LOG", "loud");
        assert!(matches!(
            resolve_settings(&Settings::default()),
            Err(TelemetryError::InvalidLevel { .. })
        ));
        std::env::remove_var("NOFIS_LOG");
        std::env::remove_var("NOFIS_TRACE_FILE");
        let resolved = resolve_settings(&Settings::stderr(Level::Warn)).unwrap();
        assert_eq!(resolved.stderr, Some(Level::Warn));
        assert_eq!(resolved.trace_file, None);
    }

    #[test]
    fn error_display_is_actionable() {
        let e = TelemetryError::InvalidLevel { raw: "loud".into() };
        assert!(e.to_string().contains("loud"));
        assert!(e.to_string().contains("trace"));
        let e = TelemetryError::TraceFile {
            path: PathBuf::from("/nope/x.jsonl"),
            message: "denied".into(),
        };
        assert!(e.to_string().contains("/nope/x.jsonl"));
    }
}
