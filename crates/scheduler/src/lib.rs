//! Supervised multi-job runtime for NOFIS (`nofis-jobs`).
//!
//! The paper runs one estimation at a time; a production yield service
//! multiplexes many seconds-long flow-training jobs in one process. This
//! crate supplies the supervision layer that keeps such a fleet healthy:
//!
//! * **Bounded priority queue with admission control.** [`JobRunner::submit`]
//!   never blocks and never grows without bound: when the queue is full the
//!   lowest-priority job is load-shed with a typed [`JobError::Shed`] —
//!   either a queued victim (making room for a more important newcomer) or
//!   the newcomer itself.
//! * **Fair-share pool lanes.** Every running job registers a
//!   [`LaneGuard`](nofis_parallel::LaneGuard) on the shared
//!   `nofis-parallel` pool, splitting the worker lanes between co-tenants
//!   instead of queueing whole jobs behind each other. Lane counts never
//!   affect computed values (DESIGN.md §8), so co-tenancy cannot perturb a
//!   job's results — the per-job determinism contract is locked by
//!   `tests/multi_job.rs`.
//! * **Panic isolation.** Each attempt runs under `catch_unwind`; a
//!   poisoned job terminates as [`JobError::Panicked`] without taking down
//!   co-tenants or the runner.
//! * **Deadlines via checkpoint-based preemption.** A wall-clock deadline
//!   (measured from submission) makes the supervisor request cooperative
//!   preemption ([`nofis_core::preempt`]); the training loop checkpoints at
//!   the next minibatch boundary and the job terminates as
//!   [`JobError::DeadlineExceeded`] — resumable later from its checkpoint,
//!   bitwise-identically to an uninterrupted run.
//! * **Retry with exponential backoff + jitter.** Transient failures
//!   ([`NofisError::is_transient`]) and panics re-enter the queue after a
//!   deterministic backoff; permanent failures terminate immediately.
//! * **Graceful shutdown.** [`JobRunner::shutdown`] either drains every
//!   queued and running job ([`ShutdownMode::Drain`]) or checkpoints and
//!   suspends them ([`ShutdownMode::Checkpoint`]); either way every
//!   submitted job reaches a terminal state.
//!
//! Checkpoints are namespaced per job (see
//! [`CheckpointConfig::namespace`](nofis_core::CheckpointConfig::namespace)):
//! jobs sharing one parent directory (e.g. a single `NOFIS_CKPT_DIR`)
//! cannot clobber each other's generations. The runner derives a namespace
//! from the job id and seed when the caller did not choose one; jobs meant
//! to be *resumed across runner instances* should set an explicit, stable
//! namespace.
//!
//! Job lifecycle is narrated through `nofis-telemetry` (`job.submit`,
//! `job.start`, `job.retry`, `job.end`) with a `job` field on every record
//! — including records emitted inside the training loop, via
//! [`nofis_telemetry::push_context`] — so `nofis-trace summary --by-job`
//! can reconstruct a per-job table from one shared trace.

#![deny(missing_docs)]

use nofis_core::preempt::{self, PreemptReason, PreemptToken};
use nofis_core::{CheckpointConfig, Nofis, NofisConfig, NofisError};
use nofis_prob::{IsResult, LimitState};
use nofis_telemetry as tele;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex ignoring poisoning (the runner's state transitions are
/// exception-safe, and job panics are already contained per attempt).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Specs and policies
// ---------------------------------------------------------------------------

/// Retry policy for transient failures (and panics): attempt `n`'s re-entry
/// is delayed by `base · 2ⁿ` capped at `cap`, plus a deterministic jitter
/// of up to 25% derived from the job's seed — co-tenant retry storms
/// de-synchronize without any global randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on the exponential backoff (jitter may add up to 25%).
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// No retries: any failure is terminal on the first attempt.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..Default::default()
        }
    }

    /// The backoff before re-queueing after failed attempt `attempt`
    /// (0-based), jittered deterministically by `seed`.
    pub fn backoff(&self, attempt: u32, seed: u64) -> Duration {
        let base_ms = self.base.as_millis().min(u128::from(u64::MAX)) as u64;
        let cap_ms = self.cap.as_millis().min(u128::from(u64::MAX)) as u64;
        let exp_ms = base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(cap_ms.max(base_ms));
        let jitter_ms = if exp_ms == 0 {
            0
        } else {
            splitmix64(seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                % (exp_ms / 4 + 1)
        };
        Duration::from_millis(exp_ms + jitter_ms)
    }
}

/// SplitMix64: a tiny, high-quality mixing function for deterministic
/// jitter (no global RNG state, no clock).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One unit of work for the runner: a testcase, its configuration, and the
/// supervision envelope (priority, deadline, retry policy).
#[derive(Clone)]
pub struct JobSpec {
    /// Human-readable label carried on every lifecycle event.
    pub name: String,
    /// Training/estimation configuration (validated by `Nofis::new` at
    /// attempt start; an invalid config terminates as a permanent
    /// [`JobError::Failed`]).
    pub config: NofisConfig,
    /// The limit state to estimate. Shared, since retries and co-tenant
    /// scheduling may evaluate it from different worker threads over time.
    pub limit_state: Arc<dyn LimitState + Send + Sync>,
    /// RNG seed; with identical config + seed a job's results are bitwise
    /// reproducible regardless of co-tenants.
    pub seed: u64,
    /// Higher runs (and survives shedding) first. Ties keep submission
    /// order.
    pub priority: u8,
    /// Wall-clock deadline measured from submission. Expiring while queued
    /// terminates the job without running it; expiring while running
    /// triggers checkpoint-based preemption at the next minibatch boundary.
    pub deadline: Option<Duration>,
    /// Retry policy for transient failures and panics.
    pub retry: RetryPolicy,
}

impl JobSpec {
    /// A spec with default priority (0), no deadline, and the default
    /// retry policy.
    pub fn new(
        name: impl Into<String>,
        config: NofisConfig,
        limit_state: Arc<dyn LimitState + Send + Sync>,
        seed: u64,
    ) -> Self {
        JobSpec {
            name: name.into(),
            config,
            limit_state,
            seed,
            priority: 0,
            deadline: None,
            retry: RetryPolicy::default(),
        }
    }
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("seed", &self.seed)
            .field("priority", &self.priority)
            .field("deadline", &self.deadline)
            .field("retry", &self.retry)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Job identity, outcome, handle
// ---------------------------------------------------------------------------

/// Runner-assigned job identity (dense, starting at 1). Also the `job`
/// field on every telemetry record the job emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Terminal failure states of a supervised job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// Rejected by admission control: the queue was full and this job (or
    /// the victim it replaced) had the lowest priority. Never ran.
    Shed {
        /// The queue capacity that was exceeded.
        capacity: usize,
    },
    /// The wall-clock deadline expired. When `checkpointed` is true the
    /// run was preempted at a minibatch boundary with a durable checkpoint
    /// and can be resumed later (same config + seed + checkpoint
    /// namespace) bitwise-identically.
    DeadlineExceeded {
        /// Whether a resume checkpoint covering the preemption point
        /// exists.
        checkpointed: bool,
    },
    /// Preempted by a [`ShutdownMode::Checkpoint`] shutdown (or never
    /// started before one). Resumable like a deadline preemption when
    /// `checkpointed` is true.
    Suspended {
        /// Whether a resume checkpoint covering the preemption point
        /// exists.
        checkpointed: bool,
    },
    /// The job panicked on every allowed attempt. Co-tenants and the
    /// runner are unaffected.
    Panicked {
        /// The final panic payload, stringified.
        message: String,
    },
    /// The pipeline returned a typed error and retries (if any) were
    /// exhausted or the error was permanent.
    Failed {
        /// The final error.
        error: NofisError,
        /// Attempts that were made (1 = failed on the first try).
        attempts: u32,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Shed { capacity } => {
                write!(f, "shed by admission control (queue capacity {capacity})")
            }
            JobError::DeadlineExceeded { checkpointed } => write!(
                f,
                "deadline exceeded{}",
                if *checkpointed {
                    "; checkpointed, resumable"
                } else {
                    "; no checkpoint"
                }
            ),
            JobError::Suspended { checkpointed } => write!(
                f,
                "suspended by shutdown{}",
                if *checkpointed {
                    "; checkpointed, resumable"
                } else {
                    "; no checkpoint"
                }
            ),
            JobError::Panicked { message } => write!(f, "job panicked: {message}"),
            JobError::Failed { error, attempts } => {
                write!(f, "failed after {attempts} attempt(s): {error}")
            }
        }
    }
}

impl std::error::Error for JobError {}

impl JobError {
    /// Stable outcome keyword, as written to the `job.end` event.
    fn outcome(&self) -> &'static str {
        match self {
            JobError::Shed { .. } => "shed",
            JobError::DeadlineExceeded { .. } => "deadline",
            JobError::Suspended { .. } => "suspended",
            JobError::Panicked { .. } => "panicked",
            JobError::Failed { .. } => "failed",
        }
    }
}

/// A finished job: the importance-sampling estimate, or a typed terminal
/// error.
pub type JobResult = Result<IsResult, JobError>;

struct JobShared {
    name: String,
    result: Mutex<Option<JobResult>>,
    done: Condvar,
}

impl JobShared {
    fn new(name: String) -> Self {
        JobShared {
            name,
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn resolve(&self, result: JobResult) {
        let mut slot = lock(&self.result);
        if slot.is_none() {
            *slot = Some(result);
        }
        self.done.notify_all();
    }
}

/// Caller-side handle to a submitted job.
#[derive(Clone)]
pub struct JobHandle {
    id: JobId,
    shared: Arc<JobShared>,
}

impl JobHandle {
    /// The runner-assigned id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The name from the [`JobSpec`].
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Blocks until the job reaches a terminal state.
    pub fn wait(&self) -> JobResult {
        let mut slot = lock(&self.shared.result);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self
                .shared
                .done
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The terminal result, if the job already reached one.
    pub fn try_result(&self) -> Option<JobResult> {
        lock(&self.shared.result).clone()
    }
}

// ---------------------------------------------------------------------------
// Runner configuration and shared state
// ---------------------------------------------------------------------------

/// Sizing of a [`JobRunner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Jobs executed concurrently (worker threads; min 1). Each running
    /// job holds one fair-share lane registration on the shared pool.
    pub workers: usize,
    /// Bound on *queued* (not yet running) jobs; admission control sheds
    /// beyond it, so memory use is bounded no matter the submit rate.
    pub queue_capacity: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            workers: 2,
            queue_capacity: 64,
        }
    }
}

/// How [`JobRunner::shutdown`] treats work in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop admitting, then let every queued and running job (including
    /// pending retries) finish normally.
    Drain,
    /// Stop admitting, resolve queued jobs as [`JobError::Suspended`]
    /// (never started, no checkpoint), and preempt running jobs so they
    /// checkpoint at the next minibatch boundary and terminate as
    /// [`JobError::Suspended`] with a resume point.
    Checkpoint,
}

struct QueuedJob {
    id: JobId,
    spec: JobSpec,
    shared: Arc<JobShared>,
    attempt: u32,
    ready_at: Instant,
    deadline_at: Option<Instant>,
}

struct RunningJob {
    id: JobId,
    token: PreemptToken,
    deadline_at: Option<Instant>,
}

struct QueueState {
    queue: Vec<QueuedJob>,
    running: Vec<RunningJob>,
    shutdown: Option<ShutdownMode>,
    stop_supervisor: bool,
}

struct RunnerInner {
    state: Mutex<QueueState>,
    wake: Condvar,
    capacity: usize,
    next_id: AtomicU64,
    pool: &'static nofis_parallel::ThreadPool,
}

impl RunnerInner {
    fn finish(&self, id: JobId, shared: &JobShared, attempts: u32, result: JobResult) {
        let (level, outcome) = match &result {
            Ok(_) => (tele::Level::Info, "done"),
            Err(e) => (tele::Level::Warn, e.outcome()),
        };
        let mut ev = tele::event(level, "job.end")
            .field("job", id.0)
            .field("name", shared.name.as_str())
            .field("outcome", outcome)
            .field("attempts", attempts);
        match &result {
            Ok(r) => ev = ev.field("estimate", r.estimate),
            Err(JobError::DeadlineExceeded { checkpointed })
            | Err(JobError::Suspended { checkpointed }) => {
                ev = ev.field("checkpointed", *checkpointed);
            }
            Err(JobError::Failed { error, .. }) => {
                ev = ev.field("error", error.to_string().as_str());
            }
            Err(JobError::Panicked { message }) => {
                ev = ev.field("error", message.as_str());
            }
            Err(JobError::Shed { .. }) => {}
        }
        ev.emit();
        shared.resolve(result);
    }
}

// ---------------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------------

/// A supervised multi-job runtime: submit [`JobSpec`]s, get
/// [`JobHandle`]s, and let the runner multiplex the shared
/// `nofis-parallel` pool between them. See the crate docs for the
/// supervision guarantees.
pub struct JobRunner {
    inner: Arc<RunnerInner>,
    workers: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl JobRunner {
    /// Starts `config.workers` worker threads and the deadline supervisor.
    pub fn new(config: RunnerConfig) -> Self {
        // Best-effort environment hookup (both are one-shot per process) so
        // submit-time telemetry and the `JobSubmit` fault seam work before
        // any job constructs `Nofis`; a malformed environment still
        // surfaces per job as a typed config error from `Nofis::new`.
        let _ = tele::init(&tele::Settings::default());
        let _ = nofis_faults::init_from_env();
        let inner = Arc::new(RunnerInner {
            state: Mutex::new(QueueState {
                queue: Vec::new(),
                running: Vec::new(),
                shutdown: None,
                stop_supervisor: false,
            }),
            wake: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            next_id: AtomicU64::new(1),
            pool: nofis_parallel::global(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("nofis-job-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("failed to spawn nofis-jobs worker")
            })
            .collect();
        let supervisor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("nofis-job-deadline".to_string())
                .spawn(move || supervisor_loop(&inner))
                .expect("failed to spawn nofis-jobs deadline supervisor")
        };
        JobRunner {
            inner,
            workers,
            supervisor: Some(supervisor),
        }
    }

    /// Submits a job. Never blocks; the returned handle always reaches a
    /// terminal state — immediately [`JobError::Shed`] when admission
    /// rejects it (queue full and nothing lower-priority to evict, or the
    /// runner is shutting down).
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        let inner = &self.inner;
        let id = JobId(inner.next_id.fetch_add(1, Ordering::Relaxed));
        let shared = Arc::new(JobShared::new(spec.name.clone()));
        let handle = JobHandle {
            id,
            shared: Arc::clone(&shared),
        };

        // Fault seam: a scheduled QueueOverflow makes admission treat the
        // queue as full, exercising the shedding path on demand.
        let mut force_full = false;
        if nofis_faults::active() {
            if let Some(kind @ nofis_faults::FaultKind::QueueOverflow) =
                nofis_faults::check(nofis_faults::Site::JobSubmit)
            {
                tele::event(tele::Level::Warn, "fault.injected")
                    .field("site", nofis_faults::Site::JobSubmit.as_str())
                    .field("kind", kind.as_str())
                    .field("job", id.0)
                    .emit();
                force_full = true;
            }
        }

        let mut st = lock(&inner.state);
        tele::event(tele::Level::Info, "job.submit")
            .field("job", id.0)
            .field("name", spec.name.as_str())
            .field("priority", u64::from(spec.priority))
            .field("queue_len", st.queue.len())
            .emit();
        if st.shutdown.is_some() {
            drop(st);
            inner.finish(
                id,
                &shared,
                0,
                Err(JobError::Shed {
                    capacity: inner.capacity,
                }),
            );
            return handle;
        }
        if force_full || st.queue.len() >= inner.capacity {
            // Evict the lowest-priority queued job (newest among ties) iff
            // the newcomer outranks it strictly; otherwise shed the
            // newcomer. Running jobs are never evicted.
            let victim_idx = st
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (j.spec.priority, std::cmp::Reverse(j.id.0)))
                .map(|(idx, _)| idx);
            match victim_idx {
                Some(idx) if st.queue[idx].spec.priority < spec.priority => {
                    let victim = st.queue.remove(idx);
                    drop(st);
                    inner.finish(
                        victim.id,
                        &victim.shared,
                        victim.attempt,
                        Err(JobError::Shed {
                            capacity: inner.capacity,
                        }),
                    );
                    st = lock(&inner.state);
                }
                _ => {
                    drop(st);
                    inner.finish(
                        id,
                        &shared,
                        0,
                        Err(JobError::Shed {
                            capacity: inner.capacity,
                        }),
                    );
                    return handle;
                }
            }
        }
        let now = Instant::now();
        st.queue.push(QueuedJob {
            id,
            spec,
            shared,
            attempt: 0,
            ready_at: now,
            deadline_at: None,
        });
        let job = st.queue.last_mut().expect("just pushed");
        job.deadline_at = job.spec.deadline.map(|d| now + d);
        drop(st);
        inner.wake.notify_all();
        handle
    }

    /// Stops the runner: no new admissions, then either drain or
    /// checkpoint-and-suspend everything in flight (see [`ShutdownMode`]).
    /// Blocks until every worker has exited; afterwards every submitted
    /// job's handle holds a terminal result.
    pub fn shutdown(mut self, mode: ShutdownMode) {
        self.do_shutdown(mode);
    }

    fn do_shutdown(&mut self, mode: ShutdownMode) {
        let suspended: Vec<QueuedJob> = {
            let mut st = lock(&self.inner.state);
            if st.shutdown.is_none() {
                st.shutdown = Some(mode);
            }
            let drained = if mode == ShutdownMode::Checkpoint {
                for r in &st.running {
                    r.token.request(PreemptReason::Shutdown);
                }
                std::mem::take(&mut st.queue)
            } else {
                Vec::new()
            };
            self.inner.wake.notify_all();
            drained
        };
        for job in suspended {
            self.inner.finish(
                job.id,
                &job.shared,
                job.attempt,
                Err(JobError::Suspended {
                    checkpointed: false,
                }),
            );
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        {
            let mut st = lock(&self.inner.state);
            st.stop_supervisor = true;
            self.inner.wake.notify_all();
        }
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for JobRunner {
    /// Dropping without an explicit [`JobRunner::shutdown`] performs a
    /// [`ShutdownMode::Checkpoint`] shutdown so no job is left hanging.
    fn drop(&mut self) {
        self.do_shutdown(ShutdownMode::Checkpoint);
    }
}

// ---------------------------------------------------------------------------
// Worker and supervisor loops
// ---------------------------------------------------------------------------

enum Pick {
    Job(Box<QueuedJob>),
    Wait(Option<Duration>),
    Exit,
}

fn pick(inner: &RunnerInner, st: &mut QueueState) -> Pick {
    let now = Instant::now();
    // Expire queued jobs whose deadline passed before they ever ran:
    // graceful degradation terminates them instead of wasting a lane.
    let mut i = 0;
    while i < st.queue.len() {
        if st.queue[i].deadline_at.is_some_and(|dl| now >= dl) {
            let job = st.queue.remove(i);
            inner.finish(
                job.id,
                &job.shared,
                job.attempt,
                Err(JobError::DeadlineExceeded {
                    checkpointed: false,
                }),
            );
        } else {
            i += 1;
        }
    }
    // Highest priority ready job; ties keep submission (id) order.
    let best = st
        .queue
        .iter()
        .enumerate()
        .filter(|(_, j)| j.ready_at <= now)
        .max_by_key(|(_, j)| (j.spec.priority, std::cmp::Reverse(j.id.0)))
        .map(|(idx, _)| idx);
    if let Some(idx) = best {
        return Pick::Job(Box::new(st.queue.remove(idx)));
    }
    if st.queue.is_empty() && st.shutdown.is_some() {
        return Pick::Exit;
    }
    // Nothing ready: sleep until the earliest backoff expiry or queued
    // deadline, or indefinitely until submit/completion wakes us.
    let next = st
        .queue
        .iter()
        .flat_map(|j| [Some(j.ready_at), j.deadline_at])
        .flatten()
        .min();
    Pick::Wait(next.map(|t| t.saturating_duration_since(now)))
}

fn worker_loop(inner: &RunnerInner) {
    let mut st = lock(&inner.state);
    loop {
        match pick(inner, &mut st) {
            Pick::Exit => return,
            Pick::Job(job) => {
                let job = *job;
                let token = PreemptToken::new();
                st.running.push(RunningJob {
                    id: job.id,
                    token: token.clone(),
                    deadline_at: job.deadline_at,
                });
                drop(st);
                inner.wake.notify_all(); // the supervisor tracks `running`
                execute(inner, job, token);
                st = lock(&inner.state);
            }
            Pick::Wait(timeout) => {
                st = match timeout {
                    Some(t) => {
                        inner
                            .wake
                            .wait_timeout(st, t)
                            .unwrap_or_else(|e| e.into_inner())
                            .0
                    }
                    None => inner.wake.wait(st).unwrap_or_else(|e| e.into_inner()),
                };
            }
        }
    }
}

fn supervisor_loop(inner: &RunnerInner) {
    let mut st = lock(&inner.state);
    loop {
        if st.stop_supervisor {
            return;
        }
        let now = Instant::now();
        let mut next: Option<Instant> = None;
        for r in &st.running {
            if let Some(dl) = r.deadline_at {
                if now >= dl {
                    r.token.request(PreemptReason::Deadline);
                } else {
                    next = Some(next.map_or(dl, |n| n.min(dl)));
                }
            }
        }
        st = match next {
            Some(at) => {
                inner
                    .wake
                    .wait_timeout(st, at.saturating_duration_since(now))
                    .unwrap_or_else(|e| e.into_inner())
                    .0
            }
            None => inner.wake.wait(st).unwrap_or_else(|e| e.into_inner()),
        };
    }
}

/// The per-attempt checkpoint configuration: every job gets its own
/// namespace under the shared directory unless the caller pinned one —
/// including when checkpointing is only enabled through `NOFIS_CKPT_DIR`
/// (pre-seeded here so `Nofis::new`'s env application cannot leave two
/// jobs sharing a directory).
fn namespaced_config(spec: &JobSpec, id: JobId) -> NofisConfig {
    let mut cfg = spec.config.clone();
    if cfg.checkpoint.is_none() {
        if let Ok(dir) = std::env::var("NOFIS_CKPT_DIR") {
            if !dir.is_empty() {
                cfg.checkpoint = Some(CheckpointConfig::new(dir));
            }
        }
    }
    if let Some(ckpt) = &mut cfg.checkpoint {
        if ckpt.namespace.is_none() {
            // Seed is part of the key: a later runner re-assigning the same
            // id to a *different* job (other seed) lands in a different
            // directory instead of resuming the wrong run.
            ckpt.namespace = Some(format!("{}-s{}", id.0, spec.seed));
        }
    }
    cfg
}

fn execute(inner: &RunnerInner, job: QueuedJob, token: PreemptToken) {
    tele::event(tele::Level::Info, "job.start")
        .field("job", job.id.0)
        .field("name", job.spec.name.as_str())
        .field("attempt", job.attempt)
        .emit();

    // Fault seams at attempt start: a poisoned job (panic inside the
    // isolation boundary) or a deadline storm (the token is preempted
    // before the first minibatch, deterministically exercising
    // checkpoint-based preemption).
    let mut poison = false;
    if nofis_faults::active() {
        match nofis_faults::check(nofis_faults::Site::JobStart) {
            Some(kind @ nofis_faults::FaultKind::JobPanic) => {
                tele::event(tele::Level::Warn, "fault.injected")
                    .field("site", nofis_faults::Site::JobStart.as_str())
                    .field("kind", kind.as_str())
                    .field("job", job.id.0)
                    .emit();
                poison = true;
            }
            Some(kind @ nofis_faults::FaultKind::DeadlineStorm) => {
                tele::event(tele::Level::Warn, "fault.injected")
                    .field("site", nofis_faults::Site::JobStart.as_str())
                    .field("kind", kind.as_str())
                    .field("job", job.id.0)
                    .emit();
                token.request(PreemptReason::Deadline);
            }
            _ => {}
        }
    }

    let cfg = namespaced_config(&job.spec, job.id);
    let limit_state = Arc::clone(&job.spec.limit_state);
    let seed = job.spec.seed;
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<IsResult, NofisError> {
        // Fair-share lane registration + per-job telemetry tagging +
        // preemption scope, all released on unwind too.
        let _lane = inner.pool.lane_guard();
        let _tag = tele::push_context("job", job.id.0);
        let _scope = preempt::attach(&token);
        if poison {
            panic!("injected fault: job panic (nofis-faults)");
        }
        let nofis = Nofis::new(cfg)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, result) = nofis.run_or_resume(limit_state.as_ref(), &mut rng)?;
        Ok(result)
    }));

    {
        let mut st = lock(&inner.state);
        st.running.retain(|r| r.id != job.id);
    }
    inner.wake.notify_all();

    let attempts = job.attempt + 1;
    let retryable = |job: &QueuedJob| job.attempt < job.spec.retry.max_retries;
    match outcome {
        Ok(Ok(result)) => inner.finish(job.id, &job.shared, attempts, Ok(result)),
        Ok(Err(NofisError::Preempted {
            checkpointed,
            reason,
            ..
        })) => {
            let error = if reason == PreemptReason::Shutdown.as_str() {
                JobError::Suspended { checkpointed }
            } else {
                JobError::DeadlineExceeded { checkpointed }
            };
            inner.finish(job.id, &job.shared, attempts, Err(error));
        }
        Ok(Err(error)) if error.is_transient() && retryable(&job) => {
            requeue(inner, job, error.to_string());
        }
        Ok(Err(error)) => {
            inner.finish(
                job.id,
                &job.shared,
                attempts,
                Err(JobError::Failed { error, attempts }),
            );
        }
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            if retryable(&job) {
                requeue(inner, job, format!("panic: {message}"));
            } else {
                inner.finish(
                    job.id,
                    &job.shared,
                    attempts,
                    Err(JobError::Panicked { message }),
                );
            }
        }
    }
}

fn requeue(inner: &RunnerInner, mut job: QueuedJob, error: String) {
    let backoff = job.spec.retry.backoff(job.attempt, job.spec.seed);
    tele::event(tele::Level::Warn, "job.retry")
        .field("job", job.id.0)
        .field("name", job.spec.name.as_str())
        .field("attempt", job.attempt)
        .field(
            "backoff_ms",
            backoff.as_millis().min(u128::from(u64::MAX)) as u64,
        )
        .field("error", error.as_str())
        .emit();
    job.attempt += 1;
    job.ready_at = Instant::now() + backoff;
    let mut st = lock(&inner.state);
    // Retries bypass admission control: the job already holds its queue
    // slot conceptually, and shedding a half-done job on re-entry would
    // make backoff self-defeating. A Checkpoint shutdown that raced the
    // retry suspends it instead.
    if st.shutdown == Some(ShutdownMode::Checkpoint) {
        drop(st);
        inner.finish(
            job.id,
            &job.shared,
            job.attempt,
            Err(JobError::Suspended {
                checkpointed: false,
            }),
        );
        return;
    }
    st.queue.push(job);
    drop(st);
    inner.wake.notify_all();
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_core::Levels;
    use nofis_telemetry::Value;
    use std::sync::atomic::AtomicBool;

    /// Serializes tests that touch process-global state (the fault plan,
    /// the telemetry sink registry, the shared pool's lane accounting).
    static GLOBAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        lock(&GLOBAL)
    }

    /// g(x) = beta - x0 in 2-D, analytic gradient (same idiom as the core
    /// training tests).
    struct HalfSpace {
        beta: f64,
    }
    impl LimitState for HalfSpace {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            self.beta - x[0]
        }
        fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
            (self.beta - x[0], vec![-1.0, 0.0])
        }
    }

    /// Panics on the very first oracle interaction — a poisoned job that
    /// unwinds through the whole pipeline.
    struct PoisonPill;
    impl LimitState for PoisonPill {
        fn dim(&self) -> usize {
            panic!("poison pill: dim() exploded")
        }
        fn value(&self, _x: &[f64]) -> f64 {
            unreachable!()
        }
    }

    /// Blocks every oracle call until the gate opens; `entered` flips once
    /// the job is actually running on a worker.
    struct GatedHalfSpace {
        gate: Arc<(Mutex<bool>, Condvar)>,
        entered: Arc<AtomicBool>,
    }
    impl LimitState for GatedHalfSpace {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            self.entered.store(true, Ordering::SeqCst);
            let (m, cv) = &*self.gate;
            let mut open = lock(m);
            while !*open {
                open = cv.wait(open).unwrap_or_else(|e| e.into_inner());
            }
            2.0 - x[0]
        }
        fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
            (self.value(x), vec![-1.0, 0.0])
        }
    }

    fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
        let (m, cv) = &**gate;
        *lock(m) = true;
        cv.notify_all();
    }

    fn await_entered(flag: &AtomicBool) {
        let start = Instant::now();
        while !flag.load(Ordering::SeqCst) {
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "job never started running"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn tiny_config() -> NofisConfig {
        NofisConfig {
            levels: Levels::Fixed(vec![1.0, 0.0]),
            layers_per_stage: 2,
            hidden: 8,
            epochs: 3,
            batch_size: 32,
            n_is: 200,
            tau: 10.0,
            learning_rate: 8e-3,
            ..Default::default()
        }
    }

    fn u64_field(ev: &tele::Event, key: &str) -> u64 {
        match ev.field(key) {
            Some(Value::U64(v)) => *v,
            other => panic!("field {key} missing or not u64: {other:?}"),
        }
    }

    fn str_field<'a>(ev: &'a tele::Event, key: &str) -> &'a str {
        match ev.field(key) {
            Some(Value::Str(s)) => s.as_str(),
            other => panic!("field {key} missing or not str: {other:?}"),
        }
    }

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let p = RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
        };
        assert!(p.backoff(0, 1) >= Duration::from_millis(10));
        assert!(p.backoff(0, 1) <= Duration::from_millis(13)); // +25% jitter
        assert!(p.backoff(7, 1) >= Duration::from_millis(100));
        assert!(p.backoff(7, 1) <= Duration::from_millis(125));
        // Deterministic per (attempt, seed); different seeds de-synchronize.
        assert_eq!(p.backoff(3, 42), p.backoff(3, 42));
        let distinct = (0..16)
            .map(|seed| p.backoff(3, seed))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1, "jitter never varied across seeds");
    }

    #[test]
    fn derived_namespace_keys_on_id_and_seed_but_explicit_wins() {
        let mut spec = JobSpec::new("a", tiny_config(), Arc::new(HalfSpace { beta: 2.0 }), 7);
        // No checkpointing configured and no env: stays off.
        assert!(namespaced_config(&spec, JobId(3)).checkpoint.is_none());
        spec.config.checkpoint = Some(CheckpointConfig::new("ckpts"));
        let derived = namespaced_config(&spec, JobId(3));
        assert_eq!(
            derived.checkpoint.unwrap().namespace.as_deref(),
            Some("3-s7")
        );
        spec.config.checkpoint = Some(CheckpointConfig::new("ckpts").with_namespace("stable"));
        let explicit = namespaced_config(&spec, JobId(3));
        assert_eq!(
            explicit.checkpoint.unwrap().namespace.as_deref(),
            Some("stable")
        );
    }

    #[test]
    fn job_matches_solo_run_bitwise() {
        let _g = serial();
        let cfg = tiny_config();
        let solo = {
            let nofis = Nofis::new(cfg.clone()).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            nofis.run(&HalfSpace { beta: 2.0 }, &mut rng).unwrap().1
        };
        let runner = JobRunner::new(RunnerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let handle = runner.submit(JobSpec::new(
            "solo-twin",
            cfg,
            Arc::new(HalfSpace { beta: 2.0 }),
            7,
        ));
        let result = handle.wait().expect("job should succeed");
        runner.shutdown(ShutdownMode::Drain);
        assert_eq!(result.estimate.to_bits(), solo.estimate.to_bits());
        assert_eq!(result.hits, solo.hits);
        assert_eq!(
            result.effective_sample_size.to_bits(),
            solo.effective_sample_size.to_bits()
        );
    }

    #[test]
    fn panicking_job_is_isolated_from_co_tenants() {
        let _g = serial();
        let runner = JobRunner::new(RunnerConfig {
            workers: 2,
            queue_capacity: 8,
        });
        let mut bad_spec = JobSpec::new("poison", tiny_config(), Arc::new(PoisonPill), 1);
        bad_spec.retry = RetryPolicy::none();
        let bad = runner.submit(bad_spec);
        let good = runner.submit(JobSpec::new(
            "healthy",
            tiny_config(),
            Arc::new(HalfSpace { beta: 2.0 }),
            7,
        ));
        match bad.wait() {
            Err(JobError::Panicked { message }) => assert!(message.contains("poison pill")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(good.wait().is_ok(), "co-tenant must be unaffected");
        // The runner survives the panic and keeps serving.
        let after = runner.submit(JobSpec::new(
            "after-panic",
            tiny_config(),
            Arc::new(HalfSpace { beta: 2.0 }),
            8,
        ));
        assert!(after.wait().is_ok());
        runner.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn transient_panics_retry_with_backoff_then_succeed() {
        let _g = serial();
        let sink = Arc::new(tele::MemorySink::new(tele::Level::Info));
        let sink_id = tele::add_sink(sink.clone() as Arc<dyn tele::Sink>);
        nofis_faults::install(nofis_faults::FaultPlan::parse("job_panic@0x2").unwrap());

        let runner = JobRunner::new(RunnerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let mut spec = JobSpec::new("flaky", tiny_config(), Arc::new(HalfSpace { beta: 2.0 }), 7);
        spec.retry = RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
        };
        let handle = runner.submit(spec);
        let result = handle.wait();
        runner.shutdown(ShutdownMode::Drain);
        nofis_faults::clear();
        tele::remove_sink(sink_id);

        assert!(result.is_ok(), "third attempt should succeed: {result:?}");
        assert_eq!(sink.named("job.start").len(), 3, "two retries = 3 starts");
        let retries = sink.named("job.retry");
        assert_eq!(retries.len(), 2);
        for (i, ev) in retries.iter().enumerate() {
            assert_eq!(u64_field(ev, "attempt"), i as u64);
            assert!(str_field(ev, "error").contains("panic"));
        }
        let ends = sink.named("job.end");
        assert_eq!(ends.len(), 1);
        assert_eq!(str_field(&ends[0], "outcome"), "done");
        assert_eq!(u64_field(&ends[0], "attempts"), 3);
    }

    #[test]
    fn exhausted_panic_retries_terminate_as_panicked() {
        let _g = serial();
        nofis_faults::install(nofis_faults::FaultPlan::parse("job_panic@0x10").unwrap());
        let runner = JobRunner::new(RunnerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let mut spec = JobSpec::new(
            "doomed",
            tiny_config(),
            Arc::new(HalfSpace { beta: 2.0 }),
            7,
        );
        spec.retry = RetryPolicy {
            max_retries: 1,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
        };
        let handle = runner.submit(spec);
        let result = handle.wait();
        runner.shutdown(ShutdownMode::Drain);
        nofis_faults::clear();
        match result {
            Err(JobError::Panicked { message }) => assert!(message.contains("injected")),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn invalid_config_fails_permanently_without_retry() {
        let _g = serial();
        let sink = Arc::new(tele::MemorySink::new(tele::Level::Info));
        let sink_id = tele::add_sink(sink.clone() as Arc<dyn tele::Sink>);
        let runner = JobRunner::new(RunnerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let mut cfg = tiny_config();
        cfg.batch_size = 0; // rejected by Nofis::new
        let handle = runner.submit(JobSpec::new(
            "bad-config",
            cfg,
            Arc::new(HalfSpace { beta: 2.0 }),
            7,
        ));
        let result = handle.wait();
        runner.shutdown(ShutdownMode::Drain);
        tele::remove_sink(sink_id);
        match result {
            Err(JobError::Failed { error, attempts }) => {
                assert_eq!(attempts, 1, "permanent errors must not retry");
                assert!(!error.is_transient());
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(sink.named("job.retry").is_empty());
    }

    #[test]
    fn admission_sheds_lowest_priority_when_full() {
        let _g = serial();
        let runner = JobRunner::new(RunnerConfig {
            workers: 1,
            queue_capacity: 1,
        });
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new(AtomicBool::new(false));
        let blocker = runner.submit(JobSpec::new(
            "blocker",
            tiny_config(),
            Arc::new(GatedHalfSpace {
                gate: Arc::clone(&gate),
                entered: Arc::clone(&entered),
            }),
            7,
        ));
        await_entered(&entered); // blocker now occupies the only worker

        let mut mid = JobSpec::new("mid", tiny_config(), Arc::new(HalfSpace { beta: 2.0 }), 8);
        mid.priority = 1;
        let mid = runner.submit(mid); // fills the queue (capacity 1)

        // Equal-or-lower priority newcomer is shed, not the queued job.
        let low = runner.submit(JobSpec::new(
            "low",
            tiny_config(),
            Arc::new(HalfSpace { beta: 2.0 }),
            9,
        ));
        assert_eq!(
            low.try_result(),
            Some(Err(JobError::Shed { capacity: 1 })),
            "lower-priority newcomer should be shed immediately"
        );

        // A strictly higher-priority newcomer evicts the queued victim.
        let mut vip = JobSpec::new("vip", tiny_config(), Arc::new(HalfSpace { beta: 2.0 }), 10);
        vip.priority = 5;
        let vip = runner.submit(vip);
        assert_eq!(
            mid.try_result(),
            Some(Err(JobError::Shed { capacity: 1 })),
            "queued lower-priority job should be evicted for the vip"
        );
        assert!(vip.try_result().is_none(), "vip should be queued, not shed");

        open_gate(&gate);
        assert!(blocker.wait().is_ok());
        assert!(vip.wait().is_ok());
        runner.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn single_worker_runs_ready_jobs_in_priority_order() {
        let _g = serial();
        let sink = Arc::new(tele::MemorySink::new(tele::Level::Info));
        let sink_id = tele::add_sink(sink.clone() as Arc<dyn tele::Sink>);
        let runner = JobRunner::new(RunnerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new(AtomicBool::new(false));
        let blocker = runner.submit(JobSpec::new(
            "blocker",
            tiny_config(),
            Arc::new(GatedHalfSpace {
                gate: Arc::clone(&gate),
                entered: Arc::clone(&entered),
            }),
            7,
        ));
        await_entered(&entered);
        let low = runner.submit(JobSpec::new(
            "low",
            tiny_config(),
            Arc::new(HalfSpace { beta: 2.0 }),
            8,
        ));
        let mut vip = JobSpec::new("vip", tiny_config(), Arc::new(HalfSpace { beta: 2.0 }), 9);
        vip.priority = 5;
        let vip = runner.submit(vip);
        open_gate(&gate);
        assert!(blocker.wait().is_ok());
        assert!(vip.wait().is_ok());
        assert!(low.wait().is_ok());
        runner.shutdown(ShutdownMode::Drain);
        tele::remove_sink(sink_id);
        let starts: Vec<String> = sink
            .named("job.start")
            .iter()
            .map(|ev| str_field(ev, "name").to_string())
            .collect();
        assert_eq!(starts, ["blocker", "vip", "low"]);
    }

    #[test]
    fn deadline_storm_preempts_with_checkpoint_and_resume_matches_solo() {
        let _g = serial();
        let dir = std::env::temp_dir().join(format!("nofis-jobs-dl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cfg = tiny_config();
        cfg.checkpoint = Some(CheckpointConfig::new(&dir).with_namespace("dl"));
        let solo = {
            // Ground truth: the identical job uninterrupted (no checkpoint
            // config so nothing is resumed or written).
            let nofis = Nofis::new(tiny_config()).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            nofis.run(&HalfSpace { beta: 2.0 }, &mut rng).unwrap().1
        };

        // Attempt 1: a deadline storm preempts at the first minibatch
        // boundary; the job must end DeadlineExceeded with a checkpoint.
        nofis_faults::install(nofis_faults::FaultPlan::parse("deadline_storm@0").unwrap());
        let runner = JobRunner::new(RunnerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let mut spec = JobSpec::new("dl", cfg.clone(), Arc::new(HalfSpace { beta: 2.0 }), 7);
        spec.retry = RetryPolicy::none();
        let preempted = runner.submit(spec.clone()).wait();
        runner.shutdown(ShutdownMode::Drain);
        nofis_faults::clear();
        assert_eq!(
            preempted,
            Err(JobError::DeadlineExceeded { checkpointed: true })
        );

        // Resubmission (same config + seed + explicit namespace) resumes
        // from the preemption checkpoint and matches the solo run bitwise.
        let runner = JobRunner::new(RunnerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let resumed = runner.submit(spec).wait().expect("resume should finish");
        runner.shutdown(ShutdownMode::Drain);
        assert_eq!(resumed.estimate.to_bits(), solo.estimate.to_bits());
        assert_eq!(resumed.hits, solo.hits);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_overflow_fault_forces_shedding() {
        let _g = serial();
        nofis_faults::install(nofis_faults::FaultPlan::parse("queue_overflow@1").unwrap());
        let runner = JobRunner::new(RunnerConfig {
            workers: 1,
            queue_capacity: 64,
        });
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new(AtomicBool::new(false));
        let blocker = runner.submit(JobSpec::new(
            "blocker",
            tiny_config(),
            Arc::new(GatedHalfSpace {
                gate: Arc::clone(&gate),
                entered: Arc::clone(&entered),
            }),
            7,
        ));
        await_entered(&entered);
        // Second submit hits the injected overflow: queue is empty (no
        // victim), so the newcomer itself is shed despite spare capacity.
        let shed = runner.submit(JobSpec::new(
            "shed-me",
            tiny_config(),
            Arc::new(HalfSpace { beta: 2.0 }),
            8,
        ));
        assert_eq!(
            shed.try_result(),
            Some(Err(JobError::Shed { capacity: 64 }))
        );
        open_gate(&gate);
        assert!(blocker.wait().is_ok());
        runner.shutdown(ShutdownMode::Drain);
        nofis_faults::clear();
    }

    #[test]
    fn checkpoint_shutdown_suspends_queued_and_running_jobs() {
        let _g = serial();
        let runner = JobRunner::new(RunnerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new(AtomicBool::new(false));
        let running = runner.submit(JobSpec::new(
            "running",
            tiny_config(),
            Arc::new(GatedHalfSpace {
                gate: Arc::clone(&gate),
                entered: Arc::clone(&entered),
            }),
            7,
        ));
        await_entered(&entered);
        let queued = runner.submit(JobSpec::new(
            "queued",
            tiny_config(),
            Arc::new(HalfSpace { beta: 2.0 }),
            8,
        ));
        // Unblock the running job shortly after shutdown begins so it can
        // reach a minibatch boundary and observe the preemption request.
        let opener = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                open_gate(&gate);
            })
        };
        runner.shutdown(ShutdownMode::Checkpoint);
        opener.join().unwrap();
        assert_eq!(
            queued.try_result(),
            Some(Err(JobError::Suspended {
                checkpointed: false
            })),
            "queued job must be suspended without running"
        );
        // No checkpoint config on the running job: suspended, no resume
        // point.
        assert_eq!(
            running.try_result(),
            Some(Err(JobError::Suspended {
                checkpointed: false
            }))
        );
    }
}
