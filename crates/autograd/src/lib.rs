//! Tape-based reverse-mode automatic differentiation over batched 2-D
//! tensors.
//!
//! There is no mature Rust autodiff/deep-learning ecosystem to lean on for
//! a normalizing-flow implementation, so this crate provides the minimal
//! engine the NOFIS reproduction needs:
//!
//! * [`Tensor`] — dense `N x D` batches of `f64`.
//! * [`Graph`] / [`Var`] — a dynamically built computation tape with the op
//!   set required by RealNVP coupling layers and the tempered KL loss
//!   (matmul, broadcast add/mul, `tanh`/`sigmoid`/`softplus`/`relu`,
//!   `exp`/`ln`/`square`, `min(x, c)`, reductions).
//! * [`Graph::external_rowwise`] — injects an externally differentiated
//!   black-box `g : R^D -> R` (circuit simulator, BPM, ODE model) into the
//!   tape, which is how NOFIS backpropagates through `g(z_K)` in Eq. (7)/(8)
//!   of the paper.
//! * [`ParamStore`] — owns trainable tensors across graph rebuilds and
//!   carries the per-parameter *frozen* flags used by NOFIS stage freezing.
//! * [`check`] — finite-difference gradient checking used by every test
//!   suite in the workspace.
//!
//! # Example
//!
//! ```
//! use nofis_autograd::{Graph, ParamStore, Tensor};
//!
//! // loss(w) = sum((x @ w)^2)
//! let mut store = ParamStore::new();
//! let w = store.add(Tensor::from_row(&[2.0]));
//! let mut g = Graph::new();
//! let x = g.constant(Tensor::from_vec(2, 1, vec![1.0, 3.0]));
//! let wv = store.inject(&mut g, w);
//! let y = g.matmul(x, wv);
//! let sq = g.square(y);
//! let loss = g.sum_all(sq);
//! g.backward(loss);
//! let (_, grad) = g.param_grads().remove(0);
//! assert_eq!(grad.as_slice(), &[40.0]); // d/dw sum((xw)^2) = 2w*sum(x^2)
//! ```

#![deny(missing_docs)]

pub mod check;
mod compile;
mod graph;
mod pool;
mod store;
mod tensor;

pub use compile::{CompiledStep, GradSource};
pub use graph::{Graph, GraphStats, ParamId, Var};
pub use pool::{BufferPool, PoolStats};
pub use store::ParamStore;
pub use tensor::Tensor;
