use crate::{Graph, ParamId, Tensor, Var};

/// Owns the trainable parameter tensors of a model between graph builds.
///
/// A [`Graph`](crate::Graph) is rebuilt every training step; parameters
/// persist here and are injected into each new graph with
/// [`ParamStore::inject`]. Parameters can be *frozen* — optimizers skip
/// frozen parameters, which is how NOFIS freezes earlier coupling blocks
/// when training stage `m`.
///
/// # Example
///
/// ```
/// use nofis_autograd::{Graph, ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.add(Tensor::from_row(&[1.0, -1.0]));
/// let mut g = Graph::new();
/// let wv = store.inject(&mut g, w);
/// let sq = g.square(wv);
/// let loss = g.sum_all(sq);
/// g.backward(loss);
/// assert_eq!(g.param_grads()[0].1.as_slice(), &[2.0, -2.0]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    params: Vec<Tensor>,
    frozen: Vec<bool>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter tensor and returns its id.
    pub fn add(&mut self, t: Tensor) -> ParamId {
        self.params.push(t);
        self.frozen.push(false);
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Returns `true` if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Borrows the parameter tensor.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.params[id.0]
    }

    /// Mutably borrows the parameter tensor.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0]
    }

    /// Marks a parameter (un)frozen. Frozen parameters still participate in
    /// forward/backward passes but are skipped by optimizers.
    pub fn set_frozen(&mut self, id: ParamId, frozen: bool) {
        self.frozen[id.0] = frozen;
    }

    /// Whether a parameter is frozen.
    pub fn is_frozen(&self, id: ParamId) -> bool {
        self.frozen[id.0]
    }

    /// Iterates over `(id, tensor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.params.iter().enumerate().map(|(i, t)| (ParamId(i), t))
    }

    /// Total number of scalar parameters (sum of tensor sizes).
    pub fn scalar_count(&self) -> usize {
        self.params.iter().map(Tensor::len).sum()
    }

    /// Injects parameter `id` into `graph` as a parameter leaf.
    ///
    /// The parameter's values are copied into a graph-pooled buffer (no
    /// per-step heap allocation once the graph is warm) and the leaf is
    /// marked trainable unless the parameter is frozen, which lets
    /// [`Graph::set_pruning`] skip backward work for frozen subgraphs.
    pub fn inject(&self, graph: &mut Graph, id: ParamId) -> Var {
        let t = &self.params[id.0];
        graph.param_from_slice(id, t.rows(), t.cols(), t.as_slice(), !self.frozen[id.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_freeze() {
        let mut s = ParamStore::new();
        let a = s.add(Tensor::scalar(1.0));
        let b = s.add(Tensor::scalar(2.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(b).item(), 2.0);
        assert!(!s.is_frozen(a));
        s.set_frozen(a, true);
        assert!(s.is_frozen(a));
        s.get_mut(a).as_mut_slice()[0] = 5.0;
        assert_eq!(s.get(a).item(), 5.0);
        assert_eq!(s.scalar_count(), 2);
    }

    #[test]
    fn iter_yields_all() {
        let mut s = ParamStore::new();
        s.add(Tensor::zeros(2, 3));
        s.add(Tensor::zeros(1, 4));
        let ids: Vec<_> = s.iter().map(|(id, t)| (id.index(), t.len())).collect();
        assert_eq!(ids, vec![(0, 6), (1, 4)]);
    }
}
