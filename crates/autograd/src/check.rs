//! Finite-difference gradient checking utilities.
//!
//! Used throughout the workspace's test suites to validate analytic
//! gradients: the autograd ops, the coupling-layer Jacobians, and the
//! adjoint sensitivities of the circuit and photonic simulators.

use crate::{ParamStore, Tensor};

/// Central finite-difference gradient of a scalar function of a vector.
///
/// # Example
///
/// ```
/// use nofis_autograd::check::finite_difference;
///
/// let grad = finite_difference(|x| x[0] * x[0] + 3.0 * x[1], &[2.0, 0.0], 1e-6);
/// assert!((grad[0] - 4.0).abs() < 1e-5);
/// assert!((grad[1] - 3.0).abs() < 1e-5);
/// ```
pub fn finite_difference(mut f: impl FnMut(&[f64]) -> f64, x: &[f64], eps: f64) -> Vec<f64> {
    let mut xp = x.to_vec();
    let mut grad = vec![0.0; x.len()];
    for i in 0..x.len() {
        let orig = xp[i];
        xp[i] = orig + eps;
        let fp = f(&xp);
        xp[i] = orig - eps;
        let fm = f(&xp);
        xp[i] = orig;
        grad[i] = (fp - fm) / (2.0 * eps);
    }
    grad
}

/// Central finite-difference gradients of a scalar loss with respect to
/// every parameter in `store`.
///
/// `loss` is re-evaluated with each scalar parameter perturbed by `±eps`;
/// the store is restored to its original contents before returning.
pub fn numeric_param_grads(
    store: &mut ParamStore,
    mut loss: impl FnMut(&ParamStore) -> f64,
    eps: f64,
) -> Vec<Tensor> {
    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    let mut out = Vec::with_capacity(ids.len());
    for id in ids {
        let shape = store.get(id).shape();
        let mut grad = Tensor::zeros(shape.0, shape.1);
        for k in 0..store.get(id).len() {
            let orig = store.get(id).as_slice()[k];
            store.get_mut(id).as_mut_slice()[k] = orig + eps;
            let fp = loss(store);
            store.get_mut(id).as_mut_slice()[k] = orig - eps;
            let fm = loss(store);
            store.get_mut(id).as_mut_slice()[k] = orig;
            grad.as_mut_slice()[k] = (fp - fm) / (2.0 * eps);
        }
        out.push(grad);
    }
    out
}

/// Maximum relative disagreement between two gradients, using
/// `|a-b| / max(1, |a|, |b|)` so tiny gradients compare absolutely.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_rel_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "gradient length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn finite_difference_quadratic() {
        let g = finite_difference(|x| x.iter().map(|v| v * v).sum(), &[1.0, -2.0, 3.0], 1e-6);
        let expected = [2.0, -4.0, 6.0];
        assert!(max_rel_error(&g, &expected) < 1e-6);
    }

    #[test]
    fn autograd_matches_numeric_for_mlp_like_composite() {
        // loss(w) = mean( tanh(x@w) ^ 2 ) for fixed x
        let x = Tensor::from_vec(4, 3, (0..12).map(|i| (i as f64) * 0.1 - 0.5).collect());
        let mut store = ParamStore::new();
        let w = store.add(Tensor::from_vec(3, 2, vec![0.3, -0.2, 0.1, 0.4, -0.5, 0.2]));

        let analytic = {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let wv = store.inject(&mut g, w);
            let h = g.matmul(xv, wv);
            let t = g.tanh(h);
            let sq = g.square(t);
            let loss = g.mean_all(sq);
            g.backward(loss);
            g.param_grads().remove(0).1
        };

        let numeric = numeric_param_grads(
            &mut store,
            |s| {
                let mut g = Graph::new();
                let xv = g.constant(x.clone());
                let wv = g.constant(s.get(w).clone());
                let h = g.matmul(xv, wv);
                let t = g.tanh(h);
                let sq = g.square(t);
                let loss = g.mean_all(sq);
                g.value(loss).item()
            },
            1e-6,
        )
        .remove(0);

        assert!(max_rel_error(analytic.as_slice(), numeric.as_slice()) < 1e-7);
    }

    #[test]
    fn rel_error_handles_zero_gradients() {
        assert_eq!(max_rel_error(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }
}
