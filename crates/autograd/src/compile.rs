//! Trace-once/replay execution of a recorded tape (DESIGN.md §13).
//!
//! [`CompiledStep::compile`] lowers a built [`Graph`] tape into a flat
//! instruction stream with preplanned buffer slots: one value tensor per
//! node, one gradient tensor per grad-reachable node, the backward
//! schedule (which nodes propagate, in what order, and whether each
//! accumulation site is the first write into its target or a merge)
//! precomputed by simulating [`Graph::backward`] once at compile time.
//! [`CompiledStep::replay_forward`] + [`CompiledStep::backward`] then
//! re-execute the step without any per-step node allocation, pruning
//! decisions, or graph bookkeeping — only the kernels run.
//!
//! # Bitwise contract
//!
//! Replay is bitwise identical to rebuilding and re-running the tape
//! interpreted: every forward op mirrors the arithmetic (and element
//! order) of the corresponding `Graph` constructor, every backward step
//! mirrors `Graph::apply_backward` including the compute-delta-then-add
//! accumulation order, external rows are evaluated through the same
//! fixed-chunk parallel helper, and all matmuls go through the same
//! shared kernels. `tests/compiled_equivalence.rs` asserts this across
//! shapes, frozen masks, thread counts, and resume boundaries.
//!
//! # Recompilation triggers
//!
//! A `CompiledStep` is valid for exactly one (batch-rows, tape-shape,
//! frozen-mask) combination. Callers must recompile when the minibatch
//! row count changes, when the stage depth (and hence the traced layer
//! stack) changes, or when the [`ParamStore`] frozen mask changes — the
//! mask decides which gradients exist at all. Replaying against a store
//! whose mask no longer matches the compile-time snapshot panics rather
//! than silently reusing stale `requires_grad` pruning decisions.

use crate::graph::{self, Op};
use crate::pool::PoolStats;
use crate::{BufferPool, Graph, ParamId, ParamStore, Tensor, Var};

/// A source of per-parameter gradients for fused optimizer steps: either a
/// [`Graph`] after [`Graph::backward`] or a [`CompiledStep`] after
/// [`CompiledStep::backward`]. Both visit parameter-leaf gradients in tape
/// order with identical bits, so `Adam::step_fused` is agnostic to which
/// execution engine produced them.
pub trait GradSource {
    /// Visits every parameter-leaf gradient in tape order without
    /// materializing a list. A [`ParamId`] injected at several tape
    /// positions is visited once per position with its partial gradient.
    fn for_each_param_grad<F: FnMut(ParamId, &Tensor)>(&self, f: F);

    /// Collects accumulated parameter gradients as `(id, grad)` pairs,
    /// summing duplicates in first-appearance order.
    fn param_grads(&self) -> Vec<(ParamId, Tensor)>;
}

impl GradSource for Graph {
    fn for_each_param_grad<F: FnMut(ParamId, &Tensor)>(&self, f: F) {
        Graph::for_each_param_grad(self, f);
    }

    fn param_grads(&self) -> Vec<(ParamId, Tensor)> {
        Graph::param_grads(self)
    }
}

/// One lowered tape node. Operand `usize`s are value-slot indices (equal
/// to the traced node's tape position).
#[derive(Debug, Clone)]
enum Instr {
    /// Constant leaf: the compiled value buffer is reused verbatim.
    Const,
    /// The designated batch-input leaf, refilled by the caller per replay.
    BatchInput,
    /// Parameter leaf, refreshed from the [`ParamStore`] per replay via
    /// the `param_slots` table.
    Param,
    Add(usize, usize),
    AddRow(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    MulRow(usize, usize),
    Matmul(usize, usize),
    Linear {
        x: usize,
        w: usize,
        b: usize,
        tanh: bool,
    },
    Scale(usize, f64),
    AddScalar(usize, f64),
    Neg(usize),
    Tanh(usize),
    TanhScale(usize, f64),
    Sigmoid(usize),
    Softplus(usize),
    Relu(usize),
    Exp(usize),
    Ln(usize),
    Square(usize),
    MinScalar(usize, f64),
    SumAll(usize),
    MeanAll(usize),
    SumCols(usize),
    /// Row-wise oracle; its Jacobian buffer lives in `ext_grads`.
    External {
        input: usize,
    },
}

/// One precomputed backward visit: the node whose gradient propagates and,
/// per accumulation site in the op's visit order, whether that site is the
/// first write into its target's gradient buffer (a move in the
/// interpreted engine) or a merge (an axpy).
#[derive(Debug, Clone, Copy)]
struct BackStep {
    node: usize,
    first: [bool; 3],
}

/// A [`Graph`] tape lowered to a flat instruction stream with preplanned
/// buffer slots, replayable without per-step tape construction.
///
/// Compile once per (minibatch-rows, stage-shape, frozen-mask) with
/// [`CompiledStep::compile`] after running the step interpreted; replay
/// with [`CompiledStep::replay_forward`] + [`CompiledStep::backward`].
/// See the module docs for the bitwise contract and recompilation
/// triggers.
#[derive(Debug)]
pub struct CompiledStep {
    instrs: Vec<Instr>,
    /// Forward value buffer per node, indexed by tape position.
    values: Vec<Tensor>,
    /// Gradient buffer per node; `Some` exactly for grad-reachable nodes.
    grads: Vec<Option<Tensor>>,
    /// Reverse schedule over grad-reachable nodes, descending tape order.
    schedule: Vec<BackStep>,
    /// External Jacobian buffers, keyed by tape position.
    ext_grads: Vec<(usize, Tensor)>,
    /// Parameter leaves in tape order.
    param_slots: Vec<(ParamId, usize)>,
    batch_slot: Option<usize>,
    loss_slot: usize,
    /// Per-parameter trainability snapshot at compile time.
    trainable: Vec<bool>,
    /// Recycled scratch for backward temporaries (`dpre`, merge deltas).
    scratch: BufferPool,
    replays: u64,
}

impl CompiledStep {
    /// Lowers the built tape of `g` into a replayable instruction stream.
    ///
    /// `loss` is the scalar node [`CompiledStep::backward`] will seed;
    /// `batch_input`, when given, names the constant leaf that
    /// [`CompiledStep::replay_forward`] refills each step (the minibatch
    /// sample buffer). The [`ParamStore`] frozen mask is snapshotted so
    /// replays can detect stale pruning decisions.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1 x 1` or `batch_input` is not a constant
    /// leaf.
    pub fn compile(g: &Graph, loss: Var, batch_input: Option<Var>, store: &ParamStore) -> Self {
        assert_eq!(
            g.value(loss).shape(),
            (1, 1),
            "compile requires a scalar (1x1) loss"
        );
        let n = g.len();
        let loss_slot = loss.index();
        let mut instrs = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        let mut ext_grads = Vec::new();
        let mut param_slots = Vec::new();
        for i in 0..n {
            values.push(g.node_value(i).clone());
            let instr = match *g.node_op(i) {
                Op::Leaf => Instr::Const,
                Op::Param(id) => {
                    param_slots.push((id, i));
                    Instr::Param
                }
                Op::Add(a, b) => Instr::Add(a.index(), b.index()),
                Op::AddRow(a, b) => Instr::AddRow(a.index(), b.index()),
                Op::Sub(a, b) => Instr::Sub(a.index(), b.index()),
                Op::Mul(a, b) => Instr::Mul(a.index(), b.index()),
                Op::MulRow(a, b) => Instr::MulRow(a.index(), b.index()),
                Op::Matmul(a, b) => Instr::Matmul(a.index(), b.index()),
                Op::Linear { x, w, b, tanh } => Instr::Linear {
                    x: x.index(),
                    w: w.index(),
                    b: b.index(),
                    tanh,
                },
                Op::Scale(a, s) => Instr::Scale(a.index(), s),
                Op::AddScalar(a, s) => Instr::AddScalar(a.index(), s),
                Op::Neg(a) => Instr::Neg(a.index()),
                Op::Tanh(a) => Instr::Tanh(a.index()),
                Op::TanhScale(a, s) => Instr::TanhScale(a.index(), s),
                Op::Sigmoid(a) => Instr::Sigmoid(a.index()),
                Op::Softplus(a) => Instr::Softplus(a.index()),
                Op::Relu(a) => Instr::Relu(a.index()),
                Op::Exp(a) => Instr::Exp(a.index()),
                Op::Ln(a) => Instr::Ln(a.index()),
                Op::Square(a) => Instr::Square(a.index()),
                Op::MinScalar(a, c) => Instr::MinScalar(a.index(), c),
                Op::SumAll(a) => Instr::SumAll(a.index()),
                Op::MeanAll(a) => Instr::MeanAll(a.index()),
                Op::SumCols(a) => Instr::SumCols(a.index()),
                Op::External { input, ref grads } => {
                    ext_grads.push((i, grads.clone()));
                    Instr::External {
                        input: input.index(),
                    }
                }
            };
            instrs.push(instr);
        }
        let batch_slot = batch_input.map(|v| {
            let i = v.index();
            assert!(
                matches!(instrs[i], Instr::Const),
                "batch_input must be a constant leaf"
            );
            instrs[i] = Instr::BatchInput;
            i
        });

        // Simulate Graph::backward once: which nodes receive a gradient
        // (descending tape order, gated per input by requires_grad), and
        // per accumulation site whether it is the first write (the
        // interpreted engine moves the delta in) or a merge (axpy).
        let mut reach = vec![false; n];
        let mut written = vec![false; n];
        let mut schedule = Vec::new();
        if g.node_requires_grad(loss_slot) {
            reach[loss_slot] = true;
            written[loss_slot] = true; // the seed
        }
        for i in (0..=loss_slot).rev() {
            if !reach[i] {
                continue;
            }
            let mut first = [false; 3];
            for (slot, input) in backward_visit_order(g.node_op(i)).into_iter().enumerate() {
                let Some(v) = input else { continue };
                let j = v.index();
                if !g.node_requires_grad(j) {
                    continue;
                }
                reach[j] = true;
                first[slot] = !written[j];
                written[j] = true;
            }
            schedule.push(BackStep { node: i, first });
        }
        let grads = (0..n)
            .map(|i| {
                reach[i].then(|| {
                    let (r, c) = values[i].shape();
                    Tensor::from_vec(r, c, vec![0.0; r * c])
                })
            })
            .collect();

        CompiledStep {
            instrs,
            values,
            grads,
            schedule,
            ext_grads,
            param_slots,
            batch_slot,
            loss_slot,
            trainable: store.iter().map(|(id, _)| !store.is_frozen(id)).collect(),
            scratch: BufferPool::default(),
            replays: 0,
        }
    }

    /// Number of lowered instructions (one per traced tape node).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the compiled tape is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// How many times this step has been replayed since compilation.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Nodes on the precomputed backward schedule.
    pub fn backward_nodes(&self) -> usize {
        self.schedule.len()
    }

    /// Row count of the designated batch-input leaf, if one was named.
    pub fn batch_rows(&self) -> Option<usize> {
        self.batch_slot.map(|i| self.values[i].rows())
    }

    /// Whether `store`'s frozen mask still matches the compile-time
    /// snapshot. A `false` here is a recompilation trigger: the tape's
    /// pruning decisions (which gradients exist) were planned for the old
    /// mask.
    pub fn mask_matches(&self, store: &ParamStore) -> bool {
        self.trainable.len() == store.len()
            && store
                .iter()
                .zip(&self.trainable)
                .all(|((id, _), &t)| t != store.is_frozen(id))
    }

    /// Hit/miss counters of the backward scratch pool (misses allocate;
    /// zero steady-state misses means replays are allocation-free).
    pub fn pool_stats(&self) -> PoolStats {
        self.scratch.stats()
    }

    /// The forward value of `v` from the latest replay (or the trace, if
    /// never replayed). `v` must come from the traced graph.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.values[v.index()]
    }

    /// The gradient of the loss with respect to `v` from the latest
    /// [`CompiledStep::backward`], if `v` is grad-reachable.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads[v.index()].as_ref()
    }

    /// Re-executes the forward pass in place: refreshes parameter leaves
    /// from `store`, refills the batch-input leaf via `fill` (handed a
    /// zeroed buffer, exactly like [`Graph::constant_with`]), runs every
    /// lowered instruction in tape order, and evaluates `External` nodes
    /// through the same fixed-chunk parallel helper as
    /// [`Graph::external_rowwise_par`] on `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `store`'s frozen mask no longer matches the compile-time
    /// snapshot (stale pruning plan — recompile instead), or if a
    /// parameter's shape changed.
    pub fn replay_forward(
        &mut self,
        store: &ParamStore,
        fill: impl FnOnce(&mut [f64]),
        pool: &nofis_parallel::ThreadPool,
        external: impl Fn(&[f64]) -> (f64, Vec<f64>) + Sync,
    ) {
        assert!(
            self.mask_matches(store),
            "stale compiled tape: the ParamStore frozen mask changed since \
             compile; the pruning plan no longer applies — recompile"
        );
        for &(id, slot) in &self.param_slots {
            let src = store.get(id);
            assert_eq!(
                src.shape(),
                self.values[slot].shape(),
                "parameter {id:?} changed shape since compile"
            );
            self.values[slot]
                .as_mut_slice()
                .copy_from_slice(src.as_slice());
        }
        if let Some(slot) = self.batch_slot {
            let buf = self.values[slot].as_mut_slice();
            buf.fill(0.0);
            fill(buf);
        }
        for i in 0..self.instrs.len() {
            let (prev, rest) = self.values.split_at_mut(i);
            let out = &mut rest[0];
            match self.instrs[i] {
                Instr::Const | Instr::BatchInput | Instr::Param => {}
                Instr::Add(a, b) => elementwise_zip(out, &prev[a], &prev[b], |x, y| x + y),
                Instr::Sub(a, b) => elementwise_zip(out, &prev[a], &prev[b], |x, y| x - y),
                Instr::Mul(a, b) => elementwise_zip(out, &prev[a], &prev[b], |x, y| x * y),
                Instr::AddRow(a, b) => rowwise_zip(out, &prev[a], &prev[b], |x, r| x + r),
                Instr::MulRow(a, b) => rowwise_zip(out, &prev[a], &prev[b], |x, r| x * r),
                Instr::Matmul(a, b) => {
                    let (lhs, rhs) = (&prev[a], &prev[b]);
                    nofis_parallel::kernels::matmul_into(
                        nofis_parallel::global(),
                        lhs.as_slice(),
                        rhs.as_slice(),
                        out.as_mut_slice(),
                        lhs.rows(),
                        lhs.cols(),
                        rhs.cols(),
                    );
                }
                Instr::Linear { x, w, b, tanh } => {
                    let (xs, ws) = (&prev[x], &prev[w]);
                    nofis_parallel::kernels::matmul_into(
                        nofis_parallel::global(),
                        xs.as_slice(),
                        ws.as_slice(),
                        out.as_mut_slice(),
                        xs.rows(),
                        xs.cols(),
                        ws.cols(),
                    );
                    // Same one-pass bias(+tanh) loop as Graph::linear: per
                    // element `tanh(xw + bias)` through the shared
                    // [`nofis_parallel::math::tanh`] kernel.
                    let d = ws.cols();
                    let bias = prev[b].as_slice();
                    if tanh {
                        for row in out.as_mut_slice().chunks_exact_mut(d) {
                            for (v, &bv) in row.iter_mut().zip(bias) {
                                *v = nofis_parallel::math::tanh(*v + bv);
                            }
                        }
                    } else {
                        for row in out.as_mut_slice().chunks_exact_mut(d) {
                            for (v, &bv) in row.iter_mut().zip(bias) {
                                *v += bv;
                            }
                        }
                    }
                }
                Instr::Scale(a, s) => elementwise(out, &prev[a], |x| x * s),
                Instr::AddScalar(a, s) => elementwise(out, &prev[a], |x| x + s),
                Instr::Neg(a) => elementwise(out, &prev[a], |x| -x),
                Instr::Tanh(a) => elementwise(out, &prev[a], nofis_parallel::math::tanh),
                Instr::TanhScale(a, s) => {
                    elementwise(out, &prev[a], |x| nofis_parallel::math::tanh(x) * s)
                }
                Instr::Sigmoid(a) => elementwise(out, &prev[a], graph::sigmoid),
                Instr::Softplus(a) => elementwise(out, &prev[a], graph::softplus),
                Instr::Relu(a) => elementwise(out, &prev[a], |x| x.max(0.0)),
                Instr::Exp(a) => elementwise(out, &prev[a], f64::exp),
                Instr::Ln(a) => elementwise(out, &prev[a], f64::ln),
                Instr::Square(a) => elementwise(out, &prev[a], |x| x * x),
                Instr::MinScalar(a, c) => elementwise(out, &prev[a], |x| x.min(c)),
                Instr::SumAll(a) => out.as_mut_slice()[0] = prev[a].sum(),
                Instr::MeanAll(a) => out.as_mut_slice()[0] = prev[a].mean(),
                Instr::SumCols(a) => {
                    let src = &prev[a];
                    for (r, o) in out.as_mut_slice().iter_mut().enumerate() {
                        *o = src.row(r).iter().sum();
                    }
                }
                Instr::External { input } => {
                    let (_, jac) = self
                        .ext_grads
                        .iter_mut()
                        .find(|(nd, _)| *nd == i)
                        .expect("external Jacobian slot");
                    graph::eval_external_rows(&prev[input], pool, &external, out, jac);
                }
            }
        }
        self.replays += 1;
    }

    /// Runs the precomputed backward schedule, mirroring
    /// [`Graph::backward`] bit for bit: gradients land in the preplanned
    /// slots and are read back via [`CompiledStep::grad`] or the
    /// [`GradSource`] methods.
    pub fn backward(&mut self) {
        if self.schedule.is_empty() {
            // Nothing trainable feeds the loss.
            return;
        }
        self.grads[self.loss_slot]
            .as_mut()
            .expect("loss grad slot")
            .as_mut_slice()[0] = 1.0;
        for si in 0..self.schedule.len() {
            self.exec_back_step(si);
        }
    }

    fn exec_back_step(&mut self, si: usize) {
        let BackStep { node, first } = self.schedule[si];
        let (lo, hi) = self.grads.split_at_mut(node);
        let up = hi[0].as_ref().expect("scheduled node has a gradient");
        let values = &self.values;
        let scratch = &mut self.scratch;
        match self.instrs[node] {
            Instr::Const | Instr::BatchInput | Instr::Param => {}
            Instr::Add(a, b) => {
                if let Some(g) = lo[a].as_mut() {
                    acc_from(g, first[0], up.as_slice().iter().copied());
                }
                if let Some(g) = lo[b].as_mut() {
                    acc_from(g, first[1], up.as_slice().iter().copied());
                }
            }
            Instr::Sub(a, b) => {
                if let Some(g) = lo[a].as_mut() {
                    acc_from(g, first[0], up.as_slice().iter().copied());
                }
                if let Some(g) = lo[b].as_mut() {
                    acc_from(g, first[1], up.as_slice().iter().map(|&x| -x));
                }
            }
            Instr::Mul(a, b) => {
                if let Some(g) = lo[a].as_mut() {
                    let bv = values[b].as_slice();
                    acc_from(
                        g,
                        first[0],
                        up.as_slice().iter().zip(bv).map(|(&u, &y)| u * y),
                    );
                }
                if let Some(g) = lo[b].as_mut() {
                    let av = values[a].as_slice();
                    acc_from(
                        g,
                        first[1],
                        up.as_slice().iter().zip(av).map(|(&u, &x)| u * x),
                    );
                }
            }
            Instr::AddRow(a, b) => {
                if let Some(g) = lo[a].as_mut() {
                    acc_from(g, first[0], up.as_slice().iter().copied());
                }
                if let Some(g) = lo[b].as_mut() {
                    acc_col_sums(g, first[1], up, |u, _| u);
                }
            }
            Instr::MulRow(a, b) => {
                if let Some(g) = lo[a].as_mut() {
                    let row = values[b].as_slice();
                    let d = row.len();
                    acc_from(
                        g,
                        first[0],
                        up.as_slice()
                            .iter()
                            .enumerate()
                            .map(|(idx, &u)| u * row[idx % d]),
                    );
                }
                if let Some(g) = lo[b].as_mut() {
                    let av = values[a].as_slice();
                    acc_col_sums(g, first[1], up, |u, idx| u * av[idx]);
                }
            }
            Instr::Matmul(a, b) => {
                if lo[a].is_some() {
                    let rhs = &values[b];
                    acc_matmul(lo[a].as_mut().expect("slot"), first[0], scratch, |dst| {
                        nofis_parallel::kernels::matmul_bt_into(
                            nofis_parallel::global(),
                            up.as_slice(),
                            rhs.as_slice(),
                            dst,
                            up.rows(),
                            up.cols(),
                            rhs.rows(),
                        );
                    });
                }
                if lo[b].is_some() {
                    let lhs = &values[a];
                    acc_matmul(lo[b].as_mut().expect("slot"), first[1], scratch, |dst| {
                        nofis_parallel::kernels::matmul_at_into(
                            nofis_parallel::global(),
                            lhs.as_slice(),
                            up.as_slice(),
                            dst,
                            lhs.rows(),
                            lhs.cols(),
                            up.cols(),
                        );
                    });
                }
            }
            Instr::Linear { x, w, b, tanh } => {
                // dpre = up ⊙ (1 - y²) for tanh, else up — then the same
                // b-first, x, w visit order as Graph::linear_backward.
                let owned_dpre = tanh.then(|| {
                    let y = values[node].as_slice();
                    let mut buf = scratch.take_uninit(y.len());
                    buf.extend(
                        up.as_slice()
                            .iter()
                            .zip(y)
                            .map(|(&u, &yv)| u * (1.0 - yv * yv)),
                    );
                    Tensor::from_vec(up.rows(), up.cols(), buf)
                });
                {
                    let dpre = owned_dpre.as_ref().unwrap_or(up);
                    if let Some(g) = lo[b].as_mut() {
                        acc_col_sums(g, first[0], dpre, |u, _| u);
                    }
                    if lo[x].is_some() {
                        let ws = &values[w];
                        acc_matmul(lo[x].as_mut().expect("slot"), first[1], scratch, |dst| {
                            nofis_parallel::kernels::matmul_bt_into(
                                nofis_parallel::global(),
                                dpre.as_slice(),
                                ws.as_slice(),
                                dst,
                                dpre.rows(),
                                dpre.cols(),
                                ws.rows(),
                            );
                        });
                    }
                    if lo[w].is_some() {
                        let xs = &values[x];
                        acc_matmul(lo[w].as_mut().expect("slot"), first[2], scratch, |dst| {
                            nofis_parallel::kernels::matmul_at_into(
                                nofis_parallel::global(),
                                xs.as_slice(),
                                dpre.as_slice(),
                                dst,
                                xs.rows(),
                                xs.cols(),
                                dpre.cols(),
                            );
                        });
                    }
                }
                if let Some(t) = owned_dpre {
                    scratch.put(t.into_vec());
                }
            }
            Instr::Scale(a, s) => {
                if let Some(g) = lo[a].as_mut() {
                    acc_from(g, first[0], up.as_slice().iter().map(|&x| x * s));
                }
            }
            Instr::AddScalar(a, _) => {
                if let Some(g) = lo[a].as_mut() {
                    acc_from(g, first[0], up.as_slice().iter().copied());
                }
            }
            Instr::Neg(a) => {
                if let Some(g) = lo[a].as_mut() {
                    acc_from(g, first[0], up.as_slice().iter().map(|&x| -x));
                }
            }
            Instr::Tanh(a) => {
                if let Some(g) = lo[a].as_mut() {
                    let y = values[node].as_slice();
                    acc_from(
                        g,
                        first[0],
                        up.as_slice()
                            .iter()
                            .zip(y)
                            .map(|(&u, &yv)| u * (1.0 - yv * yv)),
                    );
                }
            }
            Instr::TanhScale(a, s) => {
                if let Some(g) = lo[a].as_mut() {
                    let xv = values[a].as_slice();
                    acc_from(
                        g,
                        first[0],
                        up.as_slice().iter().zip(xv).map(|(&u, &x)| {
                            let t = nofis_parallel::math::tanh(x);
                            (u * s) * (1.0 - t * t)
                        }),
                    );
                }
            }
            Instr::Sigmoid(a) => {
                if let Some(g) = lo[a].as_mut() {
                    let y = values[node].as_slice();
                    acc_from(
                        g,
                        first[0],
                        up.as_slice()
                            .iter()
                            .zip(y)
                            .map(|(&u, &yv)| u * yv * (1.0 - yv)),
                    );
                }
            }
            Instr::Softplus(a) => {
                if let Some(g) = lo[a].as_mut() {
                    let xv = values[a].as_slice();
                    acc_from(
                        g,
                        first[0],
                        up.as_slice()
                            .iter()
                            .zip(xv)
                            .map(|(&u, &x)| u * graph::sigmoid(x)),
                    );
                }
            }
            Instr::Relu(a) => {
                if let Some(g) = lo[a].as_mut() {
                    let xv = values[a].as_slice();
                    acc_from(
                        g,
                        first[0],
                        up.as_slice()
                            .iter()
                            .zip(xv)
                            .map(|(&u, &x)| if x > 0.0 { u } else { 0.0 }),
                    );
                }
            }
            Instr::Exp(a) => {
                if let Some(g) = lo[a].as_mut() {
                    let y = values[node].as_slice();
                    acc_from(
                        g,
                        first[0],
                        up.as_slice().iter().zip(y).map(|(&u, &yv)| u * yv),
                    );
                }
            }
            Instr::Ln(a) => {
                if let Some(g) = lo[a].as_mut() {
                    let xv = values[a].as_slice();
                    acc_from(
                        g,
                        first[0],
                        up.as_slice().iter().zip(xv).map(|(&u, &x)| u / x),
                    );
                }
            }
            Instr::Square(a) => {
                if let Some(g) = lo[a].as_mut() {
                    let xv = values[a].as_slice();
                    acc_from(
                        g,
                        first[0],
                        up.as_slice().iter().zip(xv).map(|(&u, &x)| u * 2.0 * x),
                    );
                }
            }
            Instr::MinScalar(a, c) => {
                if let Some(g) = lo[a].as_mut() {
                    let xv = values[a].as_slice();
                    acc_from(
                        g,
                        first[0],
                        up.as_slice()
                            .iter()
                            .zip(xv)
                            .map(|(&u, &x)| if x < c { u } else { 0.0 }),
                    );
                }
            }
            Instr::SumAll(a) => {
                if let Some(g) = lo[a].as_mut() {
                    let u = up.item();
                    acc_from(g, first[0], std::iter::repeat_n(u, g.len()));
                }
            }
            Instr::MeanAll(a) => {
                if let Some(g) = lo[a].as_mut() {
                    let len = g.len();
                    let s = up.item() / len as f64;
                    acc_from(g, first[0], std::iter::repeat_n(s, len));
                }
            }
            Instr::SumCols(a) => {
                if let Some(g) = lo[a].as_mut() {
                    let d = g.cols();
                    let ups = up.as_slice();
                    acc_from(g, first[0], (0..ups.len() * d).map(|idx| ups[idx / d]));
                }
            }
            Instr::External { input } => {
                if let Some(g) = lo[input].as_mut() {
                    let (_, jac) = self
                        .ext_grads
                        .iter()
                        .find(|(nd, _)| *nd == node)
                        .expect("external Jacobian slot");
                    let d = jac.cols();
                    let ups = up.as_slice();
                    let js = jac.as_slice();
                    acc_from(
                        g,
                        first[0],
                        js.iter().enumerate().map(|(idx, &jv)| ups[idx / d] * jv),
                    );
                }
            }
        }
    }

    /// Visits every parameter-leaf gradient in tape order (the
    /// [`GradSource`] hand-off to fused optimizer steps).
    pub fn for_each_param_grad(&self, mut f: impl FnMut(ParamId, &Tensor)) {
        for &(id, slot) in &self.param_slots {
            if let Some(g) = self.grads[slot].as_ref() {
                f(id, g);
            }
        }
    }

    /// Collects accumulated parameter gradients as `(id, grad)` pairs,
    /// summing duplicates in first-appearance order (the same merge order
    /// as [`Graph::param_grads`]).
    pub fn param_grads(&self) -> Vec<(ParamId, Tensor)> {
        let mut out: Vec<(ParamId, Tensor)> = Vec::new();
        self.for_each_param_grad(|id, g| {
            if let Some((_, acc)) = out.iter_mut().find(|(pid, _)| *pid == id) {
                acc.axpy(1.0, g);
            } else {
                out.push((id, g.clone()));
            }
        });
        out
    }
}

impl GradSource for CompiledStep {
    fn for_each_param_grad<F: FnMut(ParamId, &Tensor)>(&self, f: F) {
        CompiledStep::for_each_param_grad(self, f);
    }

    fn param_grads(&self) -> Vec<(ParamId, Tensor)> {
        CompiledStep::param_grads(self)
    }
}

/// Inputs of `op` in the exact order `Graph::apply_backward` accumulates
/// into them (`Linear` visits bias, then x, then W).
fn backward_visit_order(op: &Op) -> [Option<Var>; 3] {
    match *op {
        Op::Leaf | Op::Param(_) => [None; 3],
        Op::Add(a, b)
        | Op::AddRow(a, b)
        | Op::Sub(a, b)
        | Op::Mul(a, b)
        | Op::MulRow(a, b)
        | Op::Matmul(a, b) => [Some(a), Some(b), None],
        Op::Linear { x, w, b, .. } => [Some(b), Some(x), Some(w)],
        Op::Scale(a, _)
        | Op::AddScalar(a, _)
        | Op::Neg(a)
        | Op::Tanh(a)
        | Op::TanhScale(a, _)
        | Op::Sigmoid(a)
        | Op::Softplus(a)
        | Op::Relu(a)
        | Op::Exp(a)
        | Op::Ln(a)
        | Op::Square(a)
        | Op::MinScalar(a, _)
        | Op::SumAll(a)
        | Op::MeanAll(a)
        | Op::SumCols(a) => [Some(a), None, None],
        Op::External { input, .. } => [Some(input), None, None],
    }
}

/// `out[j] = f(a[j], b[j])` — the replay mirror of `pooled_zip`.
fn elementwise_zip(out: &mut Tensor, a: &Tensor, b: &Tensor, f: impl Fn(f64, f64) -> f64) {
    for ((o, &x), &y) in out
        .as_mut_slice()
        .iter_mut()
        .zip(a.as_slice())
        .zip(b.as_slice())
    {
        *o = f(x, y);
    }
}

/// `out[r][c] = f(a[r][c], row[c])` — the replay mirror of the broadcast
/// `add_row`/`mul_row` constructors (copy then op is a single arithmetic
/// op per element either way).
fn rowwise_zip(out: &mut Tensor, a: &Tensor, row: &Tensor, f: impl Fn(f64, f64) -> f64) {
    let d = row.len();
    let rv = row.as_slice();
    for (orow, arow) in out
        .as_mut_slice()
        .chunks_exact_mut(d)
        .zip(a.as_slice().chunks_exact(d))
    {
        for ((o, &x), &r) in orow.iter_mut().zip(arow).zip(rv) {
            *o = f(x, r);
        }
    }
}

/// `out[j] = f(a[j])` — the replay mirror of `pooled_map`.
fn elementwise(out: &mut Tensor, a: &Tensor, f: impl Fn(f64) -> f64) {
    for (o, &x) in out.as_mut_slice().iter_mut().zip(a.as_slice()) {
        *o = f(x);
    }
}

/// Writes (`first`) or merges the per-element delta stream into `dst`.
///
/// Mirrors the interpreted compute-delta-then-move/axpy exactly: a first
/// write lands the delta verbatim (the interpreted engine moves the delta
/// buffer in), a merge adds element-by-element in index order (axpy).
fn acc_from(dst: &mut Tensor, first: bool, delta: impl Iterator<Item = f64>) {
    if first {
        for (o, d) in dst.as_mut_slice().iter_mut().zip(delta) {
            *o = d;
        }
    } else {
        for (o, d) in dst.as_mut_slice().iter_mut().zip(delta) {
            *o += d;
        }
    }
}

/// Column-sum accumulation for `1 x D` broadcast gradients: per column the
/// terms `f(up[r*d + c], r*d + c)` are summed over ascending rows from
/// `0.0` — the same per-element add sequence as the interpreted zeroed
/// buffer filled row-by-row — then written or merged into `dst`.
fn acc_col_sums(dst: &mut Tensor, first: bool, up: &Tensor, f: impl Fn(f64, usize) -> f64) {
    let d = dst.len();
    let ups = up.as_slice();
    for (c, o) in dst.as_mut_slice().iter_mut().enumerate() {
        let mut acc = 0.0;
        let mut idx = c;
        while idx < ups.len() {
            acc += f(ups[idx], idx);
            idx += d;
        }
        if first {
            *o = acc;
        } else {
            *o += acc;
        }
    }
}

/// Matmul-shaped accumulation: a first write runs the kernel directly into
/// the gradient buffer (the kernels write every element once, matching the
/// interpreted move of a freshly computed delta); a merge computes the
/// delta into recycled scratch and adds it with the same axpy the
/// interpreted engine uses.
fn acc_matmul(
    dst: &mut Tensor,
    first: bool,
    scratch: &mut BufferPool,
    kernel: impl Fn(&mut [f64]),
) {
    if first {
        kernel(dst.as_mut_slice());
    } else {
        let (r, c) = dst.shape();
        let mut buf = Tensor::from_vec(r, c, scratch.take(r * c));
        kernel(buf.as_mut_slice());
        dst.axpy(1.0, &buf);
        scratch.put(buf.into_vec());
    }
}
