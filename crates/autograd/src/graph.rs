use crate::Tensor;

/// Identifier of a parameter tensor registered with a
/// [`ParamStore`](crate::ParamStore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of this parameter within its store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a node in a [`Graph`].
///
/// `Var`s are cheap copies; all operations live on [`Graph`] and take
/// `Var` operands, e.g. `g.add(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Constant leaf: gradients stop here.
    Leaf,
    /// Parameter leaf: gradients are collected per [`ParamId`].
    Param(ParamId),
    Add(Var, Var),
    /// `[N,D] + [1,D]` broadcast add (bias).
    AddRow(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `[N,D] * [1,D]` broadcast multiply (masks).
    MulRow(Var, Var),
    Matmul(Var, Var),
    Scale(Var, f64),
    AddScalar(Var),
    Neg(Var),
    Tanh(Var),
    Sigmoid(Var),
    Softplus(Var),
    Relu(Var),
    Exp(Var),
    Ln(Var),
    Square(Var),
    /// Elementwise `min(x, c)`.
    MinScalar(Var, f64),
    /// `[N,D] -> 1x1` sum of all entries.
    SumAll(Var),
    /// `[N,D] -> 1x1` mean of all entries.
    MeanAll(Var),
    /// `[N,D] -> [N,1]` per-row sum.
    SumCols(Var),
    /// Externally differentiated row-wise function `R^D -> R`; `grads` holds
    /// the `[N,D]` Jacobian rows computed by the caller during the forward
    /// pass.
    External {
        input: Var,
        grads: Tensor,
    },
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

/// A dynamically built computation tape supporting reverse-mode
/// differentiation.
///
/// Build a fresh `Graph` per training step, inject parameters with
/// [`Graph::param`], compose operations, call [`Graph::backward`] on a
/// scalar loss, and read parameter gradients back with
/// [`Graph::param_grads`].
///
/// # Example
///
/// ```
/// use nofis_autograd::{Graph, Tensor};
///
/// let mut g = Graph::new();
/// let x = g.constant(Tensor::from_row(&[3.0]));
/// let y = g.square(x);          // y = x^2
/// let loss = g.sum_all(y);
/// g.backward(loss);
/// assert_eq!(g.grad(x).unwrap().as_slice(), &[6.0]); // dy/dx = 2x
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of the last [`Graph::backward`] loss with respect to
    /// `v`, if `v` participated.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Adds a constant leaf (no gradient flows past it).
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf)
    }

    /// Adds a parameter leaf whose gradient will be reported by
    /// [`Graph::param_grads`] under `id`.
    pub fn param(&mut self, id: ParamId, t: Tensor) -> Var {
        self.push(t, Op::Param(id))
    }

    /// Elementwise addition of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let out = self.value(a).zip_map(self.value(b), |x, y| x + y);
        self.push(out, Op::Add(a, b))
    }

    /// Broadcast addition `[N,D] + [1,D]` (e.g. adding a bias row).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not `1 x D` with `D` matching `a`'s columns.
    pub fn add_row(&mut self, a: Var, b: Var) -> Var {
        let (n, d) = self.value(a).shape();
        assert_eq!(
            self.value(b).shape(),
            (1, d),
            "add_row rhs must be 1x{d}, got {:?}",
            self.value(b).shape()
        );
        let mut out = self.value(a).clone();
        for r in 0..n {
            for c in 0..d {
                out[(r, c)] += self.value(b)[(0, c)];
            }
        }
        self.push(out, Op::AddRow(a, b))
    }

    /// Elementwise subtraction `a - b`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let out = self.value(a).zip_map(self.value(b), |x, y| x - y);
        self.push(out, Op::Sub(a, b))
    }

    /// Elementwise multiplication of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let out = self.value(a).zip_map(self.value(b), |x, y| x * y);
        self.push(out, Op::Mul(a, b))
    }

    /// Broadcast multiplication `[N,D] * [1,D]` (e.g. applying a mask row).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not `1 x D` with `D` matching `a`'s columns.
    pub fn mul_row(&mut self, a: Var, b: Var) -> Var {
        let (n, d) = self.value(a).shape();
        assert_eq!(
            self.value(b).shape(),
            (1, d),
            "mul_row rhs must be 1x{d}, got {:?}",
            self.value(b).shape()
        );
        let mut out = self.value(a).clone();
        for r in 0..n {
            for c in 0..d {
                out[(r, c)] *= self.value(b)[(0, c)];
            }
        }
        self.push(out, Op::MulRow(a, b))
    }

    /// Matrix product `a @ b`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let out = self.value(a).matmul(self.value(b));
        self.push(out, Op::Matmul(a, b))
    }

    /// Multiplies every entry by the constant `s`.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let out = self.value(a).map(|x| x * s);
        self.push(out, Op::Scale(a, s))
    }

    /// Adds the constant `s` to every entry.
    pub fn add_scalar(&mut self, a: Var, s: f64) -> Var {
        let out = self.value(a).map(|x| x + s);
        self.push(out, Op::AddScalar(a))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let out = self.value(a).map(|x| -x);
        self.push(out, Op::Neg(a))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f64::tanh);
        self.push(out, Op::Tanh(a))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let out = self.value(a).map(sigmoid);
        self.push(out, Op::Sigmoid(a))
    }

    /// Elementwise numerically stable softplus `ln(1 + e^x)`.
    pub fn softplus(&mut self, a: Var) -> Var {
        let out = self.value(a).map(softplus);
        self.push(out, Op::Softplus(a))
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let out = self.value(a).map(|x| x.max(0.0));
        self.push(out, Op::Relu(a))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f64::exp);
        self.push(out, Op::Exp(a))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f64::ln);
        self.push(out, Op::Ln(a))
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let out = self.value(a).map(|x| x * x);
        self.push(out, Op::Square(a))
    }

    /// Elementwise `min(x, c)` against the constant `c`.
    ///
    /// The subgradient passes where `x < c` and is zero elsewhere, matching
    /// the convention used by the tempered NOFIS loss.
    pub fn min_scalar(&mut self, a: Var, c: f64) -> Var {
        let out = self.value(a).map(|x| x.min(c));
        self.push(out, Op::MinScalar(a, c))
    }

    /// Sum of all entries, producing a `1 x 1` tensor.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let out = Tensor::scalar(self.value(a).sum());
        self.push(out, Op::SumAll(a))
    }

    /// Mean of all entries, producing a `1 x 1` tensor.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let out = Tensor::scalar(self.value(a).mean());
        self.push(out, Op::MeanAll(a))
    }

    /// Per-row sum, mapping `[N,D] -> [N,1]`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let (n, _) = self.value(a).shape();
        let mut out = Tensor::zeros(n, 1);
        for r in 0..n {
            out[(r, 0)] = self.value(a).row(r).iter().sum();
        }
        self.push(out, Op::SumCols(a))
    }

    /// Applies an externally differentiated row-wise function
    /// `f : R^D -> R` to each row of `a`.
    ///
    /// `f(row)` must return `(value, gradient)` where `gradient` has length
    /// `D`; the gradient is stored on the tape and used verbatim during
    /// [`Graph::backward`]. This is how black-box-but-differentiable
    /// simulators (circuit solvers, BPM, ODE models) enter the NOFIS loss.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a gradient whose length differs from `D`.
    pub fn external_rowwise(
        &mut self,
        a: Var,
        mut f: impl FnMut(&[f64]) -> (f64, Vec<f64>),
    ) -> Var {
        let (n, d) = self.value(a).shape();
        let mut out = Tensor::zeros(n, 1);
        let mut grads = Tensor::zeros(n, d);
        for r in 0..n {
            let (v, grad) = f(self.value(a).row(r));
            assert_eq!(
                grad.len(),
                d,
                "external gradient has length {} but input has {d} columns",
                grad.len()
            );
            out[(r, 0)] = v;
            grads.row_mut(r).copy_from_slice(&grad);
        }
        self.push(out, Op::External { input: a, grads })
    }

    /// Parallel variant of [`Graph::external_rowwise`] for thread-safe
    /// row functions.
    ///
    /// Rows are evaluated in fixed-size chunks across `pool`; results land
    /// in row order, so the tape recorded here is bitwise identical to the
    /// one [`Graph::external_rowwise`] would record for the same `f`,
    /// regardless of the pool's thread count. This is the entry point the
    /// NOFIS training loop uses for limit-state oracle evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a gradient whose length differs from `D`.
    pub fn external_rowwise_par(
        &mut self,
        a: Var,
        pool: &nofis_parallel::ThreadPool,
        f: impl Fn(&[f64]) -> (f64, Vec<f64>) + Sync,
    ) -> Var {
        /// Rows per chunk — fixed so chunk boundaries never depend on the
        /// thread count.
        const ROW_CHUNK: usize = 16;

        let (n, d) = self.value(a).shape();
        let input = self.value(a);
        let n_chunks = nofis_parallel::chunks::chunk_count(n, ROW_CHUNK);
        let per_chunk: Vec<Vec<(f64, Vec<f64>)>> = pool.map_chunks(n_chunks, |ci| {
            let (start, end) = nofis_parallel::chunks::chunk_range(n, ROW_CHUNK, ci);
            (start..end).map(|r| f(input.row(r))).collect()
        });

        let mut out = Tensor::zeros(n, 1);
        let mut grads = Tensor::zeros(n, d);
        for (r, (v, grad)) in per_chunk.into_iter().flatten().enumerate() {
            assert_eq!(
                grad.len(),
                d,
                "external gradient has length {} but input has {d} columns",
                grad.len()
            );
            out[(r, 0)] = v;
            grads.row_mut(r).copy_from_slice(&grad);
        }
        self.push(out, Op::External { input: a, grads })
    }

    /// Runs reverse-mode differentiation from the scalar `loss` node.
    ///
    /// Gradients accumulate on every node reachable from `loss`; read them
    /// with [`Graph::grad`] or collect parameter gradients via
    /// [`Graph::param_grads`].
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `1 x 1` tensor.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward requires a scalar (1x1) loss"
        );
        for node in &mut self.nodes {
            node.grad = None;
        }
        self.nodes[loss.0].grad = Some(Tensor::scalar(1.0));

        for i in (0..=loss.0).rev() {
            let Some(up) = self.nodes[i].grad.take() else {
                continue;
            };
            // Take the op out to appease the borrow checker, then restore it.
            let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
            self.apply_backward(i, &op, &up);
            self.nodes[i].op = op;
            self.nodes[i].grad = Some(up);
        }
    }

    fn accumulate(&mut self, v: Var, delta: Tensor) {
        match &mut self.nodes[v.0].grad {
            Some(g) => g.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn apply_backward(&mut self, node: usize, op: &Op, up: &Tensor) {
        match *op {
            Op::Leaf | Op::Param(_) => {}
            Op::Add(a, b) => {
                self.accumulate(a, up.clone());
                self.accumulate(b, up.clone());
            }
            Op::AddRow(a, b) => {
                self.accumulate(a, up.clone());
                let (n, d) = up.shape();
                let mut gb = Tensor::zeros(1, d);
                for r in 0..n {
                    for c in 0..d {
                        gb[(0, c)] += up[(r, c)];
                    }
                }
                self.accumulate(b, gb);
            }
            Op::Sub(a, b) => {
                self.accumulate(a, up.clone());
                self.accumulate(b, up.map(|x| -x));
            }
            Op::Mul(a, b) => {
                let ga = up.zip_map(self.value(b), |u, y| u * y);
                let gb = up.zip_map(self.value(a), |u, x| u * x);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::MulRow(a, b) => {
                let (n, d) = up.shape();
                let mut ga = Tensor::zeros(n, d);
                let mut gb = Tensor::zeros(1, d);
                for r in 0..n {
                    for c in 0..d {
                        ga[(r, c)] = up[(r, c)] * self.value(b)[(0, c)];
                        gb[(0, c)] += up[(r, c)] * self.value(a)[(r, c)];
                    }
                }
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Matmul(a, b) => {
                let ga = up.matmul(&self.value(b).transpose());
                let gb = self.value(a).transpose().matmul(up);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Scale(a, s) => self.accumulate(a, up.map(|x| x * s)),
            Op::AddScalar(a) => self.accumulate(a, up.clone()),
            Op::Neg(a) => self.accumulate(a, up.map(|x| -x)),
            Op::Tanh(a) => {
                let g = up.zip_map(&self.nodes[node].value, |u, y| u * (1.0 - y * y));
                self.accumulate(a, g);
            }
            Op::Sigmoid(a) => {
                let g = up.zip_map(&self.nodes[node].value, |u, y| u * y * (1.0 - y));
                self.accumulate(a, g);
            }
            Op::Softplus(a) => {
                let g = up.zip_map(self.value(a), |u, x| u * sigmoid(x));
                self.accumulate(a, g);
            }
            Op::Relu(a) => {
                let g = up.zip_map(self.value(a), |u, x| if x > 0.0 { u } else { 0.0 });
                self.accumulate(a, g);
            }
            Op::Exp(a) => {
                let g = up.zip_map(&self.nodes[node].value, |u, y| u * y);
                self.accumulate(a, g);
            }
            Op::Ln(a) => {
                let g = up.zip_map(self.value(a), |u, x| u / x);
                self.accumulate(a, g);
            }
            Op::Square(a) => {
                let g = up.zip_map(self.value(a), |u, x| u * 2.0 * x);
                self.accumulate(a, g);
            }
            Op::MinScalar(a, c) => {
                let g = up.zip_map(self.value(a), |u, x| if x < c { u } else { 0.0 });
                self.accumulate(a, g);
            }
            Op::SumAll(a) => {
                let (n, d) = self.value(a).shape();
                self.accumulate(a, Tensor::filled(n, d, up.item()));
            }
            Op::MeanAll(a) => {
                let (n, d) = self.value(a).shape();
                let s = up.item() / (n * d) as f64;
                self.accumulate(a, Tensor::filled(n, d, s));
            }
            Op::SumCols(a) => {
                let (n, d) = self.value(a).shape();
                let mut g = Tensor::zeros(n, d);
                for r in 0..n {
                    let u = up[(r, 0)];
                    for c in 0..d {
                        g[(r, c)] = u;
                    }
                }
                self.accumulate(a, g);
            }
            Op::External { input, ref grads } => {
                let (n, d) = grads.shape();
                let mut g = Tensor::zeros(n, d);
                for r in 0..n {
                    let u = up[(r, 0)];
                    for c in 0..d {
                        g[(r, c)] = u * grads[(r, c)];
                    }
                }
                self.accumulate(input, g);
            }
        }
    }

    /// Collects accumulated parameter gradients as `(id, grad)` pairs.
    ///
    /// If the same [`ParamId`] was injected more than once, its gradients
    /// are summed. Parameters that did not participate in the last backward
    /// pass are omitted.
    pub fn param_grads(&self) -> Vec<(ParamId, Tensor)> {
        let mut out: Vec<(ParamId, Tensor)> = Vec::new();
        for node in &self.nodes {
            if let (Op::Param(id), Some(g)) = (&node.op, &node.grad) {
                if let Some((_, acc)) = out.iter_mut().find(|(pid, _)| pid == id) {
                    acc.axpy(1.0, g);
                } else {
                    out.push((*id, g.clone()));
                }
            }
        }
        out
    }
}

/// Numerically stable logistic sigmoid.
pub(crate) fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softplus `ln(1 + e^x)`.
pub(crate) fn softplus(x: f64) -> f64 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_mul_gradients() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_row(&[2.0, 3.0]));
        let b = g.constant(Tensor::from_row(&[4.0, 5.0]));
        let prod = g.mul(a, b);
        let s = g.sum_all(prod);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[4.0, 5.0]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn matmul_gradients_match_formula() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.constant(Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        let s = g.sum_all(c);
        g.backward(s);
        // dS/dA = 1 @ B^T
        assert_eq!(g.grad(a).unwrap().as_slice(), &[11.0, 15.0, 11.0, 15.0]);
        // dS/dB = A^T @ 1
        assert_eq!(g.grad(b).unwrap().as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn chained_nonlinearities() {
        // loss = sum(tanh(x)^2); d/dx = 2 tanh(x)(1 - tanh^2(x))
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[0.5]));
        let t = g.tanh(x);
        let sq = g.square(t);
        let loss = g.sum_all(sq);
        g.backward(loss);
        let th: f64 = 0.5_f64.tanh();
        let expected = 2.0 * th * (1.0 - th * th);
        assert!((g.grad(x).unwrap().as_slice()[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn broadcast_add_row_sums_bias_grad() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(3, 2, vec![1.0; 6]));
        let b = g.constant(Tensor::from_row(&[10.0, 20.0]));
        let y = g.add_row(x, b);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[3.0, 3.0]);
        assert_eq!(g.value(y)[(2, 1)], 21.0);
    }

    #[test]
    fn mul_row_masks() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let m = g.constant(Tensor::from_row(&[1.0, 0.0]));
        let y = g.mul_row(x, m);
        assert_eq!(g.value(y).as_slice(), &[1.0, 0.0, 3.0, 0.0]);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[1.0, 0.0, 1.0, 0.0]);
        assert_eq!(g.grad(m).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn min_scalar_subgradient() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[-1.0, 1.0]));
        let y = g.min_scalar(x, 0.0);
        assert_eq!(g.value(y).as_slice(), &[-1.0, 0.0]);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn sum_cols_shapes_and_grad() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let y = g.sum_cols(x);
        assert_eq!(g.value(y).shape(), (2, 1));
        assert_eq!(g.value(y).as_slice(), &[6.0, 15.0]);
        let loss = g.mean_all(y);
        g.backward(loss);
        assert!(g
            .grad(x)
            .unwrap()
            .as_slice()
            .iter()
            .all(|&v| (v - 0.5).abs() < 1e-15));
    }

    #[test]
    fn external_rowwise_uses_supplied_gradient() {
        // f(row) = 3*x0 - x1, grad = [3, -1]
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let y = g.external_rowwise(x, |row| (3.0 * row[0] - row[1], vec![3.0, -1.0]));
        assert_eq!(g.value(y).as_slice(), &[1.0, 5.0]);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[3.0, -1.0, 3.0, -1.0]);
    }

    #[test]
    fn param_grads_accumulate_across_reuse() {
        let mut g = Graph::new();
        let id = ParamId(0);
        let w1 = g.param(id, Tensor::from_row(&[2.0]));
        let w2 = g.param(id, Tensor::from_row(&[2.0]));
        let prod = g.mul(w1, w2);
        let loss = g.sum_all(prod);
        g.backward(loss);
        let grads = g.param_grads();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].1.as_slice(), &[4.0]); // d(w*w)/dw for both copies
    }

    #[test]
    fn backward_twice_is_idempotent() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[1.5]));
        let y = g.exp(x);
        let loss = g.sum_all(y);
        g.backward(loss);
        let first = g.grad(x).unwrap().as_slice()[0];
        g.backward(loss);
        let second = g.grad(x).unwrap().as_slice()[0];
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[1.0, 2.0]));
        g.backward(x);
    }

    #[test]
    fn stable_sigmoid_softplus() {
        assert!(sigmoid(800.0) > 0.999_999);
        assert!(sigmoid(-800.0) < 1e-6);
        assert!(softplus(-800.0).abs() < 1e-12);
        assert!((softplus(800.0) - 800.0).abs() < 1e-9);
    }
}
