use crate::pool::PoolStats;
use crate::{BufferPool, Tensor};

/// Identifier of a parameter tensor registered with a
/// [`ParamStore`](crate::ParamStore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of this parameter within its store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a node in a [`Graph`].
///
/// `Var`s are cheap copies; all operations live on [`Graph`] and take
/// `Var` operands, e.g. `g.add(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// Tape position of this node (used by the compiled-tape lowering).
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Constant leaf: gradients stop here.
    Leaf,
    /// Parameter leaf: gradients are collected per [`ParamId`].
    Param(ParamId),
    Add(Var, Var),
    /// `[N,D] + [1,D]` broadcast add (bias).
    AddRow(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `[N,D] * [1,D]` broadcast multiply (masks).
    MulRow(Var, Var),
    Matmul(Var, Var),
    /// Fused `x @ W + b` (optionally followed by `tanh`), the hot path of
    /// every `Linear`/`Mlp` layer: one tape node instead of three.
    Linear {
        x: Var,
        w: Var,
        b: Var,
        tanh: bool,
    },
    Scale(Var, f64),
    /// Adds the stored constant to every entry. The scalar is not needed by
    /// the backward pass (the gradient is a pass-through copy) but is kept
    /// on the tape so the compiled-tape lowering can replay the forward op.
    AddScalar(Var, f64),
    Neg(Var),
    Tanh(Var),
    /// Fused `s · tanh(x)` — the coupling-layer log-scale clamp.
    TanhScale(Var, f64),
    Sigmoid(Var),
    Softplus(Var),
    Relu(Var),
    Exp(Var),
    Ln(Var),
    Square(Var),
    /// Elementwise `min(x, c)`.
    MinScalar(Var, f64),
    /// `[N,D] -> 1x1` sum of all entries.
    SumAll(Var),
    /// `[N,D] -> 1x1` mean of all entries.
    MeanAll(Var),
    /// `[N,D] -> [N,1]` per-row sum.
    SumCols(Var),
    /// Externally differentiated row-wise function `R^D -> R`; `grads` holds
    /// the `[N,D]` Jacobian rows computed by the caller during the forward
    /// pass.
    External {
        input: Var,
        grads: Tensor,
    },
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
    /// `true` when some trainable [`Op::Param`] leaf is reachable from this
    /// node, i.e. the backward pass has a reason to compute its gradient.
    /// Always `true` when pruning is disabled (the default).
    requires_grad: bool,
}

/// A dynamically built computation tape supporting reverse-mode
/// differentiation.
///
/// Build a `Graph` once, inject parameters with [`Graph::param`] (or
/// [`ParamStore::inject`](crate::ParamStore::inject)), compose operations,
/// call [`Graph::backward`] on a scalar loss, and read parameter gradients
/// back with [`Graph::param_grads`]. Between training steps, call
/// [`Graph::reset`]: the tape clears but its node arena and every tensor
/// buffer are retained in an internal [`BufferPool`], so steady-state steps
/// perform no heap allocation (see [`Graph::pool_stats`]).
///
/// # Example
///
/// ```
/// use nofis_autograd::{Graph, Tensor};
///
/// let mut g = Graph::new();
/// let x = g.constant(Tensor::from_row(&[3.0]));
/// let y = g.square(x);          // y = x^2
/// let loss = g.sum_all(y);
/// g.backward(loss);
/// assert_eq!(g.grad(x).unwrap().as_slice(), &[6.0]); // dy/dx = 2x
///
/// g.reset();                    // recycle every buffer, keep capacity
/// assert!(g.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    pool: BufferPool,
    /// When `true`, gradient work is pruned for nodes with no trainable
    /// ancestor (see [`Graph::set_pruning`]).
    prune: bool,
    /// When `true` (default), layer helpers fuse `matmul + bias (+ tanh)`
    /// and `s · tanh` into single tape ops.
    fuse: bool,
    /// Cumulative observability counters (see [`Graph::snapshot`]).
    backward_runs: u64,
    grad_nodes: u64,
    skipped_nodes: u64,
    pruned_nodes: u64,
}

/// Cumulative tape/pool statistics, read via [`Graph::snapshot`].
///
/// Everything here is observational: counters are bumped on paths the
/// tape already takes and never change what gets computed. They quantify
/// the effect of the two per-step optimizations — the buffer pool
/// (`pool.misses` is the allocations-per-step meter) and frozen-gradient
/// pruning (`skipped_nodes` counts backward visits that did no gradient
/// work because nothing reached the node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphStats {
    /// Buffer-pool hit/miss counters (misses allocate, hits recycle).
    pub pool: PoolStats,
    /// [`Graph::backward`] invocations.
    pub backward_runs: u64,
    /// Nodes whose gradient was actually propagated across all backward
    /// runs (the per-run count is the live tape minus skipped nodes).
    pub grad_nodes: u64,
    /// Backward visits skipped because no gradient reached the node —
    /// pruned frozen-only subgraphs and branches the loss never touched.
    pub skipped_nodes: u64,
    /// Tape nodes built with gradients pruned (no trainable ancestor);
    /// only nonzero with [`Graph::set_pruning`] on.
    pub pruned_nodes: u64,
}

// ---------------------------------------------------------------------------
// Pooled tensor constructors (free functions so field borrows split).
// ---------------------------------------------------------------------------

fn pooled_zeros(pool: &mut BufferPool, rows: usize, cols: usize) -> Tensor {
    Tensor::from_vec(rows, cols, pool.take(rows * cols))
}

fn pooled_copy(pool: &mut BufferPool, src: &Tensor) -> Tensor {
    let mut data = pool.take_uninit(src.len());
    data.extend_from_slice(src.as_slice());
    Tensor::from_vec(src.rows(), src.cols(), data)
}

fn pooled_map(pool: &mut BufferPool, src: &Tensor, f: impl Fn(f64) -> f64) -> Tensor {
    let mut data = pool.take_uninit(src.len());
    data.extend(src.as_slice().iter().map(|&s| f(s)));
    Tensor::from_vec(src.rows(), src.cols(), data)
}

fn pooled_zip(
    pool: &mut BufferPool,
    a: &Tensor,
    b: &Tensor,
    f: impl Fn(f64, f64) -> f64,
) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "zip requires equal shapes");
    let mut data = pool.take_uninit(a.len());
    data.extend(
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| f(x, y)),
    );
    Tensor::from_vec(a.rows(), a.cols(), data)
}

/// `a @ bᵀ` into a pooled buffer through the transpose-free backward
/// kernel. Bitwise identical to materializing `transpose(b)` and calling
/// [`pooled_matmul`] — same reduction order, same zero-skip, same
/// row-partitioned parallel chunking — without the transpose buffer.
fn pooled_matmul_bt(pool: &mut BufferPool, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_bt of {}x{} by ({}x{})ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = pooled_zeros(pool, a.rows(), b.rows());
    nofis_parallel::kernels::matmul_bt_into(
        nofis_parallel::global(),
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
        a.rows(),
        a.cols(),
        b.rows(),
    );
    out
}

/// `aᵀ @ b` into a pooled buffer through the transpose-free backward
/// kernel. Bitwise identical to materializing `transpose(a)` and calling
/// [`pooled_matmul`], without the transpose buffer.
fn pooled_matmul_at(pool: &mut BufferPool, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at of ({}x{})ᵀ by {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = pooled_zeros(pool, a.cols(), b.cols());
    nofis_parallel::kernels::matmul_at_into(
        nofis_parallel::global(),
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
        a.rows(),
        a.cols(),
        b.cols(),
    );
    out
}

/// `a @ b` into a pooled buffer, through the same shared kernel as
/// [`Tensor::matmul`] (bitwise identical for any thread count).
fn pooled_matmul(pool: &mut BufferPool, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul of {}x{} by {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = pooled_zeros(pool, a.rows(), b.cols());
    nofis_parallel::kernels::matmul_into(
        nofis_parallel::global(),
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
        a.rows(),
        a.cols(),
        b.cols(),
    );
    out
}

impl Graph {
    /// Creates an empty graph with pruning off and op fusion on.
    pub fn new() -> Self {
        Graph::default().with_fusion_on()
    }

    fn with_fusion_on(mut self) -> Self {
        self.fuse = true;
        self
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the tape while retaining the node arena and recycling every
    /// tensor buffer (values, gradients, external Jacobians) into the
    /// internal pool, so rebuilding an identically shaped tape allocates
    /// nothing.
    pub fn reset(&mut self) {
        let Graph { nodes, pool, .. } = self;
        for mut node in nodes.drain(..) {
            if let Some(g) = node.grad.take() {
                pool.put(g.into_vec());
            }
            if let Op::External { grads, .. } = node.op {
                pool.put(grads.into_vec());
            }
            pool.put(node.value.into_vec());
        }
    }

    /// Enables or disables needs-grad pruning for the tape built next.
    ///
    /// With pruning **on**, constants do not require gradients, parameter
    /// leaves require them only when injected as trainable, and
    /// [`Graph::backward`] skips every gradient kernel (and grad-buffer
    /// allocation) for nodes with no trainable ancestor. The gradients that
    /// *are* computed are bitwise identical to the unpruned ones — pruning
    /// removes work whose results would never be read, nothing else.
    ///
    /// With pruning **off** (the default), every node requires gradients,
    /// matching the historical semantics (`g.grad(constant)` works).
    ///
    /// # Panics
    ///
    /// Panics if the tape is non-empty: flags are assigned at node-build
    /// time, so toggling mid-tape would make them inconsistent.
    pub fn set_pruning(&mut self, on: bool) {
        assert!(
            self.nodes.is_empty(),
            "set_pruning requires an empty tape (call reset() first)"
        );
        self.prune = on;
    }

    /// Whether needs-grad pruning is enabled.
    pub fn pruning_enabled(&self) -> bool {
        self.prune
    }

    /// Enables or disables fused layer ops (`matmul+bias(+tanh)`,
    /// `s·tanh`). Fusion is on by default; the unfused composition produces
    /// bitwise-identical values and gradients and exists for A/B testing
    /// and benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if the tape is non-empty.
    pub fn set_fusion(&mut self, on: bool) {
        assert!(
            self.nodes.is_empty(),
            "set_fusion requires an empty tape (call reset() first)"
        );
        self.fuse = on;
    }

    /// Whether fused layer ops are enabled.
    pub fn fusion_enabled(&self) -> bool {
        self.fuse
    }

    /// Hit/miss counters of the internal buffer pool — the workspace's
    /// allocations-per-step meter (misses allocate, hits recycle).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Snapshot of the cumulative tape/pool counters. Callers emit these
    /// as telemetry gauges at stage boundaries; deltas between snapshots
    /// give per-stage allocations and pruning effectiveness.
    pub fn snapshot(&self) -> GraphStats {
        GraphStats {
            pool: self.pool.stats(),
            backward_runs: self.backward_runs,
            grad_nodes: self.grad_nodes,
            skipped_nodes: self.skipped_nodes,
            pruned_nodes: self.pruned_nodes,
        }
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        if !requires_grad {
            self.pruned_nodes += 1;
        }
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    /// Whether `v` has a trainable ancestor (always `true` without pruning).
    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// The op recorded at tape position `i` (compiled-tape lowering).
    pub(crate) fn node_op(&self, i: usize) -> &Op {
        &self.nodes[i].op
    }

    /// The forward value at tape position `i` (compiled-tape lowering).
    pub(crate) fn node_value(&self, i: usize) -> &Tensor {
        &self.nodes[i].value
    }

    /// Whether the node at tape position `i` requires gradients
    /// (compiled-tape lowering).
    pub(crate) fn node_requires_grad(&self, i: usize) -> bool {
        self.nodes[i].requires_grad
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of the last [`Graph::backward`] loss with respect to
    /// `v`, if `v` participated (and was not pruned).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Adds a constant leaf (no gradient flows past it).
    pub fn constant(&mut self, t: Tensor) -> Var {
        let rg = !self.prune;
        self.push(t, Op::Leaf, rg)
    }

    /// Adds a constant leaf by copying `data` into a pooled buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn constant_from_slice(&mut self, rows: usize, cols: usize, data: &[f64]) -> Var {
        assert_eq!(data.len(), rows * cols, "constant_from_slice length");
        let mut buf = self.pool.take_uninit(rows * cols);
        buf.extend_from_slice(data);
        let rg = !self.prune;
        self.push(Tensor::from_vec(rows, cols, buf), Op::Leaf, rg)
    }

    /// Adds a constant leaf whose pooled buffer is filled in place by
    /// `fill` (handed a zeroed `rows * cols` slice) — e.g. a fresh batch of
    /// base samples written without an intermediate allocation.
    pub fn constant_with(
        &mut self,
        rows: usize,
        cols: usize,
        fill: impl FnOnce(&mut [f64]),
    ) -> Var {
        let mut buf = self.pool.take(rows * cols);
        fill(&mut buf);
        let rg = !self.prune;
        self.push(Tensor::from_vec(rows, cols, buf), Op::Leaf, rg)
    }

    /// Adds a trainable parameter leaf whose gradient will be reported by
    /// [`Graph::param_grads`] under `id`.
    pub fn param(&mut self, id: ParamId, t: Tensor) -> Var {
        self.push(t, Op::Param(id), true)
    }

    /// Adds a parameter leaf by copying `data` into a pooled buffer.
    ///
    /// With pruning enabled and `trainable == false` (a frozen parameter),
    /// the leaf requires no gradient: backward skips its whole forward-only
    /// subgraph and [`Graph::param_grads`] omits it.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn param_from_slice(
        &mut self,
        id: ParamId,
        rows: usize,
        cols: usize,
        data: &[f64],
        trainable: bool,
    ) -> Var {
        assert_eq!(data.len(), rows * cols, "param_from_slice length");
        let mut buf = self.pool.take_uninit(rows * cols);
        buf.extend_from_slice(data);
        let rg = trainable || !self.prune;
        self.push(Tensor::from_vec(rows, cols, buf), Op::Param(id), rg)
    }

    /// Elementwise addition of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_zip(pool, &nodes[a.0].value, &nodes[b.0].value, |x, y| x + y);
        let rg = self.rg(a) || self.rg(b);
        self.push(out, Op::Add(a, b), rg)
    }

    /// Broadcast addition `[N,D] + [1,D]` (e.g. adding a bias row).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not `1 x D` with `D` matching `a`'s columns.
    pub fn add_row(&mut self, a: Var, b: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let (n, d) = nodes[a.0].value.shape();
        assert_eq!(
            nodes[b.0].value.shape(),
            (1, d),
            "add_row rhs must be 1x{d}, got {:?}",
            nodes[b.0].value.shape()
        );
        let mut out = pooled_copy(pool, &nodes[a.0].value);
        let bias = &nodes[b.0].value;
        for r in 0..n {
            for c in 0..d {
                out[(r, c)] += bias[(0, c)];
            }
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(out, Op::AddRow(a, b), rg)
    }

    /// Elementwise subtraction `a - b`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_zip(pool, &nodes[a.0].value, &nodes[b.0].value, |x, y| x - y);
        let rg = self.rg(a) || self.rg(b);
        self.push(out, Op::Sub(a, b), rg)
    }

    /// Elementwise multiplication of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_zip(pool, &nodes[a.0].value, &nodes[b.0].value, |x, y| x * y);
        let rg = self.rg(a) || self.rg(b);
        self.push(out, Op::Mul(a, b), rg)
    }

    /// Broadcast multiplication `[N,D] * [1,D]` (e.g. applying a mask row).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not `1 x D` with `D` matching `a`'s columns.
    pub fn mul_row(&mut self, a: Var, b: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let (n, d) = nodes[a.0].value.shape();
        assert_eq!(
            nodes[b.0].value.shape(),
            (1, d),
            "mul_row rhs must be 1x{d}, got {:?}",
            nodes[b.0].value.shape()
        );
        let mut out = pooled_copy(pool, &nodes[a.0].value);
        let row = &nodes[b.0].value;
        for r in 0..n {
            for c in 0..d {
                out[(r, c)] *= row[(0, c)];
            }
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(out, Op::MulRow(a, b), rg)
    }

    /// Matrix product `a @ b`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_matmul(pool, &nodes[a.0].value, &nodes[b.0].value);
        let rg = self.rg(a) || self.rg(b);
        self.push(out, Op::Matmul(a, b), rg)
    }

    /// Fused linear layer `x @ W + b`, optionally followed by `tanh`.
    ///
    /// One tape node replaces the `matmul` → `add_row` (→ `tanh`) chain; the
    /// value and gradients are bitwise identical to that composition (the
    /// arithmetic runs in the same order: full matmul, then the bias rows,
    /// then the activation).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree or `b` is not `1 x D`.
    pub fn linear(&mut self, x: Var, w: Var, b: Var, apply_tanh: bool) -> Var {
        let Graph { nodes, pool, .. } = self;
        let mut out = pooled_matmul(pool, &nodes[x.0].value, &nodes[w.0].value);
        let d = out.cols();
        assert_eq!(
            nodes[b.0].value.shape(),
            (1, d),
            "linear bias must be 1x{d}, got {:?}",
            nodes[b.0].value.shape()
        );
        // One slice pass over the rows; per element the arithmetic is
        // exactly `tanh(xw + bias)` through the shared deterministic
        // kernel, the same add-then-activate each element sees in the
        // composed chain.
        let bias = nodes[b.0].value.as_slice();
        if apply_tanh {
            for row in out.as_mut_slice().chunks_exact_mut(d) {
                for (v, &bv) in row.iter_mut().zip(bias) {
                    *v = nofis_parallel::math::tanh(*v + bv);
                }
            }
        } else {
            for row in out.as_mut_slice().chunks_exact_mut(d) {
                for (v, &bv) in row.iter_mut().zip(bias) {
                    *v += bv;
                }
            }
        }
        let rg = self.rg(x) || self.rg(w) || self.rg(b);
        self.push(
            out,
            Op::Linear {
                x,
                w,
                b,
                tanh: apply_tanh,
            },
            rg,
        )
    }

    /// Multiplies every entry by the constant `s`.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_map(pool, &nodes[a.0].value, |x| x * s);
        let rg = self.rg(a);
        self.push(out, Op::Scale(a, s), rg)
    }

    /// Adds the constant `s` to every entry.
    pub fn add_scalar(&mut self, a: Var, s: f64) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_map(pool, &nodes[a.0].value, |x| x + s);
        let rg = self.rg(a);
        self.push(out, Op::AddScalar(a, s), rg)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_map(pool, &nodes[a.0].value, |x| -x);
        let rg = self.rg(a);
        self.push(out, Op::Neg(a), rg)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_map(pool, &nodes[a.0].value, nofis_parallel::math::tanh);
        let rg = self.rg(a);
        self.push(out, Op::Tanh(a), rg)
    }

    /// Fused `s · tanh(x)` (the coupling-layer log-scale clamp) in one tape
    /// node; value and gradient are bitwise identical to `scale(tanh(x), s)`.
    pub fn tanh_scale(&mut self, a: Var, s: f64) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_map(pool, &nodes[a.0].value, |x| {
            nofis_parallel::math::tanh(x) * s
        });
        let rg = self.rg(a);
        self.push(out, Op::TanhScale(a, s), rg)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_map(pool, &nodes[a.0].value, sigmoid);
        let rg = self.rg(a);
        self.push(out, Op::Sigmoid(a), rg)
    }

    /// Elementwise numerically stable softplus `ln(1 + e^x)`.
    pub fn softplus(&mut self, a: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_map(pool, &nodes[a.0].value, softplus);
        let rg = self.rg(a);
        self.push(out, Op::Softplus(a), rg)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_map(pool, &nodes[a.0].value, |x| x.max(0.0));
        let rg = self.rg(a);
        self.push(out, Op::Relu(a), rg)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_map(pool, &nodes[a.0].value, f64::exp);
        let rg = self.rg(a);
        self.push(out, Op::Exp(a), rg)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&mut self, a: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_map(pool, &nodes[a.0].value, f64::ln);
        let rg = self.rg(a);
        self.push(out, Op::Ln(a), rg)
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_map(pool, &nodes[a.0].value, |x| x * x);
        let rg = self.rg(a);
        self.push(out, Op::Square(a), rg)
    }

    /// Elementwise `min(x, c)` against the constant `c`.
    ///
    /// The subgradient passes where `x < c` and is zero elsewhere, matching
    /// the convention used by the tempered NOFIS loss.
    pub fn min_scalar(&mut self, a: Var, c: f64) -> Var {
        let Graph { nodes, pool, .. } = self;
        let out = pooled_map(pool, &nodes[a.0].value, |x| x.min(c));
        let rg = self.rg(a);
        self.push(out, Op::MinScalar(a, c), rg)
    }

    /// Sum of all entries, producing a `1 x 1` tensor.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let mut out = pooled_zeros(pool, 1, 1);
        out.as_mut_slice()[0] = nodes[a.0].value.sum();
        let rg = self.rg(a);
        self.push(out, Op::SumAll(a), rg)
    }

    /// Mean of all entries, producing a `1 x 1` tensor.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let mut out = pooled_zeros(pool, 1, 1);
        out.as_mut_slice()[0] = nodes[a.0].value.mean();
        let rg = self.rg(a);
        self.push(out, Op::MeanAll(a), rg)
    }

    /// Per-row sum, mapping `[N,D] -> [N,1]`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let Graph { nodes, pool, .. } = self;
        let (n, _) = nodes[a.0].value.shape();
        let mut out = pooled_zeros(pool, n, 1);
        for r in 0..n {
            out[(r, 0)] = nodes[a.0].value.row(r).iter().sum();
        }
        let rg = self.rg(a);
        self.push(out, Op::SumCols(a), rg)
    }

    /// Applies an externally differentiated row-wise function
    /// `f : R^D -> R` to each row of `a`.
    ///
    /// `f(row)` must return `(value, gradient)` where `gradient` has length
    /// `D`; the gradient is stored on the tape and used verbatim during
    /// [`Graph::backward`]. This is how black-box-but-differentiable
    /// simulators (circuit solvers, BPM, ODE models) enter the NOFIS loss.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a gradient whose length differs from `D`.
    pub fn external_rowwise(
        &mut self,
        a: Var,
        mut f: impl FnMut(&[f64]) -> (f64, Vec<f64>),
    ) -> Var {
        let (n, d) = self.value(a).shape();
        let mut out = {
            let Graph { pool, .. } = self;
            pooled_zeros(pool, n, 1)
        };
        let mut grads = {
            let Graph { pool, .. } = self;
            pooled_zeros(pool, n, d)
        };
        for r in 0..n {
            let (v, grad) = f(self.value(a).row(r));
            assert_eq!(
                grad.len(),
                d,
                "external gradient has length {} but input has {d} columns",
                grad.len()
            );
            out[(r, 0)] = v;
            grads.row_mut(r).copy_from_slice(&grad);
        }
        let rg = self.rg(a);
        self.push(out, Op::External { input: a, grads }, rg)
    }

    /// Parallel variant of [`Graph::external_rowwise`] for thread-safe
    /// row functions.
    ///
    /// Rows are evaluated in fixed-size chunks across `pool`; results land
    /// in row order, so the tape recorded here is bitwise identical to the
    /// one [`Graph::external_rowwise`] would record for the same `f`,
    /// regardless of the pool's thread count. This is the entry point the
    /// NOFIS training loop uses for limit-state oracle evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a gradient whose length differs from `D`.
    pub fn external_rowwise_par(
        &mut self,
        a: Var,
        pool: &nofis_parallel::ThreadPool,
        f: impl Fn(&[f64]) -> (f64, Vec<f64>) + Sync,
    ) -> Var {
        let (n, d) = self.value(a).shape();
        let mut out = {
            let Graph { pool, .. } = self;
            pooled_zeros(pool, n, 1)
        };
        let mut grads = {
            let Graph { pool, .. } = self;
            pooled_zeros(pool, n, d)
        };
        eval_external_rows(self.value(a), pool, &f, &mut out, &mut grads);
        let rg = self.rg(a);
        self.push(out, Op::External { input: a, grads }, rg)
    }

    /// Runs reverse-mode differentiation from the scalar `loss` node.
    ///
    /// Gradients accumulate on every node reachable from `loss` that has a
    /// trainable ancestor (every reachable node when pruning is off); read
    /// them with [`Graph::grad`] or collect parameter gradients via
    /// [`Graph::param_grads`]. Gradient buffers come from the internal
    /// pool, and pruned branches allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `1 x 1` tensor.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward requires a scalar (1x1) loss"
        );
        {
            let Graph { nodes, pool, .. } = self;
            for node in nodes.iter_mut() {
                if let Some(g) = node.grad.take() {
                    pool.put(g.into_vec());
                }
            }
        }
        self.backward_runs += 1;
        if !self.nodes[loss.0].requires_grad {
            // Nothing trainable feeds the loss; there are no gradients to
            // produce.
            return;
        }
        let mut seed = self.pool.take(1);
        seed[0] = 1.0;
        self.nodes[loss.0].grad = Some(Tensor::from_vec(1, 1, seed));

        for i in (0..=loss.0).rev() {
            let Some(up) = self.nodes[i].grad.take() else {
                self.skipped_nodes += 1;
                continue;
            };
            self.grad_nodes += 1;
            // Take the op out to appease the borrow checker, then restore it.
            let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
            self.apply_backward(i, &op, &up);
            self.nodes[i].op = op;
            self.nodes[i].grad = Some(up);
        }
    }

    /// Adds `delta` into `v`'s gradient slot, recycling `delta`'s buffer
    /// when it merges into an existing gradient (or when `v` is pruned).
    fn accumulate(&mut self, v: Var, delta: Tensor) {
        let Graph { nodes, pool, .. } = self;
        let node = &mut nodes[v.0];
        if !node.requires_grad {
            pool.put(delta.into_vec());
            return;
        }
        match &mut node.grad {
            Some(g) => {
                g.axpy(1.0, &delta);
                pool.put(delta.into_vec());
            }
            slot @ None => *slot = Some(delta),
        }
    }

    fn apply_backward(&mut self, node: usize, op: &Op, up: &Tensor) {
        match *op {
            Op::Leaf | Op::Param(_) => {}
            Op::Add(a, b) => {
                if self.rg(a) {
                    let d = {
                        let Graph { pool, .. } = self;
                        pooled_copy(pool, up)
                    };
                    self.accumulate(a, d);
                }
                if self.rg(b) {
                    let d = {
                        let Graph { pool, .. } = self;
                        pooled_copy(pool, up)
                    };
                    self.accumulate(b, d);
                }
            }
            Op::AddRow(a, b) => {
                if self.rg(a) {
                    let d = {
                        let Graph { pool, .. } = self;
                        pooled_copy(pool, up)
                    };
                    self.accumulate(a, d);
                }
                if self.rg(b) {
                    let (n, d) = up.shape();
                    let mut gb = {
                        let Graph { pool, .. } = self;
                        pooled_zeros(pool, 1, d)
                    };
                    for r in 0..n {
                        for c in 0..d {
                            gb[(0, c)] += up[(r, c)];
                        }
                    }
                    self.accumulate(b, gb);
                }
            }
            Op::Sub(a, b) => {
                if self.rg(a) {
                    let d = {
                        let Graph { pool, .. } = self;
                        pooled_copy(pool, up)
                    };
                    self.accumulate(a, d);
                }
                if self.rg(b) {
                    let d = {
                        let Graph { pool, .. } = self;
                        pooled_map(pool, up, |x| -x)
                    };
                    self.accumulate(b, d);
                }
            }
            Op::Mul(a, b) => {
                if self.rg(a) {
                    let ga = {
                        let Graph { nodes, pool, .. } = self;
                        pooled_zip(pool, up, &nodes[b.0].value, |u, y| u * y)
                    };
                    self.accumulate(a, ga);
                }
                if self.rg(b) {
                    let gb = {
                        let Graph { nodes, pool, .. } = self;
                        pooled_zip(pool, up, &nodes[a.0].value, |u, x| u * x)
                    };
                    self.accumulate(b, gb);
                }
            }
            Op::MulRow(a, b) => {
                let (n, d) = up.shape();
                if self.rg(a) {
                    let mut ga = {
                        let Graph { pool, .. } = self;
                        pooled_zeros(pool, n, d)
                    };
                    {
                        let row = &self.nodes[b.0].value;
                        for r in 0..n {
                            for c in 0..d {
                                ga[(r, c)] = up[(r, c)] * row[(0, c)];
                            }
                        }
                    }
                    self.accumulate(a, ga);
                }
                if self.rg(b) {
                    let mut gb = {
                        let Graph { pool, .. } = self;
                        pooled_zeros(pool, 1, d)
                    };
                    {
                        let av = &self.nodes[a.0].value;
                        for r in 0..n {
                            for c in 0..d {
                                gb[(0, c)] += up[(r, c)] * av[(r, c)];
                            }
                        }
                    }
                    self.accumulate(b, gb);
                }
            }
            Op::Matmul(a, b) => {
                if self.rg(a) {
                    let ga = {
                        let Graph { nodes, pool, .. } = self;
                        pooled_matmul_bt(pool, up, &nodes[b.0].value)
                    };
                    self.accumulate(a, ga);
                }
                if self.rg(b) {
                    let gb = {
                        let Graph { nodes, pool, .. } = self;
                        pooled_matmul_at(pool, &nodes[a.0].value, up)
                    };
                    self.accumulate(b, gb);
                }
            }
            Op::Linear { x, w, b, tanh } => self.linear_backward(node, x, w, b, tanh, up),
            Op::Scale(a, s) => {
                if self.rg(a) {
                    let d = {
                        let Graph { pool, .. } = self;
                        pooled_map(pool, up, |x| x * s)
                    };
                    self.accumulate(a, d);
                }
            }
            Op::AddScalar(a, _) => {
                if self.rg(a) {
                    let d = {
                        let Graph { pool, .. } = self;
                        pooled_copy(pool, up)
                    };
                    self.accumulate(a, d);
                }
            }
            Op::Neg(a) => {
                if self.rg(a) {
                    let d = {
                        let Graph { pool, .. } = self;
                        pooled_map(pool, up, |x| -x)
                    };
                    self.accumulate(a, d);
                }
            }
            Op::Tanh(a) => {
                if self.rg(a) {
                    let g = {
                        let Graph { nodes, pool, .. } = self;
                        pooled_zip(pool, up, &nodes[node].value, |u, y| u * (1.0 - y * y))
                    };
                    self.accumulate(a, g);
                }
            }
            Op::TanhScale(a, s) => {
                if self.rg(a) {
                    // Recompute tanh from the input: same arithmetic and
                    // grouping as the unfused scale∘tanh backward,
                    // (u·s)·(1−t²), so the gradient is bitwise identical.
                    let g = {
                        let Graph { nodes, pool, .. } = self;
                        pooled_zip(pool, up, &nodes[a.0].value, |u, xv| {
                            let t = nofis_parallel::math::tanh(xv);
                            (u * s) * (1.0 - t * t)
                        })
                    };
                    self.accumulate(a, g);
                }
            }
            Op::Sigmoid(a) => {
                if self.rg(a) {
                    let g = {
                        let Graph { nodes, pool, .. } = self;
                        pooled_zip(pool, up, &nodes[node].value, |u, y| u * y * (1.0 - y))
                    };
                    self.accumulate(a, g);
                }
            }
            Op::Softplus(a) => {
                if self.rg(a) {
                    let g = {
                        let Graph { nodes, pool, .. } = self;
                        pooled_zip(pool, up, &nodes[a.0].value, |u, x| u * sigmoid(x))
                    };
                    self.accumulate(a, g);
                }
            }
            Op::Relu(a) => {
                if self.rg(a) {
                    let g = {
                        let Graph { nodes, pool, .. } = self;
                        pooled_zip(
                            pool,
                            up,
                            &nodes[a.0].value,
                            |u, x| {
                                if x > 0.0 {
                                    u
                                } else {
                                    0.0
                                }
                            },
                        )
                    };
                    self.accumulate(a, g);
                }
            }
            Op::Exp(a) => {
                if self.rg(a) {
                    let g = {
                        let Graph { nodes, pool, .. } = self;
                        pooled_zip(pool, up, &nodes[node].value, |u, y| u * y)
                    };
                    self.accumulate(a, g);
                }
            }
            Op::Ln(a) => {
                if self.rg(a) {
                    let g = {
                        let Graph { nodes, pool, .. } = self;
                        pooled_zip(pool, up, &nodes[a.0].value, |u, x| u / x)
                    };
                    self.accumulate(a, g);
                }
            }
            Op::Square(a) => {
                if self.rg(a) {
                    let g = {
                        let Graph { nodes, pool, .. } = self;
                        pooled_zip(pool, up, &nodes[a.0].value, |u, x| u * 2.0 * x)
                    };
                    self.accumulate(a, g);
                }
            }
            Op::MinScalar(a, c) => {
                if self.rg(a) {
                    let g = {
                        let Graph { nodes, pool, .. } = self;
                        pooled_zip(
                            pool,
                            up,
                            &nodes[a.0].value,
                            |u, x| {
                                if x < c {
                                    u
                                } else {
                                    0.0
                                }
                            },
                        )
                    };
                    self.accumulate(a, g);
                }
            }
            Op::SumAll(a) => {
                if self.rg(a) {
                    let (n, d) = self.value(a).shape();
                    let u = up.item();
                    let mut g = {
                        let Graph { pool, .. } = self;
                        pooled_zeros(pool, n, d)
                    };
                    g.as_mut_slice().fill(u);
                    self.accumulate(a, g);
                }
            }
            Op::MeanAll(a) => {
                if self.rg(a) {
                    let (n, d) = self.value(a).shape();
                    let s = up.item() / (n * d) as f64;
                    let mut g = {
                        let Graph { pool, .. } = self;
                        pooled_zeros(pool, n, d)
                    };
                    g.as_mut_slice().fill(s);
                    self.accumulate(a, g);
                }
            }
            Op::SumCols(a) => {
                if self.rg(a) {
                    let (n, d) = self.value(a).shape();
                    let mut g = {
                        let Graph { pool, .. } = self;
                        pooled_zeros(pool, n, d)
                    };
                    for r in 0..n {
                        let u = up[(r, 0)];
                        for c in 0..d {
                            g[(r, c)] = u;
                        }
                    }
                    self.accumulate(a, g);
                }
            }
            Op::External { input, ref grads } => {
                if self.rg(input) {
                    let (n, d) = grads.shape();
                    let mut g = {
                        let Graph { pool, .. } = self;
                        pooled_zeros(pool, n, d)
                    };
                    for r in 0..n {
                        let u = up[(r, 0)];
                        for c in 0..d {
                            g[(r, c)] = u * grads[(r, c)];
                        }
                    }
                    self.accumulate(input, g);
                }
            }
        }
    }

    /// Backward pass of the fused linear op. The arithmetic mirrors the
    /// unfused `tanh` → `add_row` → `matmul` chain exactly (same kernels,
    /// same accumulation order within each gradient), so the results are
    /// bitwise identical to the composition.
    fn linear_backward(&mut self, node: usize, x: Var, w: Var, b: Var, tanh: bool, up: &Tensor) {
        // Gradient at the pre-activation x@W + b.
        let owned_dpre = if tanh {
            let Graph { nodes, pool, .. } = self;
            Some(pooled_zip(pool, up, &nodes[node].value, |u, y| {
                u * (1.0 - y * y)
            }))
        } else {
            None
        };
        {
            let dpre = owned_dpre.as_ref().unwrap_or(up);
            if self.rg(b) {
                let d = dpre.cols();
                let mut gb = {
                    let Graph { pool, .. } = self;
                    pooled_zeros(pool, 1, d)
                };
                // Row-major accumulation, the same order as the composed
                // `add_row` backward's column sums.
                let gbs = gb.as_mut_slice();
                for row in dpre.as_slice().chunks_exact(d) {
                    for (g, &v) in gbs.iter_mut().zip(row) {
                        *g += v;
                    }
                }
                self.accumulate(b, gb);
            }
            if self.rg(x) {
                let gx = {
                    let Graph { nodes, pool, .. } = self;
                    pooled_matmul_bt(pool, dpre, &nodes[w.0].value)
                };
                self.accumulate(x, gx);
            }
            if self.rg(w) {
                let gw = {
                    let Graph { nodes, pool, .. } = self;
                    pooled_matmul_at(pool, &nodes[x.0].value, dpre)
                };
                self.accumulate(w, gw);
            }
        }
        if let Some(t) = owned_dpre {
            self.pool.put(t.into_vec());
        }
    }

    /// Collects accumulated parameter gradients as `(id, grad)` pairs.
    ///
    /// If the same [`ParamId`] was injected more than once, its gradients
    /// are summed. Parameters that did not participate in the last backward
    /// pass — including frozen parameters pruned by
    /// [`Graph::set_pruning`] — are omitted.
    pub fn param_grads(&self) -> Vec<(ParamId, Tensor)> {
        let mut out: Vec<(ParamId, Tensor)> = Vec::new();
        for node in &self.nodes {
            if let (Op::Param(id), Some(g)) = (&node.op, &node.grad) {
                if let Some((_, acc)) = out.iter_mut().find(|(pid, _)| pid == id) {
                    acc.axpy(1.0, g);
                } else {
                    out.push((*id, g.clone()));
                }
            }
        }
        out
    }

    /// Visits every parameter-leaf gradient in tape order without
    /// materializing a gradient list — the allocation-free hand-off to
    /// fused optimizer steps. A [`ParamId`] injected at several tape
    /// positions is visited once per position with its partial gradient.
    pub fn for_each_param_grad(&self, mut f: impl FnMut(ParamId, &Tensor)) {
        for node in &self.nodes {
            if let (Op::Param(id), Some(g)) = (&node.op, &node.grad) {
                f(*id, g);
            }
        }
    }
}

/// Rows per external-evaluation chunk — fixed so chunk boundaries never
/// depend on the thread count.
pub(crate) const EXTERNAL_ROW_CHUNK: usize = 16;

/// Chunk-parallel row-wise oracle evaluation shared by
/// [`Graph::external_rowwise_par`] and the compiled-tape replay path:
/// rows are evaluated in fixed [`EXTERNAL_ROW_CHUNK`]-sized chunks across
/// `pool` and written back in row order, so results are bitwise identical
/// at any thread count and between both call sites.
///
/// # Panics
///
/// Panics if `f` returns a gradient whose length differs from `input`'s
/// column count.
pub(crate) fn eval_external_rows(
    input: &Tensor,
    pool: &nofis_parallel::ThreadPool,
    f: &(impl Fn(&[f64]) -> (f64, Vec<f64>) + Sync),
    out: &mut Tensor,
    grads: &mut Tensor,
) {
    let (n, d) = input.shape();
    debug_assert_eq!(out.shape(), (n, 1), "external value buffer shape");
    debug_assert_eq!(grads.shape(), (n, d), "external gradient buffer shape");
    let n_chunks = nofis_parallel::chunks::chunk_count(n, EXTERNAL_ROW_CHUNK);
    let per_chunk: Vec<Vec<(f64, Vec<f64>)>> = pool.map_chunks(n_chunks, |ci| {
        let (start, end) = nofis_parallel::chunks::chunk_range(n, EXTERNAL_ROW_CHUNK, ci);
        (start..end).map(|r| f(input.row(r))).collect()
    });
    for (r, (v, grad)) in per_chunk.into_iter().flatten().enumerate() {
        assert_eq!(
            grad.len(),
            d,
            "external gradient has length {} but input has {d} columns",
            grad.len()
        );
        out[(r, 0)] = v;
        grads.row_mut(r).copy_from_slice(&grad);
    }
}

/// Numerically stable logistic sigmoid.
pub(crate) fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softplus `ln(1 + e^x)`.
pub(crate) fn softplus(x: f64) -> f64 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_mul_gradients() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_row(&[2.0, 3.0]));
        let b = g.constant(Tensor::from_row(&[4.0, 5.0]));
        let prod = g.mul(a, b);
        let s = g.sum_all(prod);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[4.0, 5.0]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn matmul_gradients_match_formula() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.constant(Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        let s = g.sum_all(c);
        g.backward(s);
        // dS/dA = 1 @ B^T
        assert_eq!(g.grad(a).unwrap().as_slice(), &[11.0, 15.0, 11.0, 15.0]);
        // dS/dB = A^T @ 1
        assert_eq!(g.grad(b).unwrap().as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn chained_nonlinearities() {
        // loss = sum(tanh(x)^2); d/dx = 2 tanh(x)(1 - tanh^2(x))
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[0.5]));
        let t = g.tanh(x);
        let sq = g.square(t);
        let loss = g.sum_all(sq);
        g.backward(loss);
        let th: f64 = 0.5_f64.tanh();
        let expected = 2.0 * th * (1.0 - th * th);
        assert!((g.grad(x).unwrap().as_slice()[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn broadcast_add_row_sums_bias_grad() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(3, 2, vec![1.0; 6]));
        let b = g.constant(Tensor::from_row(&[10.0, 20.0]));
        let y = g.add_row(x, b);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[3.0, 3.0]);
        assert_eq!(g.value(y)[(2, 1)], 21.0);
    }

    #[test]
    fn mul_row_masks() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let m = g.constant(Tensor::from_row(&[1.0, 0.0]));
        let y = g.mul_row(x, m);
        assert_eq!(g.value(y).as_slice(), &[1.0, 0.0, 3.0, 0.0]);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[1.0, 0.0, 1.0, 0.0]);
        assert_eq!(g.grad(m).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn min_scalar_subgradient() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[-1.0, 1.0]));
        let y = g.min_scalar(x, 0.0);
        assert_eq!(g.value(y).as_slice(), &[-1.0, 0.0]);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn sum_cols_shapes_and_grad() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let y = g.sum_cols(x);
        assert_eq!(g.value(y).shape(), (2, 1));
        assert_eq!(g.value(y).as_slice(), &[6.0, 15.0]);
        let loss = g.mean_all(y);
        g.backward(loss);
        assert!(g
            .grad(x)
            .unwrap()
            .as_slice()
            .iter()
            .all(|&v| (v - 0.5).abs() < 1e-15));
    }

    #[test]
    fn external_rowwise_uses_supplied_gradient() {
        // f(row) = 3*x0 - x1, grad = [3, -1]
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let y = g.external_rowwise(x, |row| (3.0 * row[0] - row[1], vec![3.0, -1.0]));
        assert_eq!(g.value(y).as_slice(), &[1.0, 5.0]);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[3.0, -1.0, 3.0, -1.0]);
    }

    #[test]
    fn param_grads_accumulate_across_reuse() {
        let mut g = Graph::new();
        let id = ParamId(0);
        let w1 = g.param(id, Tensor::from_row(&[2.0]));
        let w2 = g.param(id, Tensor::from_row(&[2.0]));
        let prod = g.mul(w1, w2);
        let loss = g.sum_all(prod);
        g.backward(loss);
        let grads = g.param_grads();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].1.as_slice(), &[4.0]); // d(w*w)/dw for both copies
    }

    #[test]
    fn backward_twice_is_idempotent() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[1.5]));
        let y = g.exp(x);
        let loss = g.sum_all(y);
        g.backward(loss);
        let first = g.grad(x).unwrap().as_slice()[0];
        g.backward(loss);
        let second = g.grad(x).unwrap().as_slice()[0];
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[1.0, 2.0]));
        g.backward(x);
    }

    #[test]
    fn stable_sigmoid_softplus() {
        assert!(sigmoid(800.0) > 0.999_999);
        assert!(sigmoid(-800.0) < 1e-6);
        assert!(softplus(-800.0).abs() < 1e-12);
        assert!((softplus(800.0) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn fused_linear_matches_unfused_bitwise() {
        let x_data = Tensor::from_vec(3, 2, vec![0.3, -0.7, 1.1, 0.2, -0.4, 0.9]);
        let w_data = Tensor::from_vec(2, 2, vec![0.5, -0.3, 0.8, 0.1]);
        let b_data = Tensor::from_row(&[0.05, -0.2]);
        for apply_tanh in [false, true] {
            let run = |fused: bool| {
                let mut g = Graph::new();
                let x = g.constant(x_data.clone());
                let w = g.param(ParamId(0), w_data.clone());
                let b = g.param(ParamId(1), b_data.clone());
                let y = if fused {
                    g.linear(x, w, b, apply_tanh)
                } else {
                    let xw = g.matmul(x, w);
                    let pre = g.add_row(xw, b);
                    if apply_tanh {
                        g.tanh(pre)
                    } else {
                        pre
                    }
                };
                let sq = g.square(y);
                let loss = g.mean_all(sq);
                g.backward(loss);
                (g.value(y).clone(), g.param_grads())
            };
            let (y_f, grads_f) = run(true);
            let (y_u, grads_u) = run(false);
            assert_eq!(y_f, y_u, "fused value drifted (tanh={apply_tanh})");
            for ((idf, gf), (idu, gu)) in grads_f.iter().zip(&grads_u) {
                assert_eq!(idf, idu);
                for (a, b) in gf.as_slice().iter().zip(gu.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "grad bits (tanh={apply_tanh})");
                }
            }
        }
    }

    #[test]
    fn fused_tanh_scale_matches_unfused_bitwise() {
        let x_data = Tensor::from_row(&[0.3, -1.2, 2.4]);
        let run = |fused: bool| {
            let mut g = Graph::new();
            let x = g.param(ParamId(0), x_data.clone());
            let y = if fused {
                g.tanh_scale(x, 1.7)
            } else {
                let t = g.tanh(x);
                g.scale(t, 1.7)
            };
            let loss = g.sum_all(y);
            g.backward(loss);
            (g.value(y).clone(), g.param_grads().remove(0).1)
        };
        let (y_f, g_f) = run(true);
        let (y_u, g_u) = run(false);
        assert_eq!(y_f, y_u);
        for (a, b) in g_f.as_slice().iter().zip(g_u.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn reset_reuses_buffers_with_zero_steady_state_misses() {
        let mut g = Graph::new();
        let run_step = |g: &mut Graph| {
            let x = g.constant_with(4, 3, |buf| {
                for (i, v) in buf.iter_mut().enumerate() {
                    *v = (i as f64 * 0.37).sin();
                }
            });
            let w = g.param(ParamId(0), Tensor::from_vec(3, 2, vec![0.1; 6]));
            let b = g.param(ParamId(1), Tensor::from_row(&[0.0, 0.1]));
            let y = g.linear(x, w, b, true);
            let sq = g.square(y);
            let loss = g.mean_all(sq);
            g.backward(loss);
            g.value(loss).item()
        };
        let first = run_step(&mut g);
        let warm_misses = g.pool_stats().misses;
        for _ in 0..5 {
            g.reset();
            let again = run_step(&mut g);
            assert_eq!(again.to_bits(), first.to_bits(), "reset changed results");
        }
        assert_eq!(
            g.pool_stats().misses,
            warm_misses,
            "steady-state steps must not allocate"
        );
        assert!(g.pool_stats().hits > 0);
    }

    #[test]
    fn snapshot_counters_track_backward_and_pruning() {
        let mut g = Graph::new();
        assert_eq!(g.snapshot(), GraphStats::default());

        // Without pruning, nothing counts as pruned.
        let x = g.constant(Tensor::from_row(&[2.0]));
        let y = g.square(x);
        let loss = g.sum_all(y);
        g.backward(loss);
        let s = g.snapshot();
        assert_eq!(s.backward_runs, 1);
        assert_eq!(s.grad_nodes, 3);
        assert_eq!(s.skipped_nodes, 0);
        assert_eq!(s.pruned_nodes, 0);
        assert_eq!(s.pool, g.pool_stats());

        // With pruning, the constant leaf is built pruned; backward never
        // delivers a gradient to it, so its visit is counted as skipped.
        g.reset();
        g.set_pruning(true);
        let c = g.constant(Tensor::from_row(&[1.5]));
        let p = g.param(ParamId(0), Tensor::from_row(&[0.5]));
        let sum = g.add(c, p);
        let loss = g.sum_all(sum);
        g.backward(loss);
        let s2 = g.snapshot();
        assert_eq!(s2.backward_runs, 2);
        assert!(s2.pruned_nodes >= 1, "constant leaf must be pruned");
        assert!(
            s2.skipped_nodes >= 1,
            "the pruned constant must be skipped in backward"
        );
        assert!(s2.grad_nodes > s.grad_nodes);
    }

    #[test]
    fn pruning_skips_frozen_only_subgraphs_and_keeps_grads_bitwise() {
        // loss = mean((x·Wf + x·Wt)^2): Wf frozen, Wt trainable.
        let x_data = Tensor::from_vec(2, 2, vec![0.4, -0.3, 0.7, 0.2]);
        let wf = Tensor::from_vec(2, 2, vec![0.3, 0.1, -0.2, 0.5]);
        let wt = Tensor::from_vec(2, 2, vec![-0.4, 0.2, 0.6, -0.1]);
        let run = |prune: bool| {
            let mut g = Graph::new();
            g.set_pruning(prune);
            let x = g.constant(x_data.clone());
            let f = g.param_from_slice(ParamId(0), 2, 2, wf.as_slice(), false);
            let t = g.param_from_slice(ParamId(1), 2, 2, wt.as_slice(), true);
            let hf = g.matmul(x, f);
            let ht = g.matmul(x, t);
            let h = g.add(hf, ht);
            let sq = g.square(h);
            let loss = g.mean_all(sq);
            g.backward(loss);
            let frozen_grad_present = g.grad(f).is_some();
            let trainable = g
                .param_grads()
                .into_iter()
                .find(|(id, _)| *id == ParamId(1))
                .expect("trainable grad")
                .1;
            (frozen_grad_present, trainable, g.value(loss).item())
        };
        let (frozen_on, grad_pruned, loss_pruned) = run(true);
        let (frozen_off, grad_full, loss_full) = run(false);
        assert!(!frozen_on, "pruned frozen param must have no grad buffer");
        assert!(frozen_off, "unpruned run keeps the frozen grad");
        assert_eq!(loss_pruned.to_bits(), loss_full.to_bits());
        for (a, b) in grad_pruned.as_slice().iter().zip(grad_full.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "surviving gradient drifted");
        }
    }

    #[test]
    fn fully_frozen_loss_produces_no_gradients() {
        let mut g = Graph::new();
        g.set_pruning(true);
        let w = g.param_from_slice(ParamId(0), 1, 2, &[1.0, 2.0], false);
        let sq = g.square(w);
        let loss = g.sum_all(sq);
        g.backward(loss);
        assert!(g.grad(w).is_none());
        assert!(g.param_grads().is_empty());
    }

    #[test]
    #[should_panic(expected = "empty tape")]
    fn set_pruning_rejects_non_empty_tape() {
        let mut g = Graph::new();
        let _ = g.constant(Tensor::scalar(1.0));
        g.set_pruning(true);
    }
}
