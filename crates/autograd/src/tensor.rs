use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major 2-D tensor of `f64` values.
///
/// Rows index batch samples and columns index features throughout the
/// workspace: a batch of `N` points in `R^D` is an `N x D` tensor.
///
/// # Example
///
/// ```
/// use nofis_autograd::Tensor;
///
/// let t = Tensor::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
/// assert_eq!(t[(1, 2)], 5.0);
/// assert_eq!(t.shape(), (2, 3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a `rows x cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` tensor filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a `1 x 1` tensor holding a scalar.
    pub fn scalar(value: f64) -> Self {
        Tensor::filled(1, 1, value)
    }

    /// Creates a tensor by tabulating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Tensor { rows, cols, data }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of length {} cannot form a {rows}x{cols} tensor",
            data.len()
        );
        Tensor { rows, cols, data }
    }

    /// Creates a `1 x d` row tensor from a slice.
    pub fn from_row(row: &[f64]) -> Self {
        Tensor::from_vec(1, row.len(), row.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the tensor, returning its flat row-major buffer (used to
    /// recycle tape buffers into a [`crate::BufferPool`]).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Mutably borrows the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value of a `1 x 1` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `1 x 1`.
    pub fn item(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combination of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip_map requires equal shapes");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Adds `other * scale` into `self` in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, scale: f64, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy requires equal shapes");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// Large products run row-partitioned on the process-wide
    /// [`nofis_parallel::global`] pool with bitwise-identical results to
    /// the serial kernel; small ones stay serial. This is the kernel behind
    /// both the forward matmul op and its backward gradients.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        self.matmul_with(rhs, nofis_parallel::global())
    }

    /// Matrix product `self * rhs` executed on an explicit pool.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_with(&self, rhs: &Tensor, pool: &nofis_parallel::ThreadPool) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul of {}x{} by {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        nofis_parallel::kernels::matmul_into(
            pool,
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Tensor {
        Tensor::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all entries (`NaN` for an empty tensor).
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{}:", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            for c in 0..self.cols.min(8) {
                write!(f, "{:>11.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(2, 2).sum(), 0.0);
        assert_eq!(Tensor::filled(2, 3, 1.5).sum(), 9.0);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
        assert_eq!(Tensor::from_row(&[1.0, 2.0]).shape(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "cannot form")]
    fn from_vec_panics_on_bad_len() {
        let _ = Tensor::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn matmul_matches_hand_result() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(1, 2)], a[(2, 1)]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_row(&[1.0, -2.0]);
        let b = Tensor::from_row(&[3.0, 4.0]);
        assert_eq!(a.map(f64::abs).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.zip_map(&b, |x, y| x * y).as_slice(), &[3.0, -8.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_row(&[1.0, 1.0]);
        let b = Tensor::from_row(&[2.0, -1.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0, 0.5]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(2, 2, vec![1.0, -5.0, 2.0, 2.0]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max_abs(), 5.0);
        assert!(a.is_finite());
    }

    #[test]
    fn row_accessors() {
        let mut a = Tensor::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(a.row(1), &[3.0, 4.0, 5.0]);
        a.row_mut(0)[0] = 9.0;
        assert_eq!(a[(0, 0)], 9.0);
    }
}
