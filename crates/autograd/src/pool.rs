//! Size-classed recycling pool for the `Vec<f64>` buffers behind every
//! tape tensor.
//!
//! A NOFIS training step rebuilds its computation tape from scratch, so
//! without reuse every op allocates (and soon frees) a fresh buffer. The
//! [`BufferPool`] keeps freed buffers in power-of-two size classes;
//! [`take`](BufferPool::take) hands back a recycled buffer of the right
//! capacity when one is available and only falls back to the allocator on a
//! *miss*. After a warmup step the pool holds one buffer per live slot of
//! the step, and steady-state training performs zero heap allocations
//! through the tape (see DESIGN.md §9).
//!
//! The hit/miss counters double as an allocation regression meter: a test
//! (or benchmark) can record [`BufferPool::stats`] after warmup and assert
//! the miss count no longer moves.

/// Allocation statistics of a [`BufferPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Requests served from a recycled buffer (no allocation).
    pub hits: u64,
    /// Requests that had to allocate a fresh buffer.
    pub misses: u64,
}

impl PoolStats {
    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A pool of recycled `f64` buffers, segregated into power-of-two size
/// classes by capacity.
///
/// # Example
///
/// ```
/// use nofis_autograd::BufferPool;
///
/// let mut pool = BufferPool::new();
/// let a = pool.take(100);          // miss: allocates capacity 128
/// assert_eq!(a.len(), 100);
/// pool.put(a);
/// let b = pool.take(120);          // hit: same class (<= 128)
/// assert_eq!(b.len(), 120);
/// assert_eq!(pool.stats().hits, 1);
/// assert_eq!(pool.stats().misses, 1);
/// ```
#[derive(Debug, Default)]
pub struct BufferPool {
    /// `classes[c]` holds free buffers whose capacity is at least `1 << c`
    /// (and was allocated as exactly `1 << c`).
    classes: Vec<Vec<Vec<f64>>>,
    hits: u64,
    misses: u64,
}

/// Smallest class that can serve a request of `len` entries.
fn class_for(len: usize) -> usize {
    // next_power_of_two(0) == 1, so the empty buffer lands in class 0.
    len.next_power_of_two().trailing_zeros() as usize
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Returns a zero-filled buffer of exactly `len` entries.
    ///
    /// Serves from the matching size class when a recycled buffer is
    /// available (a *hit*); otherwise allocates one with the class capacity
    /// (a *miss*). Either way the caller owns the buffer until it is handed
    /// back with [`BufferPool::put`].
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let class = class_for(len);
        if class >= self.classes.len() {
            self.classes.resize_with(class + 1, Vec::new);
        }
        match self.classes[class].pop() {
            Some(mut buf) => {
                self.hits += 1;
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.misses += 1;
                let mut buf = Vec::with_capacity(1usize << class);
                buf.resize(len, 0.0);
                buf
            }
        }
    }

    /// Returns an **empty** buffer with `capacity >= len`, skipping the
    /// zero-fill of [`BufferPool::take`].
    ///
    /// For producers that write every element exactly once (elementwise
    /// maps, copies), the `take` zero-fill is a second full pass over the
    /// buffer; at training-step sizes that memset costs more than the
    /// allocation it replaces. Callers fill the buffer with
    /// `extend`/`extend_from_slice` up to `len`. Counted in the same
    /// hit/miss statistics as `take`.
    pub fn take_uninit(&mut self, len: usize) -> Vec<f64> {
        let class = class_for(len);
        if class >= self.classes.len() {
            self.classes.resize_with(class + 1, Vec::new);
        }
        match self.classes[class].pop() {
            Some(mut buf) => {
                self.hits += 1;
                buf.clear();
                buf
            }
            None => {
                self.misses += 1;
                Vec::with_capacity(1usize << class)
            }
        }
    }

    /// Returns `buf` to the pool for reuse.
    ///
    /// Zero-capacity buffers are dropped (nothing to recycle).
    pub fn put(&mut self, mut buf: Vec<f64>) {
        if buf.capacity() == 0 {
            return;
        }
        // Largest class the capacity can fully serve. Buffers the pool
        // allocated itself have exact power-of-two capacities; foreign
        // buffers (e.g. a `Tensor::from_vec` input recycled on reset) are
        // filed under the class they can still satisfy.
        let class = usize::BITS as usize - 1 - buf.capacity().leading_zeros() as usize;
        if class >= self.classes.len() {
            self.classes.resize_with(class + 1, Vec::new);
        }
        buf.clear();
        self.classes[class].push(buf);
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Number of free buffers currently held across all classes.
    pub fn free_buffers(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_and_exact_len() {
        let mut pool = BufferPool::new();
        let mut a = pool.take(10);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|&v| v == 0.0));
        a.iter_mut().for_each(|v| *v = 7.0);
        pool.put(a);
        // Recycled buffer must come back zeroed, not with stale contents.
        let b = pool.take(10);
        assert!(b.iter().all(|&v| v == 0.0));
        assert_eq!(pool.stats(), PoolStats { hits: 1, misses: 1 });
    }

    #[test]
    fn take_uninit_recycles_without_filling() {
        let mut pool = BufferPool::new();
        let mut a = pool.take_uninit(10);
        assert!(a.is_empty() && a.capacity() >= 10);
        a.extend((0..10).map(|i| i as f64));
        pool.put(a);
        let b = pool.take_uninit(12); // same class -> hit, comes back empty
        assert!(b.is_empty() && b.capacity() >= 12);
        assert_eq!(pool.stats(), PoolStats { hits: 1, misses: 1 });
    }

    #[test]
    fn size_classes_are_shared_within_powers_of_two() {
        let mut pool = BufferPool::new();
        let a = pool.take(100); // class 128
        pool.put(a);
        let _b = pool.take(65); // 65..=128 shares the class -> hit
        assert_eq!(pool.stats().hits, 1);
        let _c = pool.take(129); // class 256 -> miss
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn steady_state_has_no_misses() {
        let mut pool = BufferPool::new();
        for _ in 0..3 {
            let bufs: Vec<_> = [64, 200, 33, 1].iter().map(|&n| pool.take(n)).collect();
            for b in bufs {
                pool.put(b);
            }
        }
        let s = pool.stats();
        assert_eq!(s.misses, 4, "only the first round allocates");
        assert_eq!(s.hits, 8);
    }

    #[test]
    fn empty_and_foreign_buffers() {
        let mut pool = BufferPool::new();
        pool.put(Vec::new()); // dropped, not filed
        assert_eq!(pool.free_buffers(), 0);
        let v = Vec::with_capacity(100); // foreign capacity, class 64
        pool.put(v);
        let got = pool.take(60);
        assert_eq!(pool.stats().hits, 1);
        assert!(got.capacity() >= 60);
    }
}
