//! Gradient-checks the matmul op against finite differences with the
//! parallel kernel engaged, including non-square shapes and shapes
//! straddling the parallel size threshold.
//!
//! The global pool is pinned to 4 threads up front, so `Graph::matmul` —
//! forward *and* backward (`∂a = ḡ·bᵀ`, `∂b = aᵀ·ḡ`) — runs through the
//! chunked parallel kernel wherever the shapes are large enough, and the
//! finite-difference reference pins that its analytic gradients are still
//! exact.

use nofis_autograd::check::{max_rel_error, numeric_param_grads};
use nofis_autograd::{Graph, ParamStore, Tensor};
use nofis_parallel::kernels::PAR_FLOPS_THRESHOLD;

fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

/// Builds `loss(w) = mean(tanh(x·w)²)` for an `m x k` constant input and an
/// `k x n` parameter, and compares analytic against numeric gradients.
fn check_matmul_grad(m: usize, k: usize, n: usize) {
    assert!(nofis_parallel::global().threads() >= 1);
    let x = Tensor::from_vec(m, k, fill(m * k, 3 + (m * k) as u64));
    let mut store = ParamStore::new();
    let w = store.add(Tensor::from_vec(k, n, fill(k * n, 17 + (k * n) as u64)));

    let analytic = {
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let wv = store.inject(&mut g, w);
        let h = g.matmul(xv, wv);
        let t = g.tanh(h);
        let sq = g.square(t);
        let loss = g.mean_all(sq);
        g.backward(loss);
        g.param_grads().remove(0).1
    };

    let numeric = numeric_param_grads(
        &mut store,
        |s| {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let wv = g.constant(s.get(w).clone());
            let h = g.matmul(xv, wv);
            let t = g.tanh(h);
            let sq = g.square(t);
            let loss = g.mean_all(sq);
            g.value(loss).item()
        },
        1e-6,
    )
    .remove(0);

    let err = max_rel_error(analytic.as_slice(), numeric.as_slice());
    assert!(err < 1e-6, "({m}x{k})·({k}x{n}): max rel error {err}");
}

#[test]
fn below_threshold_small_nonsquare() {
    nofis_parallel::init_global(4);
    // 4*3*2 = 24 flops: firmly on the serial fallback.
    check_matmul_grad(4, 3, 2);
}

#[test]
fn just_below_parallel_threshold() {
    nofis_parallel::init_global(4);
    // 64*32*31 = 63488 < 65536: the forward matmul stays serial, but the
    // backward `aᵀ·ḡ` and `ḡ·bᵀ` products have their own shapes and may
    // cross independently.
    let (m, k, n) = (64, 32, 31);
    assert!(m * k * n < PAR_FLOPS_THRESHOLD);
    check_matmul_grad(m, k, n);
}

#[test]
fn just_above_parallel_threshold() {
    nofis_parallel::init_global(4);
    // 64*32*33 = 67584 > 65536: the parallel row-partitioned kernel engages.
    let (m, k, n) = (64, 32, 33);
    assert!(m * k * n > PAR_FLOPS_THRESHOLD);
    check_matmul_grad(m, k, n);
}

#[test]
fn tall_nonsquare_above_threshold() {
    nofis_parallel::init_global(4);
    // Tall-skinny: many row blocks, few columns; 130*25*21 = 68250.
    let (m, k, n) = (130, 25, 21);
    assert!(m * k * n > PAR_FLOPS_THRESHOLD);
    check_matmul_grad(m, k, n);
}
