//! Gradient-checks the fused `matmul+bias+tanh` tape op against finite
//! differences on both sides of the parallel matmul threshold, and pins
//! that the fused op is bitwise identical to the unfused
//! `matmul → add_row → tanh` composition it replaces.

use nofis_autograd::check::{max_rel_error, numeric_param_grads};
use nofis_autograd::{Graph, ParamStore, Tensor};
use nofis_parallel::kernels::PAR_FLOPS_THRESHOLD;

fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

/// `loss(w, b) = mean(linear(x, w, b, tanh)²)` with the fused op; analytic
/// gradients of both parameters are compared against finite differences.
fn check_fused_linear_grad(m: usize, k: usize, n: usize) {
    let x = Tensor::from_vec(m, k, fill(m * k, 3 + (m * k) as u64));
    let mut store = ParamStore::new();
    let w = store.add(Tensor::from_vec(k, n, fill(k * n, 17 + (k * n) as u64)));
    let b = store.add(Tensor::from_vec(1, n, fill(n, 29 + n as u64)));

    let analytic = {
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let wv = store.inject(&mut g, w);
        let bv = store.inject(&mut g, b);
        let y = g.linear(xv, wv, bv, true);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        g.backward(loss);
        g.param_grads()
    };

    let numeric = numeric_param_grads(
        &mut store,
        |s| {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let wv = g.constant(s.get(w).clone());
            let bv = g.constant(s.get(b).clone());
            let y = g.linear(xv, wv, bv, true);
            let sq = g.square(y);
            let loss = g.mean_all(sq);
            g.value(loss).item()
        },
        1e-6,
    );

    for (id, grad) in &analytic {
        let err = max_rel_error(grad.as_slice(), numeric[id.index()].as_slice());
        assert!(
            err < 1e-6,
            "({m}x{k})·({k}x{n}) param {}: max rel error {err}",
            id.index()
        );
    }
}

/// The fused op must execute the exact same floating-point program as the
/// composed ops: identical value bits and identical gradient bits.
fn check_fused_matches_unfused_bitwise(m: usize, k: usize, n: usize) {
    let x = Tensor::from_vec(m, k, fill(m * k, 101 + (m * k) as u64));
    let w_t = Tensor::from_vec(k, n, fill(k * n, 211 + (k * n) as u64));
    let b_t = Tensor::from_vec(1, n, fill(n, 307 + n as u64));
    let run = |fused: bool| {
        let mut store = ParamStore::new();
        let w = store.add(w_t.clone());
        let b = store.add(b_t.clone());
        let mut g = Graph::new();
        g.set_fusion(fused);
        let xv = g.constant(x.clone());
        let wv = store.inject(&mut g, w);
        let bv = store.inject(&mut g, b);
        let y = if fused {
            g.linear(xv, wv, bv, true)
        } else {
            let xw = g.matmul(xv, wv);
            let pre = g.add_row(xw, bv);
            g.tanh(pre)
        };
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        g.backward(loss);
        (g.value(y).clone(), g.param_grads())
    };
    let (y_f, grads_f) = run(true);
    let (y_u, grads_u) = run(false);
    for (a, bb) in y_f.as_slice().iter().zip(y_u.as_slice()) {
        assert_eq!(a.to_bits(), bb.to_bits(), "({m}x{k}x{n}) forward bits");
    }
    assert_eq!(grads_f.len(), grads_u.len());
    for ((idf, gf), (idu, gu)) in grads_f.iter().zip(&grads_u) {
        assert_eq!(idf, idu);
        for (a, bb) in gf.as_slice().iter().zip(gu.as_slice()) {
            assert_eq!(
                a.to_bits(),
                bb.to_bits(),
                "({m}x{k}x{n}) grad bits of param {}",
                idf.index()
            );
        }
    }
}

#[test]
fn fused_linear_below_threshold() {
    nofis_parallel::init_global(4);
    // 4*3*2 = 24 flops: firmly on the serial fallback.
    check_fused_linear_grad(4, 3, 2);
}

#[test]
fn fused_linear_above_threshold() {
    nofis_parallel::init_global(4);
    // 64*32*33 = 67584 > 65536: the parallel row-partitioned kernel engages
    // inside the fused op.
    let (m, k, n) = (64, 32, 33);
    assert!(m * k * n > PAR_FLOPS_THRESHOLD);
    check_fused_linear_grad(m, k, n);
}

#[test]
fn fused_bitwise_equals_unfused_below_threshold() {
    nofis_parallel::init_global(4);
    check_fused_matches_unfused_bitwise(5, 7, 3);
}

#[test]
fn fused_bitwise_equals_unfused_above_threshold() {
    nofis_parallel::init_global(4);
    let (m, k, n) = (130, 25, 21); // 68250 > 65536
    assert!(m * k * n > PAR_FLOPS_THRESHOLD);
    check_fused_matches_unfused_bitwise(m, k, n);
}
