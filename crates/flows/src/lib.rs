//! RealNVP normalizing flows with exact sampling and exact density
//! evaluation.
//!
//! Normalizing flows compose the proposal-distribution family `Q` in NOFIS
//! because they offer the two properties importance sampling needs (paper
//! §2): *exact sampling* (push base samples forward) and *exact density
//! evaluation* (invert the flow and apply the change-of-variables identity).
//!
//! * [`Mask`] — binary coupling masks (checkerboard / half-half).
//! * [`AffineCoupling`] — one RealNVP coupling layer with tanh-clamped
//!   log-scales and identity initialization.
//! * [`RealNvp`] — a layer stack supporting *prefix* evaluation, which is
//!   how NOFIS anchors stage `m` at layer `m·K`.
//! * [`AdditiveCoupling`] (NICE) and [`ActNorm`] — companion invertible
//!   layers for composition and for the expressiveness ablations.
//!
//! # Example
//!
//! ```
//! use nofis_autograd::ParamStore;
//! use nofis_flows::RealNvp;
//! use rand::SeedableRng;
//!
//! let mut store = ParamStore::new();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let flow = RealNvp::new(&mut store, 2, 6, 16, 2.0, &mut rng);
//! let (z, logdet) = flow.transform(&store, &[0.1, -0.3], 6);
//! let (back, logdet_inv) = flow.inverse(&store, &z, 6);
//! assert!((back[0] - 0.1).abs() < 1e-12 && (logdet + logdet_inv).abs() < 1e-12);
//! ```

#![deny(missing_docs)]

mod actnorm;
mod coupling;
mod mask;
mod nice;
mod realnvp;

pub use actnorm::{ActNorm, DEFAULT_S_MAX};
pub use coupling::AffineCoupling;
pub use mask::Mask;
pub use nice::AdditiveCoupling;
pub use realnvp::RealNvp;
