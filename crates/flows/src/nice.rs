//! Additive (NICE) coupling layers — the volume-preserving predecessor of
//! RealNVP's affine couplings (Dinh et al., 2014; the paper's reference
//! [5]).
//!
//! Additive couplings have unit Jacobian determinant, so a NICE-style flow
//! cannot change the *volume* of the base distribution — only reshape it.
//! They are cheaper and more stable than affine couplings and are useful
//! as interleaved "mixing" layers; the ablation bench quantifies the
//! expressiveness gap on the NOFIS targets.

use crate::Mask;
use nofis_autograd::{Graph, ParamId, ParamStore, Tensor, Var};
use nofis_nn::{Activation, Mlp};
use rand::Rng;

/// An additive coupling layer:
///
/// ```text
/// y = m ⊙ x + (1 − m) ⊙ (x + t(m ⊙ x)),   ln|det J| = 0
/// ```
///
/// # Example
///
/// ```
/// use nofis_autograd::ParamStore;
/// use nofis_flows::{AdditiveCoupling, Mask};
/// use rand::SeedableRng;
///
/// let mut store = ParamStore::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let layer = AdditiveCoupling::new(&mut store, Mask::alternating(2, true), 16, &mut rng);
/// let (y, logdet) = layer.transform(&store, &[0.4, -0.2]);
/// assert_eq!(logdet, 0.0); // volume preserving, always
/// let (back, _) = layer.inverse(&store, &y);
/// assert!((back[0] - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct AdditiveCoupling {
    mask: Mask,
    translate_net: Mlp,
}

impl AdditiveCoupling {
    /// Creates an additive coupling layer with a one-hidden-layer
    /// conditioner of width `hidden`, zero-initialized at the output so the
    /// layer starts as the identity.
    ///
    /// # Panics
    ///
    /// Panics if `hidden == 0`.
    pub fn new(store: &mut ParamStore, mask: Mask, hidden: usize, rng: &mut impl Rng) -> Self {
        assert!(hidden > 0, "conditioner hidden width must be positive");
        let d = mask.dim();
        let translate_net = Mlp::new_zero_output(store, &[d, hidden, d], Activation::Tanh, rng);
        AdditiveCoupling {
            mask,
            translate_net,
        }
    }

    /// Dimensionality of the layer.
    pub fn dim(&self) -> usize {
        self.mask.dim()
    }

    /// All parameter ids of the conditioner net.
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.translate_net.param_ids()
    }

    /// Differentiable forward transform on a batch; returns `(y, logdet)`
    /// where the log-determinant is identically zero (`[N, 1]` of zeros,
    /// for interface parity with [`AffineCoupling`](crate::AffineCoupling)).
    pub fn forward_graph(&self, store: &ParamStore, g: &mut Graph, x: Var) -> (Var, Var) {
        let d = self.dim();
        assert_eq!(
            g.value(x).cols(),
            d,
            "input has {} columns but the layer has dim {d}",
            g.value(x).cols()
        );
        let n = g.value(x).rows();
        let mask = g.constant(Tensor::from_row(self.mask.as_slice()));
        let inv_mask = g.constant(Tensor::from_row(self.mask.complement().as_slice()));

        let xm = g.mul_row(x, mask);
        let t = self.translate_net.forward(store, g, xm);
        let shifted = g.add(x, t);
        let free = g.mul_row(shifted, inv_mask);
        let y = g.add(free, xm);
        let logdet = g.constant(Tensor::zeros(n, 1));
        (y, logdet)
    }

    /// Plain forward transform of one point; returns `(y, 0.0)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn transform(&self, store: &ParamStore, x: &[f64]) -> (Vec<f64>, f64) {
        assert_eq!(x.len(), self.dim(), "dimension mismatch in transform");
        let m = self.mask.as_slice();
        let masked: Vec<f64> = x.iter().zip(m).map(|(&v, &b)| v * b).collect();
        let t = self
            .translate_net
            .predict(store, &Tensor::from_row(&masked));
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| if m[i] == 1.0 { v } else { v + t[(0, i)] })
            .collect();
        (y, 0.0)
    }

    /// Inverse transform of one point; returns `(x, 0.0)`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.dim()`.
    pub fn inverse(&self, store: &ParamStore, y: &[f64]) -> (Vec<f64>, f64) {
        assert_eq!(y.len(), self.dim(), "dimension mismatch in inverse");
        let m = self.mask.as_slice();
        let masked: Vec<f64> = y.iter().zip(m).map(|(&v, &b)| v * b).collect();
        let t = self
            .translate_net
            .predict(store, &Tensor::from_row(&masked));
        let x: Vec<f64> = y
            .iter()
            .enumerate()
            .map(|(i, &v)| if m[i] == 1.0 { v } else { v - t[(0, i)] })
            .collect();
        (x, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn randomized(seed: u64) -> (ParamStore, AdditiveCoupling) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = AdditiveCoupling::new(&mut store, Mask::alternating(4, false), 8, &mut rng);
        let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
        let mut prng = StdRng::seed_from_u64(seed + 7);
        for id in ids {
            for v in store.get_mut(id).as_mut_slice() {
                *v += prng.gen_range(-0.5..0.5);
            }
        }
        (store, layer)
    }

    #[test]
    fn identity_at_init() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = AdditiveCoupling::new(&mut store, Mask::alternating(3, true), 8, &mut rng);
        let x = [1.0, -2.0, 0.5];
        let (y, ld) = layer.transform(&store, &x);
        assert_eq!(y, x.to_vec());
        assert_eq!(ld, 0.0);
    }

    #[test]
    fn round_trip_and_volume_preservation() {
        let (store, layer) = randomized(5);
        let x = [0.3, -1.0, 0.7, 2.1];
        let (y, ld) = layer.transform(&store, &x);
        assert_eq!(ld, 0.0);
        assert_ne!(y, x.to_vec()); // actually does something
        let (back, ld_inv) = layer.inverse(&store, &y);
        assert_eq!(ld_inv, 0.0);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn graph_matches_plain_and_logdet_is_zero() {
        let (store, layer) = randomized(11);
        let x = [0.1, 0.2, -0.3, 0.4];
        let mut g = Graph::new();
        let xv = g.constant(Tensor::from_row(&x));
        let (y, ld) = layer.forward_graph(&store, &mut g, xv);
        let (py, _) = layer.transform(&store, &x);
        for (c, pyc) in py.iter().enumerate() {
            assert!((g.value(y)[(0, c)] - pyc).abs() < 1e-12);
        }
        assert_eq!(g.value(ld).item(), 0.0);
    }

    #[test]
    fn gradients_flow_through_translation() {
        let (store, layer) = randomized(13);
        let x = Tensor::from_vec(2, 4, vec![0.5; 8]);
        let mut g = Graph::new();
        let xv = g.constant(x);
        let (y, _) = layer.forward_graph(&store, &mut g, xv);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        g.backward(loss);
        assert!(!g.param_grads().is_empty());
    }
}
