//! Binary coupling masks.

/// A binary mask partitioning the `D` coordinates of a coupling layer into
/// a conditioning set (mask = 1, passed through unchanged) and a
/// transformed set (mask = 0).
///
/// # Example
///
/// ```
/// use nofis_flows::Mask;
///
/// let m = Mask::alternating(4, true);
/// assert_eq!(m.as_slice(), &[1.0, 0.0, 1.0, 0.0]);
/// assert_eq!(m.complement().as_slice(), &[0.0, 1.0, 0.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mask {
    bits: Vec<f64>,
}

impl Mask {
    /// Builds a mask from explicit 0/1 entries.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty, contains values other than 0 and 1, or is
    /// constant (a constant mask would make the layer non-invertible or
    /// trivial).
    pub fn new(bits: Vec<f64>) -> Self {
        assert!(!bits.is_empty(), "mask must be non-empty");
        assert!(
            bits.iter().all(|&b| b == 0.0 || b == 1.0),
            "mask entries must be 0 or 1"
        );
        let ones = bits.iter().filter(|&&b| b == 1.0).count();
        assert!(
            ones > 0 && ones < bits.len(),
            "mask must contain both conditioning (1) and transformed (0) coordinates"
        );
        Mask { bits }
    }

    /// An alternating checkerboard mask over `dim` coordinates; `even_on`
    /// selects whether even indices are the conditioning set.
    ///
    /// # Panics
    ///
    /// Panics if `dim < 2`.
    pub fn alternating(dim: usize, even_on: bool) -> Self {
        assert!(dim >= 2, "coupling masks need dim >= 2");
        let bits = (0..dim)
            .map(|i| if (i % 2 == 0) == even_on { 1.0 } else { 0.0 })
            .collect();
        Mask::new(bits)
    }

    /// A half/half split mask; `first_on` selects whether the first half is
    /// the conditioning set.
    ///
    /// # Panics
    ///
    /// Panics if `dim < 2`.
    pub fn half(dim: usize, first_on: bool) -> Self {
        assert!(dim >= 2, "coupling masks need dim >= 2");
        let split = dim / 2;
        let bits = (0..dim)
            .map(|i| if (i < split) == first_on { 1.0 } else { 0.0 })
            .collect();
        Mask::new(bits)
    }

    /// Number of coordinates.
    pub fn dim(&self) -> usize {
        self.bits.len()
    }

    /// Borrows the 0/1 entries.
    pub fn as_slice(&self) -> &[f64] {
        &self.bits
    }

    /// The complementary mask (0s and 1s swapped).
    pub fn complement(&self) -> Mask {
        Mask {
            bits: self.bits.iter().map(|&b| 1.0 - b).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_flips() {
        let a = Mask::alternating(5, true);
        let b = Mask::alternating(5, false);
        assert_eq!(a.as_slice(), &[1.0, 0.0, 1.0, 0.0, 1.0]);
        assert_eq!(b.as_slice(), &[0.0, 1.0, 0.0, 1.0, 0.0]);
        assert_eq!(a.complement(), b);
    }

    #[test]
    fn half_masks() {
        let m = Mask::half(5, true);
        assert_eq!(m.as_slice(), &[1.0, 1.0, 0.0, 0.0, 0.0]);
        assert_eq!(Mask::half(4, false).as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "both conditioning")]
    fn rejects_constant_mask() {
        let _ = Mask::new(vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "0 or 1")]
    fn rejects_non_binary() {
        let _ = Mask::new(vec![0.5, 1.0]);
    }
}
