use crate::{AffineCoupling, Mask};
use nofis_autograd::{Graph, ParamId, ParamStore, Var};
use rand::Rng;
use rand_distr::StandardNormal;
use std::ops::Range;

/// Natural logarithm of `2π` (kept private to avoid a dependency cycle with
/// `nofis-prob`).
const LN_2PI: f64 = 1.837_877_066_409_345_5;

/// A RealNVP normalizing flow: a stack of [`AffineCoupling`] layers with
/// alternating masks over a standard Gaussian base distribution.
///
/// The flow supports evaluating **prefixes**: NOFIS anchors its `m`-th
/// stage at layer `m·K`, so every API takes a `depth` (number of leading
/// layers to apply). `depth == self.n_layers()` is the full flow.
///
/// # Example
///
/// ```
/// use nofis_autograd::ParamStore;
/// use nofis_flows::RealNvp;
/// use rand::SeedableRng;
///
/// let mut store = ParamStore::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let flow = RealNvp::new(&mut store, 2, 8, 16, 2.0, &mut rng);
/// // Freshly initialized flows are the identity: q == base distribution.
/// let (x, log_q) = flow.sample(&store, flow.n_layers(), &mut rng);
/// let direct = flow.log_density(&store, &x, flow.n_layers());
/// assert!((log_q - direct).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct RealNvp {
    layers: Vec<AffineCoupling>,
    dim: usize,
}

impl RealNvp {
    /// Builds a flow of `n_layers` coupling layers over `R^dim`, each with a
    /// one-hidden-layer conditioner of width `hidden` and log-scale clamp
    /// `s_max`.
    ///
    /// Masks alternate (checkerboard, flipped every layer) so every
    /// coordinate is transformed by every second layer.
    ///
    /// # Panics
    ///
    /// Panics if `dim < 2` or `n_layers == 0`.
    pub fn new(
        store: &mut ParamStore,
        dim: usize,
        n_layers: usize,
        hidden: usize,
        s_max: f64,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(dim >= 2, "RealNVP requires dim >= 2 (got {dim})");
        assert!(n_layers > 0, "RealNVP requires at least one layer");
        let layers = (0..n_layers)
            .map(|i| {
                AffineCoupling::new(
                    store,
                    Mask::alternating(dim, i % 2 == 0),
                    hidden,
                    s_max,
                    rng,
                )
            })
            .collect();
        RealNvp { layers, dim }
    }

    /// Dimensionality of the flow.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of coupling layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Borrows layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_layers()`.
    pub fn layer(&self, i: usize) -> &AffineCoupling {
        &self.layers[i]
    }

    /// Parameter ids of every layer, in layer order (the canonical
    /// parameter layout used by snapshots and checkpoints).
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.param_ids_for_layers(0..self.layers.len())
    }

    /// Parameter ids of the layers in `range` (e.g. one NOFIS stage block).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the layer count.
    pub fn param_ids_for_layers(&self, range: Range<usize>) -> Vec<ParamId> {
        assert!(range.end <= self.layers.len(), "layer range out of bounds");
        self.layers[range]
            .iter()
            .flat_map(|l| l.param_ids().into_iter())
            .collect()
    }

    /// Differentiable forward pass through the first `depth` layers.
    ///
    /// Returns `(z_depth, logdet)` with `logdet` of shape `[N, 1]` holding
    /// the accumulated `Σ ln|det J|` per sample.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or exceeds the layer count.
    pub fn forward_graph(
        &self,
        store: &ParamStore,
        g: &mut Graph,
        x: Var,
        depth: usize,
    ) -> (Var, Var) {
        assert!(
            depth >= 1 && depth <= self.layers.len(),
            "invalid depth {depth}"
        );
        let (mut z, mut logdet) = self.layers[0].forward_graph(store, g, x);
        for layer in &self.layers[1..depth] {
            let (z2, ld) = layer.forward_graph(store, g, z);
            z = z2;
            logdet = g.add(logdet, ld);
        }
        (z, logdet)
    }

    /// Plain forward transform of one point through the first `depth`
    /// layers; returns `(z_depth, Σ ln|det J|)`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero, exceeds the layer count, or
    /// `x.len() != self.dim()`.
    pub fn transform(&self, store: &ParamStore, x: &[f64], depth: usize) -> (Vec<f64>, f64) {
        assert!(
            depth >= 1 && depth <= self.layers.len(),
            "invalid depth {depth}"
        );
        let mut z = x.to_vec();
        let mut logdet = 0.0;
        for layer in &self.layers[..depth] {
            let (z2, ld) = layer.transform(store, &z);
            z = z2;
            logdet += ld;
        }
        (z, logdet)
    }

    /// Inverse transform of one point back through the first `depth` layers
    /// (applied last-to-first); returns `(z_0, Σ ln|det J_inverse|)`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero, exceeds the layer count, or
    /// `y.len() != self.dim()`.
    pub fn inverse(&self, store: &ParamStore, y: &[f64], depth: usize) -> (Vec<f64>, f64) {
        assert!(
            depth >= 1 && depth <= self.layers.len(),
            "invalid depth {depth}"
        );
        let mut z = y.to_vec();
        let mut logdet_inv = 0.0;
        for layer in self.layers[..depth].iter().rev() {
            let (z2, ld) = layer.inverse(store, &z);
            z = z2;
            logdet_inv += ld;
        }
        (z, logdet_inv)
    }

    /// Draws one sample from the depth-`depth` flow distribution `q`.
    ///
    /// Returns `(x, ln q(x))`; the log-density comes for free from the
    /// change-of-variables identity `ln q(x) = ln p(z₀) − Σ ln|det J|`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or exceeds the layer count.
    pub fn sample(&self, store: &ParamStore, depth: usize, rng: &mut impl Rng) -> (Vec<f64>, f64) {
        let z0: Vec<f64> = (0..self.dim).map(|_| rng.sample(StandardNormal)).collect();
        let base = base_log_density(&z0);
        let (x, logdet) = self.transform(store, &z0, depth);
        (x, base - logdet)
    }

    /// Exact log-density `ln q(x)` of the depth-`depth` flow distribution,
    /// evaluated by inverting the flow.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero, exceeds the layer count, or
    /// `x.len() != self.dim()`.
    pub fn log_density(&self, store: &ParamStore, x: &[f64], depth: usize) -> f64 {
        let (z0, logdet_inv) = self.inverse(store, x, depth);
        base_log_density(&z0) + logdet_inv
    }
}

fn base_log_density(z: &[f64]) -> f64 {
    let sq: f64 = z.iter().map(|v| v * v).sum();
    -0.5 * (z.len() as f64) * LN_2PI - 0.5 * sq
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn randomized_flow(dim: usize, layers: usize, seed: u64) -> (ParamStore, RealNvp) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let flow = RealNvp::new(&mut store, dim, layers, 8, 2.0, &mut rng);
        let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
        let mut prng = StdRng::seed_from_u64(seed + 100);
        for id in ids {
            for v in store.get_mut(id).as_mut_slice() {
                *v += prng.gen_range(-0.3..0.3);
            }
        }
        (store, flow)
    }

    #[test]
    fn multi_layer_round_trip() {
        let (store, flow) = randomized_flow(4, 6, 1);
        let x = [0.2, -1.4, 0.9, 0.5];
        let (y, ld) = flow.transform(&store, &x, 6);
        let (back, ld_inv) = flow.inverse(&store, &y, 6);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
        assert!((ld + ld_inv).abs() < 1e-10);
    }

    #[test]
    fn prefix_depths_compose() {
        let (store, flow) = randomized_flow(2, 4, 2);
        let x = [0.3, 0.7];
        let (z2, ld2) = flow.transform(&store, &x, 2);
        // Applying layers 2..4 manually should give the same as depth 4.
        let (z3, ld3) = flow.layer(2).transform(&store, &z2);
        let (z4, ld4) = flow.layer(3).transform(&store, &z3);
        let (direct, ld_direct) = flow.transform(&store, &x, 4);
        for (a, b) in z4.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((ld2 + ld3 + ld4 - ld_direct).abs() < 1e-12);
    }

    #[test]
    fn sample_log_density_consistency() {
        let (store, flow) = randomized_flow(3, 4, 3);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let (x, log_q) = flow.sample(&store, 4, &mut rng);
            let direct = flow.log_density(&store, &x, 4);
            assert!((log_q - direct).abs() < 1e-9, "{log_q} vs {direct}");
        }
    }

    #[test]
    fn identity_flow_density_is_base() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let flow = RealNvp::new(&mut store, 2, 4, 8, 2.0, &mut rng);
        let x = [0.5, -0.25];
        let expected = base_log_density(&x);
        assert!((flow.log_density(&store, &x, 4) - expected).abs() < 1e-12);
    }

    #[test]
    fn graph_forward_matches_plain_for_depth() {
        use nofis_autograd::{Graph, Tensor};
        let (store, flow) = randomized_flow(4, 5, 7);
        let x = [0.1, -0.2, 0.3, -0.4];
        for depth in [1, 3, 5] {
            let mut g = Graph::new();
            let xv = g.constant(Tensor::from_row(&x));
            let (z, ld) = flow.forward_graph(&store, &mut g, xv, depth);
            let (pz, pld) = flow.transform(&store, &x, depth);
            for (c, pzc) in pz.iter().enumerate() {
                assert!((g.value(z)[(0, c)] - pzc).abs() < 1e-12);
            }
            assert!((g.value(ld)[(0, 0)] - pld).abs() < 1e-12);
        }
    }

    #[test]
    fn param_ids_partition_by_layer() {
        let (_, flow) = randomized_flow(2, 6, 9);
        let all = flow.param_ids_for_layers(0..6);
        let first = flow.param_ids_for_layers(0..3);
        let second = flow.param_ids_for_layers(3..6);
        assert_eq!(all.len(), first.len() + second.len());
        assert!(first.iter().all(|id| !second.contains(id)));
    }

    #[test]
    #[should_panic(expected = "dim >= 2")]
    fn rejects_one_dimension() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = RealNvp::new(&mut store, 1, 2, 8, 2.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "invalid depth")]
    fn rejects_zero_depth() {
        let (store, flow) = randomized_flow(2, 2, 0);
        let _ = flow.transform(&store, &[0.0, 0.0], 0);
    }
}
