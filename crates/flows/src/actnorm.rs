//! Activation normalization (ActNorm) layers (Kingma & Dhariwal, Glow).
//!
//! A per-coordinate affine map `y = exp(s) ⊙ x + b` with trainable `s, b`
//! and `ln|det J| = Σ s` — one scalar scale/shift per dimension. ActNorm
//! stabilizes deep coupling stacks by letting the flow re-center and
//! re-scale cheaply between couplings; the deliverable flow
//! ([`RealNvp`](crate::RealNvp)) works without it, but it is exposed for
//! downstream composition and for the ablation benches.

use nofis_autograd::{Graph, ParamId, ParamStore, Tensor, Var};

/// Default clamp on ActNorm's per-coordinate log-scale: `|s| ≤ 5` bounds
/// each scale factor to `[e^-5, e^5] ≈ [0.0067, 148]`, generous for
/// normalization while preventing a diverged optimizer step from producing
/// `exp(s)` overflow and NaN log-dets.
pub const DEFAULT_S_MAX: f64 = 5.0;

/// A trainable per-coordinate affine normalization layer.
///
/// # Example
///
/// ```
/// use nofis_autograd::ParamStore;
/// use nofis_flows::ActNorm;
///
/// let mut store = ParamStore::new();
/// let layer = ActNorm::new(&mut store, 3);
/// let (y, logdet) = layer.transform(&store, &[1.0, 2.0, 3.0]);
/// assert_eq!(y, vec![1.0, 2.0, 3.0]); // identity at initialization
/// assert_eq!(logdet, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ActNorm {
    log_scale: ParamId,
    bias: ParamId,
    dim: usize,
    s_max: f64,
}

impl ActNorm {
    /// Creates an identity-initialized ActNorm over `dim` coordinates with
    /// the default log-scale clamp [`DEFAULT_S_MAX`].
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(store: &mut ParamStore, dim: usize) -> Self {
        Self::with_s_max(store, dim, DEFAULT_S_MAX)
    }

    /// Creates an identity-initialized ActNorm whose effective log-scale is
    /// hard-clamped to `[-s_max, s_max]` — the same overflow guard RealNVP
    /// couplings apply to their scale nets. The clamp is applied everywhere
    /// the scale is used (forward, inverse, graph, log-det), so the layer
    /// stays an exact bijection.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `s_max` is not finite and positive.
    pub fn with_s_max(store: &mut ParamStore, dim: usize, s_max: f64) -> Self {
        assert!(dim > 0, "ActNorm needs at least one dimension");
        assert!(s_max.is_finite() && s_max > 0.0, "s_max must be positive");
        let log_scale = store.add(Tensor::zeros(1, dim));
        let bias = store.add(Tensor::zeros(1, dim));
        ActNorm {
            log_scale,
            bias,
            dim,
            s_max,
        }
    }

    /// The log-scale clamp bound.
    pub fn s_max(&self) -> f64 {
        self.s_max
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `[log_scale, bias]` parameter ids.
    pub fn param_ids(&self) -> [ParamId; 2] {
        [self.log_scale, self.bias]
    }

    /// Data-dependent initialization: sets scale and bias so that `batch`
    /// maps to zero mean and unit variance per coordinate (the Glow
    /// initialization scheme).
    ///
    /// # Panics
    ///
    /// Panics if `batch` has fewer than two rows or a column count other
    /// than `self.dim()`.
    pub fn initialize_from(&self, store: &mut ParamStore, batch: &Tensor) {
        assert_eq!(batch.cols(), self.dim, "dimension mismatch");
        assert!(
            batch.rows() >= 2,
            "need at least two rows to estimate variance"
        );
        let n = batch.rows() as f64;
        for c in 0..self.dim {
            let mean: f64 = (0..batch.rows()).map(|r| batch[(r, c)]).sum::<f64>() / n;
            let var: f64 = (0..batch.rows())
                .map(|r| (batch[(r, c)] - mean).powi(2))
                .sum::<f64>()
                / n;
            let std = var.sqrt().max(1e-6);
            store.get_mut(self.log_scale).as_mut_slice()[c] = -std.ln();
            store.get_mut(self.bias).as_mut_slice()[c] = -mean / std;
        }
    }

    /// Differentiable forward transform; returns `(y, logdet)` with
    /// `logdet` of shape `[N, 1]` (identical per row).
    pub fn forward_graph(&self, store: &ParamStore, g: &mut Graph, x: Var) -> (Var, Var) {
        let (n, d) = g.value(x).shape();
        assert_eq!(d, self.dim, "dimension mismatch in ActNorm forward");
        let s_raw = store.inject(g, self.log_scale);
        let b = store.inject(g, self.bias);
        // Hard clamp s to [-s_max, s_max]: max(a, b) = -min(-a, -b), so the
        // two-sided clamp composes from min_scalar and neg.
        let upper = g.min_scalar(s_raw, self.s_max);
        let neg_upper = g.neg(upper);
        let lowered = g.min_scalar(neg_upper, self.s_max);
        let s = g.neg(lowered);
        let es = g.exp(s);
        let scaled = g.mul_row(x, es);
        let y = g.add_row(scaled, b);
        // Per-sample logdet = sum of (clamped) log-scales, same every row:
        // build it differentiably by summing s and broadcasting via matmul
        // with a column of ones.
        let s_sum = g.sum_cols(s); // [1,1]
        let ones = g.constant(Tensor::filled(n, 1, 1.0));
        let logdet = g.matmul(ones, s_sum); // [N,1]
        (y, logdet)
    }

    /// Plain forward transform of one point; returns `(y, ln|det J|)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn transform(&self, store: &ParamStore, x: &[f64]) -> (Vec<f64>, f64) {
        assert_eq!(x.len(), self.dim, "dimension mismatch in ActNorm");
        let s = store.get(self.log_scale).as_slice();
        let b = store.get(self.bias).as_slice();
        let y = x
            .iter()
            .zip(s)
            .zip(b)
            .map(|((&v, &si), &bi)| v * si.clamp(-self.s_max, self.s_max).exp() + bi)
            .collect();
        let ld = s.iter().map(|si| si.clamp(-self.s_max, self.s_max)).sum();
        (y, ld)
    }

    /// Inverse transform of one point; returns `(x, ln|det J⁻¹|)`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.dim()`.
    pub fn inverse(&self, store: &ParamStore, y: &[f64]) -> (Vec<f64>, f64) {
        assert_eq!(y.len(), self.dim, "dimension mismatch in ActNorm");
        let s = store.get(self.log_scale).as_slice();
        let b = store.get(self.bias).as_slice();
        let x = y
            .iter()
            .zip(s)
            .zip(b)
            .map(|((&v, &si), &bi)| (v - bi) * (-si.clamp(-self.s_max, self.s_max)).exp())
            .collect();
        let ld = -s
            .iter()
            .map(|si| si.clamp(-self.s_max, self.s_max))
            .sum::<f64>();
        (x, ld)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_init() {
        let mut store = ParamStore::new();
        let layer = ActNorm::new(&mut store, 2);
        let (y, ld) = layer.transform(&store, &[3.0, -4.0]);
        assert_eq!(y, vec![3.0, -4.0]);
        assert_eq!(ld, 0.0);
    }

    #[test]
    fn data_dependent_init_whitens() {
        let mut store = ParamStore::new();
        let layer = ActNorm::new(&mut store, 2);
        let batch = Tensor::from_fn(64, 2, |r, c| {
            let t = r as f64 / 8.0;
            if c == 0 {
                5.0 + 2.0 * (t.sin())
            } else {
                -1.0 + 0.5 * (t.cos())
            }
        });
        layer.initialize_from(&mut store, &batch);
        // Transform the batch and measure moments.
        let mut mean = [0.0; 2];
        let mut var = [0.0; 2];
        let mut ys = Vec::new();
        for r in 0..64 {
            let (y, _) = layer.transform(&store, batch.row(r));
            for c in 0..2 {
                mean[c] += y[c] / 64.0;
            }
            ys.push(y);
        }
        for y in &ys {
            for c in 0..2 {
                var[c] += (y[c] - mean[c]).powi(2) / 64.0;
            }
        }
        for c in 0..2 {
            assert!(mean[c].abs() < 1e-10, "mean {}", mean[c]);
            assert!((var[c] - 1.0).abs() < 1e-10, "var {}", var[c]);
        }
    }

    #[test]
    fn round_trip_with_nontrivial_params() {
        let mut store = ParamStore::new();
        let layer = ActNorm::new(&mut store, 3);
        store
            .get_mut(layer.param_ids()[0])
            .as_mut_slice()
            .copy_from_slice(&[0.3, -0.2, 0.5]);
        store
            .get_mut(layer.param_ids()[1])
            .as_mut_slice()
            .copy_from_slice(&[1.0, 2.0, -0.5]);
        let x = [0.4, -1.2, 2.2];
        let (y, ld) = layer.transform(&store, &x);
        let (back, ld_inv) = layer.inverse(&store, &y);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((ld - 0.6).abs() < 1e-12);
        assert!((ld + ld_inv).abs() < 1e-12);
    }

    #[test]
    fn graph_forward_matches_plain() {
        let mut store = ParamStore::new();
        let layer = ActNorm::new(&mut store, 2);
        store
            .get_mut(layer.param_ids()[0])
            .as_mut_slice()
            .copy_from_slice(&[0.1, -0.4]);
        store
            .get_mut(layer.param_ids()[1])
            .as_mut_slice()
            .copy_from_slice(&[0.7, 0.2]);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(2, 2, vec![1.0, 2.0, -0.5, 0.5]));
        let (y, ld) = layer.forward_graph(&store, &mut g, x);
        let (p0, pld) = layer.transform(&store, &[1.0, 2.0]);
        assert!((g.value(y)[(0, 0)] - p0[0]).abs() < 1e-12);
        assert!((g.value(y)[(0, 1)] - p0[1]).abs() < 1e-12);
        assert!((g.value(ld)[(0, 0)] - pld).abs() < 1e-12);
        assert!((g.value(ld)[(1, 0)] - pld).abs() < 1e-12);
    }

    #[test]
    fn extreme_log_scales_are_clamped() {
        let mut store = ParamStore::new();
        let layer = ActNorm::with_s_max(&mut store, 2, 2.0);
        store
            .get_mut(layer.param_ids()[0])
            .as_mut_slice()
            .copy_from_slice(&[50.0, -50.0]); // way past the clamp
        let x = [1.0, 1.0];
        let (y, ld) = layer.transform(&store, &x);
        assert!((y[0] - 2.0f64.exp()).abs() < 1e-12, "y0 = {}", y[0]);
        assert!((y[1] - (-2.0f64).exp()).abs() < 1e-12, "y1 = {}", y[1]);
        assert!(ld.abs() < 1e-12, "clamped logdet = {ld}");
        // Still an exact bijection under the clamp.
        let (back, ld_inv) = layer.inverse(&store, &y);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((ld + ld_inv).abs() < 1e-12);
        // Graph path applies the same clamp.
        let mut g = Graph::new();
        let xv = g.constant(Tensor::from_vec(1, 2, x.to_vec()));
        let (yv, ldv) = layer.forward_graph(&store, &mut g, xv);
        assert!((g.value(yv)[(0, 0)] - y[0]).abs() < 1e-12);
        assert!((g.value(ldv)[(0, 0)] - ld).abs() < 1e-12);
        assert!(g.value(yv).is_finite());
    }

    #[test]
    #[should_panic(expected = "s_max")]
    fn rejects_non_positive_s_max() {
        let mut store = ParamStore::new();
        let _ = ActNorm::with_s_max(&mut store, 2, 0.0);
    }

    #[test]
    fn gradients_reach_scale_and_bias() {
        let mut store = ParamStore::new();
        let layer = ActNorm::new(&mut store, 2);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(3, 2, vec![0.5; 6]));
        let (y, ld) = layer.forward_graph(&store, &mut g, x);
        let sq = g.square(y);
        let a = g.sum_cols(sq);
        let b = g.add(a, ld);
        let loss = g.mean_all(b);
        g.backward(loss);
        let grads = g.param_grads();
        assert_eq!(grads.len(), 2);
    }
}
