use crate::Mask;
use nofis_autograd::{Graph, ParamId, ParamStore, Tensor, Var};
use nofis_nn::{Activation, Mlp};
use rand::Rng;

/// A RealNVP affine coupling layer (Dinh et al., 2017).
///
/// With binary mask `m`, scale net `s(·)` and translate net `t(·)`:
///
/// ```text
/// y = m ⊙ x + (1 − m) ⊙ ( x ⊙ exp(s(m ⊙ x)) + t(m ⊙ x) )
/// ln|det J| = Σ (1 − m) ⊙ s(m ⊙ x)
/// ```
///
/// The raw scale-net output passes through `s_max · tanh(·)` so the
/// log-scales stay in `[-s_max, s_max]`; without this clamp the early NOFIS
/// stages diverge at large temperatures. Both nets are zero-initialized at
/// the output so a fresh layer is exactly the identity map.
///
/// # Example
///
/// ```
/// use nofis_autograd::ParamStore;
/// use nofis_flows::{AffineCoupling, Mask};
/// use rand::SeedableRng;
///
/// let mut store = ParamStore::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let layer = AffineCoupling::new(&mut store, Mask::alternating(2, true), 16, 2.0, &mut rng);
/// let (y, logdet) = layer.transform(&store, &[0.3, -0.7]);
/// assert_eq!(y, vec![0.3, -0.7]); // identity at initialization
/// assert_eq!(logdet, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct AffineCoupling {
    mask: Mask,
    /// `1 − mask`, cached at construction so the per-step graph build does
    /// not recompute (and reallocate) the complement row.
    inv_mask: Mask,
    scale_net: Mlp,
    translate_net: Mlp,
    s_max: f64,
}

impl AffineCoupling {
    /// Creates a coupling layer over `mask.dim()` coordinates with one
    /// hidden layer of width `hidden` in each conditioner net.
    ///
    /// # Panics
    ///
    /// Panics if `hidden == 0` or `s_max <= 0`.
    pub fn new(
        store: &mut ParamStore,
        mask: Mask,
        hidden: usize,
        s_max: f64,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(hidden > 0, "conditioner hidden width must be positive");
        assert!(s_max > 0.0, "s_max must be positive");
        let d = mask.dim();
        let dims = [d, hidden, d];
        let scale_net = Mlp::new_zero_output(store, &dims, Activation::Tanh, rng);
        let translate_net = Mlp::new_zero_output(store, &dims, Activation::Tanh, rng);
        let inv_mask = mask.complement();
        AffineCoupling {
            mask,
            inv_mask,
            scale_net,
            translate_net,
            s_max,
        }
    }

    /// Dimensionality of the layer.
    pub fn dim(&self) -> usize {
        self.mask.dim()
    }

    /// The layer's coupling mask.
    pub fn mask(&self) -> &Mask {
        &self.mask
    }

    /// All parameter ids of both conditioner nets.
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = self.scale_net.param_ids();
        ids.extend(self.translate_net.param_ids());
        ids
    }

    /// Differentiable forward transform on a batch.
    ///
    /// Returns `(y, logdet)` where `y` is `[N, D]` and `logdet` is `[N, 1]`
    /// holding each sample's `ln|det J|`.
    pub fn forward_graph(&self, store: &ParamStore, g: &mut Graph, x: Var) -> (Var, Var) {
        let d = self.dim();
        assert_eq!(
            g.value(x).cols(),
            d,
            "input has {} columns but the layer has dim {d}",
            g.value(x).cols()
        );
        let mask = g.constant_from_slice(1, d, self.mask.as_slice());
        let inv_mask = g.constant_from_slice(1, d, self.inv_mask.as_slice());

        let xm = g.mul_row(x, mask);
        let s_raw = self.scale_net.forward(store, g, xm);
        let s = if g.fusion_enabled() {
            g.tanh_scale(s_raw, self.s_max)
        } else {
            let s_tanh = g.tanh(s_raw);
            g.scale(s_tanh, self.s_max)
        };
        let t = self.translate_net.forward(store, g, xm);

        let es = g.exp(s);
        let scaled = g.mul(x, es);
        let affine = g.add(scaled, t);
        let free = g.mul_row(affine, inv_mask);
        let y = g.add(free, xm);

        let s_free = g.mul_row(s, inv_mask);
        let logdet = g.sum_cols(s_free);
        (y, logdet)
    }

    fn conditioner(&self, store: &ParamStore, masked: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let xm = Tensor::from_row(masked);
        let s_raw = self.scale_net.predict(store, &xm);
        let t = self.translate_net.predict(store, &xm);
        let s: Vec<f64> = s_raw
            .as_slice()
            .iter()
            .map(|&v| self.s_max * nofis_parallel::math::tanh(v))
            .collect();
        (s, t.as_slice().to_vec())
    }

    /// Plain (gradient-free) forward transform of one point.
    ///
    /// Returns `(y, ln|det J|)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn transform(&self, store: &ParamStore, x: &[f64]) -> (Vec<f64>, f64) {
        assert_eq!(x.len(), self.dim(), "dimension mismatch in transform");
        let m = self.mask.as_slice();
        let masked: Vec<f64> = x.iter().zip(m).map(|(&v, &b)| v * b).collect();
        let (s, t) = self.conditioner(store, &masked);
        let mut y = vec![0.0; x.len()];
        let mut logdet = 0.0;
        for i in 0..x.len() {
            if m[i] == 1.0 {
                y[i] = x[i];
            } else {
                y[i] = x[i] * s[i].exp() + t[i];
                logdet += s[i];
            }
        }
        (y, logdet)
    }

    /// Inverse transform of one point.
    ///
    /// Returns `(x, ln|det J_inverse|)`; the returned log-determinant is
    /// that of the *inverse* map, i.e. the negation of the forward one at
    /// the corresponding point.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.dim()`.
    pub fn inverse(&self, store: &ParamStore, y: &[f64]) -> (Vec<f64>, f64) {
        assert_eq!(y.len(), self.dim(), "dimension mismatch in inverse");
        let m = self.mask.as_slice();
        // The conditioning coordinates pass through unchanged, so the masked
        // input equals the masked output.
        let masked: Vec<f64> = y.iter().zip(m).map(|(&v, &b)| v * b).collect();
        let (s, t) = self.conditioner(store, &masked);
        let mut x = vec![0.0; y.len()];
        let mut logdet_inv = 0.0;
        for i in 0..y.len() {
            if m[i] == 1.0 {
                x[i] = y[i];
            } else {
                x[i] = (y[i] - t[i]) * (-s[i]).exp();
                logdet_inv -= s[i];
            }
        }
        (x, logdet_inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_autograd::check::{max_rel_error, numeric_param_grads};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn randomized_layer(seed: u64) -> (ParamStore, AffineCoupling) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = AffineCoupling::new(&mut store, Mask::alternating(4, true), 8, 2.0, &mut rng);
        // Perturb every parameter so the layer is non-trivial.
        let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
        let mut prng = StdRng::seed_from_u64(seed + 1);
        for id in ids {
            for v in store.get_mut(id).as_mut_slice() {
                *v += prng.gen_range(-0.4..0.4);
            }
        }
        (store, layer)
    }

    #[test]
    fn identity_at_initialization() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = AffineCoupling::new(&mut store, Mask::alternating(3, false), 8, 2.0, &mut rng);
        let x = [0.5, -1.0, 2.0];
        let (y, ld) = layer.transform(&store, &x);
        assert_eq!(y, x.to_vec());
        assert_eq!(ld, 0.0);
    }

    #[test]
    fn inverse_round_trip() {
        let (store, layer) = randomized_layer(3);
        let x = [0.7, -0.3, 1.2, 0.1];
        let (y, ld_fwd) = layer.transform(&store, &x);
        let (x_back, ld_inv) = layer.inverse(&store, &y);
        for (a, b) in x.iter().zip(&x_back) {
            assert!((a - b).abs() < 1e-12, "round trip failed: {x_back:?}");
        }
        assert!((ld_fwd + ld_inv).abs() < 1e-12);
    }

    #[test]
    fn masked_coordinates_pass_through() {
        let (store, layer) = randomized_layer(9);
        let x = [1.0, 2.0, 3.0, 4.0];
        let (y, _) = layer.transform(&store, &x);
        // mask = [1,0,1,0]: coordinates 0 and 2 unchanged
        assert_eq!(y[0], 1.0);
        assert_eq!(y[2], 3.0);
        assert_ne!(y[1], 2.0);
    }

    #[test]
    fn graph_forward_matches_plain() {
        let (store, layer) = randomized_layer(11);
        let rows = [[0.3, -0.9, 0.1, 0.8], [1.5, 0.2, -0.4, -1.1]];
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(2, 4, flat));
        let (y, ld) = layer.forward_graph(&store, &mut g, x);
        for (r, row) in rows.iter().enumerate() {
            let (py, pld) = layer.transform(&store, row);
            for (c, pyc) in py.iter().enumerate() {
                assert!((g.value(y)[(r, c)] - pyc).abs() < 1e-12);
            }
            assert!((g.value(ld)[(r, 0)] - pld).abs() < 1e-12);
        }
    }

    #[test]
    fn logdet_matches_numeric_jacobian() {
        let (store, layer) = randomized_layer(17);
        let x = [0.4, -0.6, 1.3, 0.9];
        let (_, ld) = layer.transform(&store, &x);
        // Numeric Jacobian determinant via finite differences.
        let d = 4;
        let eps = 1e-6;
        let mut jac = vec![vec![0.0; d]; d];
        for j in 0..d {
            let mut xp = x.to_vec();
            xp[j] += eps;
            let (yp, _) = layer.transform(&store, &xp);
            xp[j] -= 2.0 * eps;
            let (ym, _) = layer.transform(&store, &xp);
            for i in 0..d {
                jac[i][j] = (yp[i] - ym[i]) / (2.0 * eps);
            }
        }
        // Coupling Jacobian is triangular with unit diagonal on the mask:
        // determinant = product of diagonal entries.
        let det: f64 = (0..d).map(|i| jac[i][i]).product();
        assert!(
            (det.ln() - ld).abs() < 1e-6,
            "logdet {ld} vs numeric {}",
            det.ln()
        );
    }

    #[test]
    fn parameter_gradients_match_finite_differences() {
        let (mut store, layer) = randomized_layer(23);
        let x_data = Tensor::from_vec(
            3,
            4,
            vec![
                0.2, -0.5, 0.8, 0.3, -1.1, 0.6, 0.4, -0.2, 0.9, 0.1, -0.7, 1.2,
            ],
        );

        // loss = mean( sum_cols(y^2) ) + mean(logdet)
        let loss_of = |s: &ParamStore| {
            let mut g = Graph::new();
            let x = g.constant(x_data.clone());
            let (y, ld) = layer.forward_graph(s, &mut g, x);
            let y2 = g.square(y);
            let y2s = g.sum_cols(y2);
            let a = g.mean_all(y2s);
            let b = g.mean_all(ld);
            let loss = g.add(a, b);
            g.value(loss).item()
        };

        let analytic = {
            let mut g = Graph::new();
            let x = g.constant(x_data.clone());
            let (y, ld) = layer.forward_graph(&store, &mut g, x);
            let y2 = g.square(y);
            let y2s = g.sum_cols(y2);
            let a = g.mean_all(y2s);
            let b = g.mean_all(ld);
            let loss = g.add(a, b);
            g.backward(loss);
            g.param_grads()
        };

        let numeric = numeric_param_grads(&mut store, loss_of, 1e-6);
        for (id, grad) in &analytic {
            let err = max_rel_error(grad.as_slice(), numeric[id.index()].as_slice());
            assert!(err < 1e-5, "param {} gradient mismatch: {err}", id.index());
        }
    }
}
