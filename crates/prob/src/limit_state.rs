use std::sync::atomic::{AtomicU64, Ordering};

/// The characteristic (limit-state) function `g : R^D -> R` defining a rare
/// event `Ω = { x : g(x) <= 0 }` under a standard Gaussian `x`.
///
/// This mirrors the paper's problem statement: evaluating `g` invokes an
/// expensive simulation, `g(x) <= 0` means the circuit fails its spec, and
/// the goal is to estimate `P[g(x) <= 0]` with as few calls as possible.
///
/// Implementations should also supply gradients when they can: the NOFIS
/// training loss (Eq. 7/8 in the paper) backpropagates through `g`, exactly
/// as the reference PyTorch implementation does with differentiable test
/// cases. Simulator-backed implementations provide adjoint or analytic
/// sensitivities; the default falls back to central finite differences of
/// [`LimitState::value`].
pub trait LimitState {
    /// Dimensionality `D` of the variation space.
    fn dim(&self) -> usize;

    /// Evaluates `g(x)`. Failure is `g(x) <= 0`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != self.dim()`.
    fn value(&self, x: &[f64]) -> f64;

    /// Evaluates `g(x)` together with its gradient `∇g(x)`.
    ///
    /// The default implementation uses central finite differences with step
    /// `1e-5`; override it with analytic or adjoint gradients where
    /// available.
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let eps = 1e-5;
        let v = self.value(x);
        let mut xp = x.to_vec();
        let mut grad = vec![0.0; x.len()];
        for i in 0..x.len() {
            let orig = xp[i];
            xp[i] = orig + eps;
            let fp = self.value(&xp);
            xp[i] = orig - eps;
            let fm = self.value(&xp);
            xp[i] = orig;
            grad[i] = (fp - fm) / (2.0 * eps);
        }
        (v, grad)
    }

    /// Short human-readable name used in experiment reports.
    fn name(&self) -> &str {
        "unnamed"
    }

    /// Whether `x` lies in the failure region `Ω_a = { g(x) <= a }`.
    fn fails(&self, x: &[f64], threshold: f64) -> bool {
        self.value(x) <= threshold
    }
}

impl<T: LimitState + ?Sized> LimitState for Box<T> {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn value(&self, x: &[f64]) -> f64 {
        (**self).value(x)
    }
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        (**self).value_grad(x)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<T: LimitState + ?Sized> LimitState for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn value(&self, x: &[f64]) -> f64 {
        (**self).value(x)
    }
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        (**self).value_grad(x)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Wraps a [`LimitState`] and counts simulator invocations.
///
/// Every method in this reproduction that consumes the *function call
/// budget* goes through a `CountingOracle`, so reported call counts are
/// measured, not assumed. A [`LimitState::value_grad`] call counts as **one**
/// simulation, matching the paper's accounting (`MEN + N_IS` calls for
/// NOFIS): gradient information comes from adjoint/analytic sensitivities
/// computed alongside the primary solve, not from extra simulations.
///
/// The counter is atomic so repeated experiment runs may share an oracle
/// across threads.
///
/// # Example
///
/// ```
/// use nofis_prob::{CountingOracle, LimitState};
///
/// struct Sphere;
/// impl LimitState for Sphere {
///     fn dim(&self) -> usize { 2 }
///     fn value(&self, x: &[f64]) -> f64 { x[0] * x[0] + x[1] * x[1] - 1.0 }
/// }
///
/// let oracle = CountingOracle::new(&Sphere);
/// assert!(oracle.value(&[0.5, 0.5]) < 0.0);
/// let _ = oracle.value_grad(&[1.0, 1.0]);
/// assert_eq!(oracle.calls(), 2);
/// ```
#[derive(Debug)]
pub struct CountingOracle<'a, T: LimitState + ?Sized> {
    inner: &'a T,
    calls: AtomicU64,
}

impl<'a, T: LimitState + ?Sized> CountingOracle<'a, T> {
    /// Wraps `inner` with a fresh zeroed counter.
    pub fn new(inner: &'a T) -> Self {
        CountingOracle {
            inner,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of simulator invocations so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
    }

    /// Borrows the wrapped limit state without counting.
    pub fn inner(&self) -> &'a T {
        self.inner
    }
}

impl<T: LimitState + ?Sized> LimitState for CountingOracle<'_, T> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn value(&self, x: &[f64]) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.value(x)
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        // One simulation: sensitivities ride along with the primary solve.
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.value_grad(x)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Linear2;
    impl LimitState for Linear2 {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            2.0 * x[0] - 3.0 * x[1] + 1.0
        }
        fn name(&self) -> &str {
            "linear2"
        }
    }

    #[test]
    fn default_gradient_is_finite_difference() {
        let (v, g) = Linear2.value_grad(&[1.0, 1.0]);
        assert!((v - 0.0).abs() < 1e-12);
        assert!((g[0] - 2.0).abs() < 1e-6);
        assert!((g[1] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn fails_uses_threshold() {
        assert!(Linear2.fails(&[0.0, 1.0], 0.0)); // g = -2
        assert!(!Linear2.fails(&[1.0, 0.0], 0.0)); // g = 3
        assert!(Linear2.fails(&[1.0, 0.0], 3.0));
    }

    #[test]
    fn oracle_counts_and_resets() {
        let oracle = CountingOracle::new(&Linear2);
        assert_eq!(oracle.calls(), 0);
        let _ = oracle.value(&[0.0, 0.0]);
        let _ = oracle.value(&[1.0, 0.0]);
        let _ = oracle.value_grad(&[1.0, 1.0]);
        assert_eq!(oracle.calls(), 3);
        assert_eq!(oracle.name(), "linear2");
        oracle.reset();
        assert_eq!(oracle.calls(), 0);
    }

    #[test]
    fn blanket_ref_impl_works() {
        fn takes_ls(ls: impl LimitState) -> f64 {
            ls.value(&[0.0, 0.0])
        }
        assert_eq!(takes_ls(&Linear2), 1.0);
    }
}
