//! Composite limit states: multi-spec yield.
//!
//! Real circuits fail when *any* spec is violated (gain, bandwidth, power,
//! offset…). [`AnyOf`] composes limit states with
//! `g(x) = min_k g_k(x)` — failing iff at least one member fails — and
//! propagates the active member's gradient, so the composite plugs
//! directly into NOFIS and every baseline.

use crate::LimitState;

/// Failure when **any** member fails: `g = min_k g_k`.
///
/// # Example
///
/// ```
/// use nofis_prob::{AnyOf, LimitState};
///
/// struct Spec(f64, usize); // fails when x[idx] >= bound
/// impl LimitState for Spec {
///     fn dim(&self) -> usize { 2 }
///     fn value(&self, x: &[f64]) -> f64 { self.0 - x[self.1] }
/// }
///
/// let multi = AnyOf::new(vec![Box::new(Spec(3.0, 0)), Box::new(Spec(2.5, 1))])
///     .expect("consistent dims");
/// assert!(multi.value(&[3.5, 0.0]) <= 0.0); // first spec violated
/// assert!(multi.value(&[0.0, 3.0]) <= 0.0); // second spec violated
/// assert!(multi.value(&[0.0, 0.0]) > 0.0);  // both met
/// ```
pub struct AnyOf {
    members: Vec<Box<dyn LimitState + Send + Sync>>,
    dim: usize,
    name: String,
}

impl std::fmt::Debug for AnyOf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnyOf")
            .field("members", &self.members.len())
            .field("dim", &self.dim)
            .finish()
    }
}

impl AnyOf {
    /// Composes the members.
    ///
    /// # Errors
    ///
    /// Returns a message if `members` is empty or dimensions differ.
    pub fn new(members: Vec<Box<dyn LimitState + Send + Sync>>) -> Result<Self, String> {
        let dim = members
            .first()
            .ok_or_else(|| "AnyOf needs at least one member".to_string())?
            .dim();
        if members.iter().any(|m| m.dim() != dim) {
            return Err("all members must share the variation dimension".into());
        }
        let name = format!(
            "any-of({})",
            members
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        Ok(AnyOf { members, dim, name })
    }

    /// Number of composed specs.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if no members are present (never constructible via
    /// [`AnyOf::new`]; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl LimitState for AnyOf {
    fn dim(&self) -> usize {
        self.dim
    }

    fn value(&self, x: &[f64]) -> f64 {
        self.members
            .iter()
            .map(|m| m.value(x))
            .fold(f64::INFINITY, f64::min)
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        // One call per member; the active (minimal) member's gradient is
        // the subgradient of the min.
        let mut best = f64::INFINITY;
        let mut best_grad = vec![0.0; self.dim];
        for m in &self.members {
            let (v, grad) = m.value_grad(x);
            if v < best {
                best = v;
                best_grad = grad;
            }
        }
        (best, best_grad)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Plane {
        bound: f64,
        axis: usize,
        dim: usize,
    }
    impl LimitState for Plane {
        fn dim(&self) -> usize {
            self.dim
        }
        fn value(&self, x: &[f64]) -> f64 {
            self.bound - x[self.axis]
        }
        fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
            let mut g = vec![0.0; self.dim];
            g[self.axis] = -1.0;
            (self.bound - x[self.axis], g)
        }
        fn name(&self) -> &str {
            "plane"
        }
    }

    fn two_specs() -> AnyOf {
        AnyOf::new(vec![
            Box::new(Plane {
                bound: 3.0,
                axis: 0,
                dim: 2,
            }),
            Box::new(Plane {
                bound: 2.0,
                axis: 1,
                dim: 2,
            }),
        ])
        .unwrap()
    }

    #[test]
    fn min_semantics() {
        let m = two_specs();
        assert_eq!(m.value(&[0.0, 0.0]), 2.0);
        assert!(m.value(&[3.5, 0.0]) < 0.0);
        assert!(m.value(&[0.0, 2.5]) < 0.0);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert!(m.name().contains("plane"));
    }

    #[test]
    fn gradient_follows_active_member() {
        let m = two_specs();
        // Near the x1 spec boundary: gradient along axis 1.
        let (_, g) = m.value_grad(&[0.0, 1.9]);
        assert_eq!(g, vec![0.0, -1.0]);
        // Near the x0 spec boundary.
        let (_, g) = m.value_grad(&[2.9, 0.0]);
        assert_eq!(g, vec![-1.0, 0.0]);
    }

    #[test]
    fn union_probability_exceeds_members() {
        use crate::monte_carlo;
        use rand::SeedableRng;
        let m = two_specs();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let p_union = monte_carlo(&m, 0.0, 200_000, &mut rng).estimate();
        let p0 = 1.0 - crate::normal_cdf(3.0);
        let p1 = 1.0 - crate::normal_cdf(2.0);
        assert!(p_union > p1.max(p0));
        assert!(p_union < p0 + p1 + 2e-3);
        assert!((p_union - (p0 + p1 - p0 * p1)).abs() < 2e-3);
    }

    #[test]
    fn rejects_inconsistent_members() {
        assert!(AnyOf::new(vec![]).is_err());
        let err = AnyOf::new(vec![
            Box::new(Plane {
                bound: 1.0,
                axis: 0,
                dim: 2,
            }),
            Box::new(Plane {
                bound: 1.0,
                axis: 0,
                dim: 3,
            }),
        ]);
        assert!(err.is_err());
    }
}
