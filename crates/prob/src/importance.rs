use crate::batch::ORACLE_CHUNK;
use crate::{LimitState, StandardGaussian};
use nofis_parallel::chunks::{chunk_count, chunk_range};
use nofis_parallel::ThreadPool;
use rand::RngCore;

/// A proposal distribution `q` that supports exact sampling and exact
/// log-density evaluation — the two properties importance sampling needs
/// and the reason normalizing flows compose the proposal family in NOFIS.
pub trait Proposal {
    /// Dimensionality of the sample space.
    fn dim(&self) -> usize;

    /// Draws one sample.
    fn sample(&self, rng: &mut dyn RngCore) -> Vec<f64>;

    /// Evaluates `ln q(x)`.
    fn log_density(&self, x: &[f64]) -> f64;
}

impl Proposal for StandardGaussian {
    fn dim(&self) -> usize {
        StandardGaussian::dim(self)
    }

    fn sample(&self, mut rng: &mut dyn RngCore) -> Vec<f64> {
        StandardGaussian::sample(self, &mut rng)
    }

    fn log_density(&self, x: &[f64]) -> f64 {
        StandardGaussian::log_density(self, x)
    }
}

/// Which rung of the guarded estimation fallback ladder produced an
/// estimate.
///
/// A trusted estimator descends this ladder only when
/// [`WeightDiagnostics`](crate::WeightDiagnostics) flags the previous rung
/// as degenerate: the learned final proposal first, then an earlier-stage
/// proposal, then a defensive mixture `α·p + (1−α)·q` whose weights are
/// bounded by `1/α`, and finally plain Monte Carlo, which is always
/// unbiased but has no variance reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FallbackRung {
    /// The primary (final trained) proposal was used directly.
    FinalProposal,
    /// An earlier stage proposal `q_{mK}` was substituted (1-based stage).
    StageProposal {
        /// The stage whose proposal produced the estimate.
        stage: usize,
    },
    /// A defensive mixture `α·p + (1−α)·q` of the base and the final
    /// proposal was substituted.
    DefensiveMixture {
        /// Base-distribution mixing weight `α` (weights bounded by `1/α`).
        alpha: f64,
    },
    /// Plain Monte Carlo under the base distribution `p`.
    PlainMonteCarlo,
}

impl FallbackRung {
    /// Position on the ladder (0 = primary proposal, 3 = plain MC).
    pub fn rank(&self) -> usize {
        match self {
            FallbackRung::FinalProposal => 0,
            FallbackRung::StageProposal { .. } => 1,
            FallbackRung::DefensiveMixture { .. } => 2,
            FallbackRung::PlainMonteCarlo => 3,
        }
    }

    /// Whether any fallback was engaged (anything past the primary rung).
    pub fn is_fallback(&self) -> bool {
        self.rank() > 0
    }
}

impl std::fmt::Display for FallbackRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackRung::FinalProposal => write!(f, "final proposal"),
            FallbackRung::StageProposal { stage } => write!(f, "stage-{stage} proposal"),
            FallbackRung::DefensiveMixture { alpha } => {
                write!(f, "defensive mixture (alpha = {alpha})")
            }
            FallbackRung::PlainMonteCarlo => write!(f, "plain Monte Carlo"),
        }
    }
}

/// Outcome of an importance-sampling estimation (Eq. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsResult {
    /// The unbiased probability estimate
    /// `(1/N) Σ 1[g(xₙ) ≤ a] · p(xₙ)/q(xₙ)`.
    pub estimate: f64,
    /// Number of proposal samples that landed in the failure region.
    pub hits: u64,
    /// Kish effective sample size of the failure-region weights; a small
    /// value relative to `hits` warns of weight degeneracy.
    pub effective_sample_size: f64,
    /// Which proposal actually produced this estimate. Direct calls to
    /// [`importance_sampling`] always report
    /// [`FallbackRung::FinalProposal`]; guarded estimators overwrite this
    /// when they descend the ladder.
    pub rung: FallbackRung,
}

impl IsResult {
    /// Returns the same result tagged with the given ladder rung.
    pub fn with_rung(self, rung: FallbackRung) -> Self {
        IsResult { rung, ..self }
    }
}

/// Importance-sampling estimate of `P[g(x) ≤ threshold]` under the standard
/// Gaussian `p`, drawing `n` samples from `proposal`.
///
/// Each drawn sample costs one call on `limit_state` (wrap it in a
/// [`CountingOracle`](crate::CountingOracle) to meter the budget).
///
/// # Panics
///
/// Panics if `n == 0` or the proposal dimension differs from the limit
/// state's.
///
/// # Example
///
/// ```
/// use nofis_prob::{importance_sampling, LimitState, StandardGaussian};
/// use rand::SeedableRng;
///
/// struct HalfSpace;
/// impl LimitState for HalfSpace {
///     fn dim(&self) -> usize { 1 }
///     fn value(&self, x: &[f64]) -> f64 { 1.0 - x[0] } // fails when x >= 1
/// }
///
/// let p = StandardGaussian::new(1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// // Using p itself as the proposal reduces IS to plain Monte Carlo.
/// let r = importance_sampling(&HalfSpace, 0.0, &p, &p, 20_000, &mut rng);
/// assert!((r.estimate - 0.1587).abs() < 0.02); // P[x >= 1] = 1 - Φ(1)
/// ```
pub fn importance_sampling(
    limit_state: &(impl LimitState + ?Sized + Sync),
    threshold: f64,
    proposal: &(impl Proposal + ?Sized + Sync),
    p: &StandardGaussian,
    n: usize,
    rng: &mut dyn RngCore,
) -> IsResult {
    importance_sampling_with_pool(
        limit_state,
        threshold,
        proposal,
        p,
        n,
        rng,
        nofis_parallel::global(),
    )
}

/// [`importance_sampling`] on an explicit pool.
///
/// # Panics
///
/// Same conditions as [`importance_sampling`].
pub fn importance_sampling_with_pool(
    limit_state: &(impl LimitState + ?Sized + Sync),
    threshold: f64,
    proposal: &(impl Proposal + ?Sized + Sync),
    p: &StandardGaussian,
    n: usize,
    rng: &mut dyn RngCore,
    pool: &ThreadPool,
) -> IsResult {
    let (result, _) =
        importance_sampling_detailed_with_pool(limit_state, threshold, proposal, p, n, rng, pool);
    result
}

/// Importance sampling like [`importance_sampling`], additionally
/// returning the log-weights of the failure-region samples so callers can
/// run [`WeightDiagnostics`](crate::WeightDiagnostics) on them.
///
/// # Panics
///
/// Same conditions as [`importance_sampling`].
pub fn importance_sampling_detailed(
    limit_state: &(impl LimitState + ?Sized + Sync),
    threshold: f64,
    proposal: &(impl Proposal + ?Sized + Sync),
    p: &StandardGaussian,
    n: usize,
    rng: &mut dyn RngCore,
) -> (IsResult, Vec<f64>) {
    importance_sampling_detailed_with_pool(
        limit_state,
        threshold,
        proposal,
        p,
        n,
        rng,
        nofis_parallel::global(),
    )
}

/// [`importance_sampling_detailed`] on an explicit pool.
///
/// Samples are drawn serially from `rng` (sampling is cheap next to oracle
/// calls, and this keeps the random stream identical to a serial run), then
/// evaluated in fixed [`ORACLE_CHUNK`]-sized chunks across `pool`. The
/// per-chunk partial sums `(Σw, Σw²)` are reduced in chunk order, so the
/// estimate, hit count, ESS, and log-weight list are all bitwise identical
/// for any thread count.
///
/// # Panics
///
/// Same conditions as [`importance_sampling`].
pub fn importance_sampling_detailed_with_pool(
    limit_state: &(impl LimitState + ?Sized + Sync),
    threshold: f64,
    proposal: &(impl Proposal + ?Sized + Sync),
    p: &StandardGaussian,
    n: usize,
    rng: &mut dyn RngCore,
    pool: &ThreadPool,
) -> (IsResult, Vec<f64>) {
    assert!(n > 0, "importance sampling needs at least one sample");
    assert_eq!(
        proposal.dim(),
        limit_state.dim(),
        "proposal and limit state dimensions differ"
    );
    let xs: Vec<Vec<f64>> = (0..n).map(|_| proposal.sample(rng)).collect();
    // One parallel pass per chunk: oracle call + log-weight for failures.
    let partials: Vec<(f64, f64, Vec<f64>)> = pool.map_chunks(chunk_count(n, ORACLE_CHUNK), |ci| {
        let (start, end) = chunk_range(n, ORACLE_CHUNK, ci);
        let mut sum_w = 0.0;
        let mut sum_w2 = 0.0;
        let mut lws = Vec::new();
        for x in &xs[start..end] {
            if limit_state.value(x) <= threshold {
                let lw = p.log_density(x) - proposal.log_density(x);
                lws.push(lw);
                let w = lw.exp();
                sum_w += w;
                sum_w2 += w * w;
            }
        }
        (sum_w, sum_w2, lws)
    });
    // Chunk-ordered reduction: fixed addition order for any thread count.
    let mut log_weights = Vec::new();
    let mut sum_w = 0.0;
    let mut sum_w2 = 0.0;
    for (w, w2, lws) in partials {
        sum_w += w;
        sum_w2 += w2;
        log_weights.extend(lws);
    }
    let estimate = sum_w / n as f64;
    let ess = if sum_w2 > 0.0 {
        sum_w * sum_w / sum_w2
    } else {
        0.0
    };
    (
        IsResult {
            estimate,
            hits: log_weights.len() as u64,
            effective_sample_size: ess,
            rung: FallbackRung::FinalProposal,
        },
        log_weights,
    )
}

/// Outcome of a plain Monte Carlo estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McResult {
    /// Number of failing samples.
    pub hits: u64,
    /// Number of samples drawn.
    pub samples: u64,
}

impl McResult {
    /// The Monte Carlo probability estimate `hits / samples`.
    pub fn estimate(&self) -> f64 {
        self.hits as f64 / self.samples as f64
    }
}

/// Plain Monte Carlo estimate of `P[g(x) ≤ threshold]`, drawing `n` samples
/// from the standard Gaussian.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn monte_carlo(
    limit_state: &(impl LimitState + ?Sized + Sync),
    threshold: f64,
    n: usize,
    rng: &mut dyn RngCore,
) -> McResult {
    monte_carlo_with_pool(limit_state, threshold, n, rng, nofis_parallel::global())
}

/// [`monte_carlo`] on an explicit pool. Samples are drawn serially from
/// `rng` (identical stream to a serial run); oracle calls run chunked
/// across the pool and the hit count is reduced in chunk order.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn monte_carlo_with_pool(
    limit_state: &(impl LimitState + ?Sized + Sync),
    threshold: f64,
    n: usize,
    rng: &mut dyn RngCore,
    pool: &ThreadPool,
) -> McResult {
    assert!(n > 0, "Monte Carlo needs at least one sample");
    let dim = limit_state.dim();
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| rand_distr::Distribution::sample(&rand_distr::StandardNormal, rng))
                .collect()
        })
        .collect();
    let chunk_hits: Vec<u64> = pool.map_chunks(chunk_count(n, ORACLE_CHUNK), |ci| {
        let (start, end) = chunk_range(n, ORACLE_CHUNK, ci);
        xs[start..end]
            .iter()
            .filter(|x| limit_state.value(x) <= threshold)
            .count() as u64
    });
    McResult {
        hits: chunk_hits.iter().sum(),
        samples: n as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal_cdf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Shifted;
    impl LimitState for Shifted {
        fn dim(&self) -> usize {
            1
        }
        fn value(&self, x: &[f64]) -> f64 {
            3.0 - x[0] // fails when x >= 3
        }
    }

    /// A Gaussian proposal shifted to mean 3 for the `Shifted` event.
    struct ShiftedProposal;
    impl Proposal for ShiftedProposal {
        fn dim(&self) -> usize {
            1
        }
        fn sample(&self, rng: &mut dyn RngCore) -> Vec<f64> {
            let z: f64 = rand_distr::Distribution::sample(&rand_distr::StandardNormal, rng);
            vec![z + 3.0]
        }
        fn log_density(&self, x: &[f64]) -> f64 {
            let d = x[0] - 3.0;
            -0.5 * crate::LN_2PI - 0.5 * d * d
        }
    }

    #[test]
    fn shifted_proposal_estimates_tail_accurately() {
        let p = StandardGaussian::new(1);
        let mut rng = StdRng::seed_from_u64(7);
        let r = importance_sampling(&Shifted, 0.0, &ShiftedProposal, &p, 4000, &mut rng);
        let truth = 1.0 - normal_cdf(3.0); // ≈ 1.35e-3
        assert!(
            (r.estimate / truth - 1.0).abs() < 0.1,
            "estimate={}, truth={truth}",
            r.estimate
        );
        assert!(r.hits > 1000); // about half the proposal mass fails
        assert!(r.effective_sample_size > 100.0);
    }

    #[test]
    fn monte_carlo_matches_cdf() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = monte_carlo(&Shifted, 2.0, 50_000, &mut rng); // g <= 2 ⇔ x >= 1
        let truth = 1.0 - normal_cdf(1.0);
        assert!((r.estimate() / truth - 1.0).abs() < 0.05);
    }

    #[test]
    fn is_with_base_proposal_equals_mc_statistically() {
        let p = StandardGaussian::new(1);
        let mut rng = StdRng::seed_from_u64(2);
        let r = importance_sampling(&Shifted, 2.0, &p, &p, 50_000, &mut rng);
        let truth = 1.0 - normal_cdf(1.0);
        assert!((r.estimate / truth - 1.0).abs() < 0.05);
        // All weights are exactly 1 here, so ESS equals hit count.
        assert!((r.effective_sample_size - r.hits as f64).abs() < 1e-6);
    }

    #[test]
    fn zero_hits_gives_zero_estimate() {
        let p = StandardGaussian::new(1);
        let mut rng = StdRng::seed_from_u64(3);
        let r = importance_sampling(&Shifted, -20.0, &p, &p, 100, &mut rng);
        assert_eq!(r.estimate, 0.0);
        assert_eq!(r.hits, 0);
        assert_eq!(r.effective_sample_size, 0.0);
    }
}
