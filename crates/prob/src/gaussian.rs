use rand::Rng;
use rand_distr::StandardNormal;

/// Natural logarithm of `2π`.
pub const LN_2PI: f64 = 1.837_877_066_409_345_5;

/// The `D`-dimensional standard Gaussian `N(0, I)` — the paper's
/// data-generating distribution `p` for semiconductor process variation.
///
/// # Example
///
/// ```
/// use nofis_prob::StandardGaussian;
/// use rand::SeedableRng;
///
/// let p = StandardGaussian::new(3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let x = p.sample(&mut rng);
/// assert_eq!(x.len(), 3);
/// assert!(p.log_density(&x) < p.log_density(&[0.0, 0.0, 0.0]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StandardGaussian {
    dim: usize,
}

impl StandardGaussian {
    /// Creates the standard Gaussian over `R^dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        StandardGaussian { dim }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<f64> {
        (0..self.dim).map(|_| rng.sample(StandardNormal)).collect()
    }

    /// Draws `n` samples as a flat row-major `n x dim` buffer.
    pub fn sample_flat(&self, n: usize, rng: &mut impl Rng) -> Vec<f64> {
        (0..n * self.dim)
            .map(|_| rng.sample(StandardNormal))
            .collect()
    }

    /// Fills `out` with i.i.d. standard-normal draws in place — the
    /// allocation-free counterpart of [`StandardGaussian::sample_flat`]
    /// (same RNG stream: filling a `n * dim` buffer consumes exactly the
    /// draws `sample_flat(n, rng)` would).
    pub fn sample_fill(&self, out: &mut [f64], rng: &mut impl Rng) {
        for v in out.iter_mut() {
            *v = rng.sample(StandardNormal);
        }
    }

    /// Log density `ln p(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn log_density(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "dimension mismatch in log_density");
        let sq: f64 = x.iter().map(|v| v * v).sum();
        -0.5 * (self.dim as f64) * LN_2PI - 0.5 * sq
    }

    /// Log density of a scaled Gaussian `N(0, s² I)` at `x` — used by
    /// scaled-sigma sampling.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()` or `s <= 0`.
    pub fn log_density_scaled(&self, x: &[f64], s: f64) -> f64 {
        assert_eq!(
            x.len(),
            self.dim,
            "dimension mismatch in log_density_scaled"
        );
        assert!(s > 0.0, "scale must be positive");
        let sq: f64 = x.iter().map(|v| v * v).sum();
        -0.5 * (self.dim as f64) * (LN_2PI + 2.0 * s.ln()) - 0.5 * sq / (s * s)
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// Implemented via the complementary error function with the Abramowitz &
/// Stegun 7.1.26-style rational approximation refined to double precision
/// (max absolute error below `1e-15` across the real line, verified against
/// high-precision references in the test suite).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function `erfc(x)` with ~1e-15 absolute accuracy.
///
/// Uses the Chebyshev-fitted expansion from Numerical Recipes (`erfccheb`),
/// accurate to a few ulps of double precision over the full range.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        erfc_positive(x)
    } else {
        2.0 - erfc_positive(-x)
    }
}

fn erfc_positive(x: f64) -> f64 {
    debug_assert!(x >= 0.0);
    // Numerical Recipes 3rd ed., §6.2.2: Chebyshev fit to
    // erfc(x) = t*exp(-x^2 + P(t)) with t = 2/(2+x).
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let t = 2.0 / (2.0 + x);
    let ty = 4.0 * t - 2.0;
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().skip(1).rev() {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    t * (-x * x + 0.5 * (COF[0] + ty * d) - dd).exp()
}

/// Inverse standard normal CDF (quantile function) via Acklam's algorithm
/// refined with one Halley step (absolute error below `1e-12`).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    // Acklam's rational approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement against the high-accuracy CDF.
    let e = normal_cdf(x) - p;
    let u = e * (0.5 * LN_2PI + 0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_density_at_origin() {
        let p = StandardGaussian::new(2);
        let expected = -LN_2PI; // -(D/2) ln 2π with D = 2
        assert!((p.log_density(&[0.0, 0.0]) - expected).abs() < 1e-14);
    }

    #[test]
    fn scaled_density_reduces_to_standard() {
        let p = StandardGaussian::new(3);
        let x = [0.4, -1.0, 2.0];
        assert!((p.log_density_scaled(&x, 1.0) - p.log_density(&x)).abs() < 1e-14);
        // Larger sigma flattens tails: density at a far point increases.
        let far = [4.0, 4.0, 4.0];
        assert!(p.log_density_scaled(&far, 2.0) > p.log_density(&far));
    }

    #[test]
    fn sample_statistics_are_standard() {
        let p = StandardGaussian::new(1);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let samples = p.sample_flat(n, &mut rng);
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|v| v * v).sum::<f64>() / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn cdf_reference_values() {
        // Reference values from standard tables.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((normal_cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-12);
        assert!((normal_cdf(-1.96) - 0.024_997_895_148_220_43).abs() < 1e-12);
        assert!((normal_cdf(3.0) - 0.998_650_101_968_369_9).abs() < 1e-12);
        // Deep tail: Φ(-6) ≈ 9.865876e-10.
        let tail = normal_cdf(-6.0);
        assert!(
            (tail / 9.865_876_450_376_946e-10 - 1.0).abs() < 1e-8,
            "tail={tail}"
        );
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[1e-9, 1e-6, 0.001, 0.1, 0.5, 0.9, 0.999, 1.0 - 1e-9] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-11 * (1.0 + 1.0 / p.min(1.0 - p) * 1e-3),
                "p={p}, x={x}, cdf={}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.0, 0.3, 1.5, 4.0] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "quantile requires")]
    fn quantile_rejects_out_of_range() {
        let _ = normal_quantile(1.0);
    }
}
