use std::fmt;

/// Floor applied to zero/negative probability estimates before taking
/// logarithms in [`log_error`].
///
/// An estimator that returns exactly zero (e.g. plain Monte Carlo seeing no
/// failures) would otherwise produce an infinite log-error; the paper's
/// Table 1 reports large-but-finite errors for those cases, implying a
/// similar floor.
pub const ESTIMATE_FLOOR: f64 = 1e-12;

/// Result of a rare-event probability estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityEstimate {
    /// Estimated failure probability (may be zero if nothing was observed).
    pub value: f64,
    /// Number of simulator calls consumed, as measured by a
    /// [`CountingOracle`](crate::CountingOracle).
    pub calls: u64,
}

impl ProbabilityEstimate {
    /// Creates an estimate.
    pub fn new(value: f64, calls: u64) -> Self {
        ProbabilityEstimate { value, calls }
    }

    /// Absolute log error against a golden probability; see [`log_error`].
    pub fn log_error(&self, golden: f64) -> f64 {
        log_error(self.value, golden)
    }
}

impl fmt::Display for ProbabilityEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} ({} calls)", self.value, self.calls)
    }
}

/// The paper's evaluation metric: `| ln(estimate) - ln(golden) |`, with the
/// estimate floored at [`ESTIMATE_FLOOR`] so failed estimators yield a
/// large finite error rather than infinity.
///
/// # Panics
///
/// Panics if `golden` is not strictly positive.
///
/// # Example
///
/// ```
/// use nofis_prob::log_error;
///
/// assert!(log_error(1e-6, 1e-6) < 1e-12);          // perfect estimate
/// assert!((log_error(1e-5, 1e-6) - std::f64::consts::LN_10).abs() < 1e-12);
/// assert!(log_error(0.0, 1e-6).is_finite());       // floored, not infinite
/// ```
pub fn log_error(estimate: f64, golden: f64) -> f64 {
    assert!(golden > 0.0, "golden probability must be positive");
    let est = estimate.max(ESTIMATE_FLOOR);
    (est.ln() - golden.ln()).abs()
}

/// Streaming mean/variance/extremes accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use nofis_prob::RunningStats;
///
/// let mut s = RunningStats::new();
/// for v in [1.0, 2.0, 3.0] { s.push(v); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.sample_variance(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `values` by sorting a copy
/// (with [`f64::total_cmp`]), using linear interpolation between order
/// statistics.
///
/// Used by adaptive level selection (SUS and NOFIS's automatic threshold
/// schedule).
///
/// **NaN handling:** a broken simulator can return NaN scores, and the
/// adaptive schedule must not crash on them. NaN entries are filtered out
/// before the quantile is computed, so the result is the quantile of the
/// valid observations. If *every* entry is NaN the function returns NaN —
/// callers that cannot tolerate this should check `is_nan()` on the result.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of an empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_error_basics() {
        assert_eq!(log_error(1e-6, 1e-6), 0.0);
        let e = log_error(2e-6, 1e-6);
        assert!((e - 2.0_f64.ln()).abs() < 1e-12);
        // symmetric over/under-estimation
        assert!((log_error(5e-7, 1e-6) - log_error(2e-6, 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn log_error_floors_zero() {
        let e = log_error(0.0, 4.74e-6);
        assert!(e.is_finite());
        assert!((e - (4.74e-6_f64.ln() - ESTIMATE_FLOOR.ln())).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_error_rejects_zero_golden() {
        let _ = log_error(1e-6, 0.0);
    }

    #[test]
    fn running_stats_welford() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.mean(), 5.0);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn stats_extend() {
        let mut s = RunningStats::new();
        s.extend([1.0, 3.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert!((quantile(&v, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_handles_unsorted() {
        let v = [9.0, 1.0, 5.0];
        assert_eq!(quantile(&v, 0.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn quantile_filters_nan() {
        // NaN scores from a broken simulator are skipped, not fatal.
        let v = [f64::NAN, 1.0, f64::NAN, 3.0];
        assert_eq!(quantile(&v, 0.5), 2.0);
        assert!(quantile(&[f64::NAN, f64::NAN], 0.5).is_nan());
        // Infinities are legitimate order statistics and survive total_cmp.
        let w = [f64::INFINITY, 0.0, f64::NEG_INFINITY];
        assert_eq!(quantile(&w, 0.5), 0.0);
    }

    #[test]
    fn estimate_display() {
        let e = ProbabilityEstimate::new(4.7e-6, 32000);
        assert!(format!("{e}").contains("32000"));
    }
}
