//! Probability substrate for rare-event estimation.
//!
//! Defines the vocabulary shared by NOFIS and every baseline:
//!
//! * [`LimitState`] — the characteristic function `g` with
//!   `Ω = { g(x) ≤ 0 }`, including gradient access for the differentiable
//!   training losses.
//! * [`CountingOracle`] — meters simulator calls so every reported budget
//!   is measured.
//! * [`StandardGaussian`] — the data-generating distribution `p`, plus
//!   high-accuracy [`normal_cdf`] / [`normal_quantile`] helpers used by
//!   analytic goldens and threshold calibration.
//! * [`Proposal`] and [`importance_sampling`] — the IS estimator of Eq. (2).
//! * [`log_error`], [`RunningStats`], [`quantile`] — the paper's evaluation
//!   metric and experiment statistics.
//!
//! # Example
//!
//! ```
//! use nofis_prob::{monte_carlo, CountingOracle, LimitState};
//! use rand::SeedableRng;
//!
//! struct Ring;
//! impl LimitState for Ring {
//!     fn dim(&self) -> usize { 2 }
//!     fn value(&self, x: &[f64]) -> f64 {
//!         let r = (x[0] * x[0] + x[1] * x[1]).sqrt();
//!         (r - 3.0).abs() - 0.2 // fails in a thin annulus
//!     }
//! }
//!
//! let oracle = CountingOracle::new(&Ring);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let r = monte_carlo(&oracle, 0.0, 10_000, &mut rng);
//! assert_eq!(oracle.calls(), 10_000);
//! assert!(r.estimate() < 0.05);
//! ```

#![deny(missing_docs)]

mod batch;
mod budget;
mod composite;
mod defensive;
mod diagnostics;
mod estimate;
mod gaussian;
mod importance;
mod limit_state;
mod mixture;

pub use batch::{batch_values, batch_values_budgeted, batch_values_with, ORACLE_CHUNK};
pub use budget::BudgetedOracle;
pub use composite::AnyOf;
pub use defensive::DefensiveMixture;
pub use diagnostics::WeightDiagnostics;
pub use estimate::{log_error, quantile, ProbabilityEstimate, RunningStats, ESTIMATE_FLOOR};
pub use gaussian::{erfc, normal_cdf, normal_quantile, StandardGaussian, LN_2PI};
pub use importance::{
    importance_sampling, importance_sampling_detailed, importance_sampling_detailed_with_pool,
    importance_sampling_with_pool, monte_carlo, monte_carlo_with_pool, FallbackRung, IsResult,
    McResult, Proposal,
};
pub use limit_state::{CountingOracle, LimitState};
pub use mixture::GaussianMixture;
