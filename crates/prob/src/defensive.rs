//! Defensive mixture proposals (Hesterberg, 1995).
//!
//! When a learned proposal `q` turns out to be degenerate — heavy-tailed
//! importance weights, one sample dominating the estimate — mixing the base
//! distribution back in rescues the estimator: under
//! `q_α = α·p + (1−α)·q` every importance weight `p/q_α` is bounded above
//! by `1/α`, so the estimate has finite variance *regardless of how bad `q`
//! is*. This is the third rung of the guarded estimation fallback ladder
//! (see [`FallbackRung`](crate::FallbackRung)).

use crate::{Proposal, StandardGaussian};
use rand::{Rng, RngCore};

/// The defensive mixture `α·p + (1−α)·q` of the standard Gaussian base `p`
/// and an arbitrary proposal `q`.
///
/// # Example
///
/// ```
/// use nofis_prob::{DefensiveMixture, Proposal, StandardGaussian};
/// use rand::SeedableRng;
///
/// // Even against a catastrophically narrow q, weights stay <= 1/alpha.
/// let q = StandardGaussian::new(2); // stand-in proposal
/// let defensive = DefensiveMixture::new(&q, 0.5).expect("valid alpha");
/// let p = StandardGaussian::new(2);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let x = defensive.sample(&mut rng);
/// let w = (p.log_density(&x) - defensive.log_density(&x)).exp();
/// assert!(w <= 2.0 + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct DefensiveMixture<'a, Q: Proposal + ?Sized> {
    base: StandardGaussian,
    q: &'a Q,
    alpha: f64,
}

impl<'a, Q: Proposal + ?Sized> DefensiveMixture<'a, Q> {
    /// Wraps `q` in a defensive mixture with base weight `alpha`.
    ///
    /// # Errors
    ///
    /// Returns a message if `alpha` is not in `(0, 1)` or `q` has zero
    /// dimension.
    pub fn new(q: &'a Q, alpha: f64) -> Result<Self, String> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(format!("defensive alpha must be in (0, 1), got {alpha}"));
        }
        let dim = q.dim();
        if dim == 0 {
            return Err("proposal dimension must be positive".into());
        }
        Ok(DefensiveMixture {
            base: StandardGaussian::new(dim),
            q,
            alpha,
        })
    }

    /// The base mixing weight `α`; importance weights are bounded by `1/α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl<Q: Proposal + ?Sized> Proposal for DefensiveMixture<'_, Q> {
    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn sample(&self, mut rng: &mut dyn RngCore) -> Vec<f64> {
        let u: f64 = Rng::gen(&mut rng);
        if u < self.alpha {
            Proposal::sample(&self.base, rng)
        } else {
            self.q.sample(rng)
        }
    }

    fn log_density(&self, x: &[f64]) -> f64 {
        // log-sum-exp of ln α + ln p(x) and ln(1−α) + ln q(x); the q term
        // may be -inf (or NaN from a broken flow) — treat non-finite q
        // densities as zero mass so the mixture stays a valid density.
        let lp = self.alpha.ln() + self.base.log_density(x);
        let lq_raw = self.q.log_density(x);
        let lq = if lq_raw.is_nan() {
            f64::NEG_INFINITY
        } else {
            (1.0 - self.alpha).ln() + lq_raw
        };
        let max = lp.max(lq);
        if max == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        max + ((lp - max).exp() + (lq - max).exp()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{importance_sampling, normal_cdf, LimitState, WeightDiagnostics};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A deliberately terrible proposal: a spike at (5, 5) with tiny width.
    struct Spike;
    impl Proposal for Spike {
        fn dim(&self) -> usize {
            2
        }
        fn sample(&self, mut rng: &mut dyn RngCore) -> Vec<f64> {
            let u: f64 = Rng::gen(&mut rng);
            let v: f64 = Rng::gen(&mut rng);
            vec![5.0 + 0.01 * (u - 0.5), 5.0 + 0.01 * (v - 0.5)]
        }
        fn log_density(&self, x: &[f64]) -> f64 {
            let in_box = (x[0] - 5.0).abs() <= 0.005 && (x[1] - 5.0).abs() <= 0.005;
            if in_box {
                (1.0f64 / (0.01 * 0.01)).ln()
            } else {
                f64::NEG_INFINITY
            }
        }
    }

    #[test]
    fn rejects_bad_alpha() {
        let q = StandardGaussian::new(2);
        assert!(DefensiveMixture::new(&q, 0.0).is_err());
        assert!(DefensiveMixture::new(&q, 1.0).is_err());
        assert!(DefensiveMixture::new(&q, f64::NAN).is_err());
        assert!(DefensiveMixture::new(&q, 0.5).is_ok());
    }

    #[test]
    fn weights_are_bounded_by_inverse_alpha() {
        let defensive = DefensiveMixture::new(&Spike, 0.25).unwrap();
        let p = StandardGaussian::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5_000 {
            let x = defensive.sample(&mut rng);
            let w = (p.log_density(&x) - defensive.log_density(&x)).exp();
            assert!(w.is_finite());
            assert!(w <= 4.0 + 1e-9, "weight {w} exceeds 1/alpha");
        }
    }

    #[test]
    fn rescues_estimation_from_a_degenerate_proposal() {
        // Event: x0 >= 1 (P = 1 - Φ(1) ≈ 0.1587). The spike proposal alone
        // would give a useless estimate; the defensive mixture recovers it.
        struct HalfSpace;
        impl LimitState for HalfSpace {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, x: &[f64]) -> f64 {
                1.0 - x[0]
            }
        }
        let defensive = DefensiveMixture::new(&Spike, 0.5).unwrap();
        let p = StandardGaussian::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        let r = importance_sampling(&HalfSpace, 0.0, &defensive, &p, 40_000, &mut rng);
        let truth = 1.0 - normal_cdf(1.0);
        assert!(
            (r.estimate / truth - 1.0).abs() < 0.1,
            "estimate {} vs truth {truth}",
            r.estimate
        );
    }

    #[test]
    fn defensive_weights_pass_diagnostics() {
        struct Everything;
        impl LimitState for Everything {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, _: &[f64]) -> f64 {
                -1.0
            }
        }
        let defensive = DefensiveMixture::new(&Spike, 0.5).unwrap();
        let p = StandardGaussian::new(2);
        let mut rng = StdRng::seed_from_u64(4);
        let mut log_weights = Vec::new();
        for _ in 0..500 {
            let x = defensive.sample(&mut rng);
            let _ = Everything.value(&x);
            log_weights.push(p.log_density(&x) - defensive.log_density(&x));
        }
        let d = WeightDiagnostics::from_log_weights(&log_weights);
        assert!(
            d.looks_healthy(),
            "bounded defensive weights should be healthy: {d:?}"
        );
    }

    #[test]
    fn density_handles_nan_inner_proposal() {
        struct NanDensity;
        impl Proposal for NanDensity {
            fn dim(&self) -> usize {
                2
            }
            fn sample(&self, _rng: &mut dyn RngCore) -> Vec<f64> {
                vec![0.0, 0.0]
            }
            fn log_density(&self, _x: &[f64]) -> f64 {
                f64::NAN
            }
        }
        let defensive = DefensiveMixture::new(&NanDensity, 0.5).unwrap();
        let ld = defensive.log_density(&[0.0, 0.0]);
        assert!(ld.is_finite(), "NaN inner density must not poison mixture");
    }
}
