//! Hard simulator-call budgets.
//!
//! Rare-event pipelines must never silently overrun their simulation
//! budget: a production run that was promised `B` simulator calls has to
//! stop at `B`, degrade gracefully, and report how far it got. A
//! [`BudgetedOracle`] wraps any [`LimitState`] (typically a
//! [`CountingOracle`](crate::CountingOracle), so external accounting still
//! sees every call) and meters consumption against a fixed budget. Callers
//! plan each chunk of work with [`BudgetedOracle::grant`], which truncates
//! the request to what is affordable instead of letting the work overrun.

use crate::LimitState;
use nofis_telemetry as tele;
use std::sync::atomic::{AtomicU64, Ordering};

/// Emits budget-spend telemetry for a planned/reserved chunk: a
/// per-grant trace record, plus a debug-level truncation event whenever
/// the affordable count fell short of the request (the moment a run
/// starts degrading). Purely observational — never affects the grant.
fn record_grant(op: &'static str, want: usize, granted: usize, used: u64, budget: u64) {
    if tele::enabled(tele::Level::Trace) {
        tele::event(tele::Level::Trace, "budget.grant")
            .field("op", op)
            .field("want", want)
            .field("granted", granted)
            .field("used", used)
            .field("budget", budget)
            .emit();
    }
    if granted < want && tele::enabled(tele::Level::Debug) {
        tele::event(tele::Level::Debug, "budget.truncated")
            .field("op", op)
            .field("want", want)
            .field("granted", granted)
            .field("remaining", budget.saturating_sub(used))
            .emit();
    }
}

/// A [`LimitState`] wrapper enforcing a hard simulator-call budget.
///
/// The oracle counts every `value`/`value_grad` invocation. Consumers are
/// expected to reserve work via [`BudgetedOracle::grant`] *before* spending
/// calls; any call made beyond the budget is recorded in
/// [`BudgetedOracle::overruns`] so tests can assert the cooperative
/// protocol was honored (the call still delegates to the wrapped limit
/// state rather than panicking — budget violations must degrade loudly,
/// not abort).
///
/// # Example
///
/// ```
/// use nofis_prob::{BudgetedOracle, CountingOracle, LimitState};
///
/// struct Sphere;
/// impl LimitState for Sphere {
///     fn dim(&self) -> usize { 2 }
///     fn value(&self, x: &[f64]) -> f64 { x[0] * x[0] + x[1] * x[1] - 1.0 }
/// }
///
/// let counting = CountingOracle::new(&Sphere);
/// let budgeted = BudgetedOracle::new(&counting, 3);
/// assert_eq!(budgeted.grant(2), 2);   // plan a 2-call chunk
/// let _ = budgeted.value(&[0.0, 0.0]);
/// let _ = budgeted.value(&[1.0, 1.0]);
/// assert_eq!(budgeted.remaining(), 1);
/// assert_eq!(budgeted.grant(5), 1);   // truncated, not overrun
/// let _ = budgeted.value(&[0.5, 0.5]);
/// assert!(budgeted.is_exhausted());
/// assert_eq!(budgeted.overruns(), 0);
/// assert_eq!(counting.calls(), 3);    // outer accounting still exact
/// ```
#[derive(Debug)]
pub struct BudgetedOracle<'a, T: LimitState + ?Sized> {
    inner: &'a T,
    budget: u64,
    used: AtomicU64,
}

impl<'a, T: LimitState + ?Sized> BudgetedOracle<'a, T> {
    /// Wraps `inner` with a hard budget of `budget` simulator calls.
    pub fn new(inner: &'a T, budget: u64) -> Self {
        BudgetedOracle {
            inner,
            budget,
            used: AtomicU64::new(0),
        }
    }

    /// The total call budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Calls consumed so far.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Calls still affordable (0 when exhausted).
    pub fn remaining(&self) -> u64 {
        self.budget.saturating_sub(self.used())
    }

    /// Whether the budget is fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Truncates a planned chunk of `want` calls to what the remaining
    /// budget affords. Returns the affordable count (possibly 0) without
    /// consuming anything; consumption happens as calls are made.
    pub fn grant(&self, want: usize) -> usize {
        let granted = (want as u64).min(self.remaining()) as usize;
        record_grant("grant", want, granted, self.used(), self.budget);
        granted
    }

    /// Atomically reserves up to `want` calls, *consuming* them from the
    /// budget immediately, and returns how many were actually granted.
    ///
    /// Unlike [`BudgetedOracle::grant`] — which only inspects the remaining
    /// budget and relies on a single consumer spending it afterwards —
    /// `reserve` pre-charges `used`, so concurrent reservations can never
    /// jointly exceed the budget. Parallel batch evaluation (see
    /// [`batch_values_budgeted`](crate::batch_values_budgeted)) reserves
    /// each chunk up front and then spends the reserved calls with
    /// [`BudgetedOracle::value_prepaid`].
    pub fn reserve(&self, want: usize) -> usize {
        let want = want as u64;
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let granted = want.min(self.budget.saturating_sub(cur));
            if granted == 0 {
                record_grant("reserve", want as usize, 0, cur, self.budget);
                return 0;
            }
            match self.used.compare_exchange(
                cur,
                cur + granted,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    record_grant(
                        "reserve",
                        want as usize,
                        granted as usize,
                        cur + granted,
                        self.budget,
                    );
                    return granted as usize;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Evaluates the wrapped limit state without charging the budget; the
    /// call must have been paid for via [`BudgetedOracle::reserve`].
    pub(crate) fn value_prepaid(&self, x: &[f64]) -> f64 {
        self.inner.value(x)
    }

    /// Calls made *beyond* the budget (0 when every consumer planned its
    /// chunks with [`BudgetedOracle::grant`]).
    pub fn overruns(&self) -> u64 {
        self.used().saturating_sub(self.budget)
    }

    /// Borrows the wrapped limit state without counting.
    pub fn inner(&self) -> &'a T {
        self.inner
    }
}

impl<T: LimitState + ?Sized> LimitState for BudgetedOracle<'_, T> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn value(&self, x: &[f64]) -> f64 {
        self.used.fetch_add(1, Ordering::Relaxed);
        self.inner.value(x)
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        // One simulation, like CountingOracle: sensitivities ride along.
        self.used.fetch_add(1, Ordering::Relaxed);
        self.inner.value_grad(x)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountingOracle;

    struct Linear;
    impl LimitState for Linear {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            x[0] - x[1]
        }
        fn name(&self) -> &str {
            "linear"
        }
    }

    #[test]
    fn grant_truncates_to_remaining() {
        let b = BudgetedOracle::new(&Linear, 10);
        assert_eq!(b.grant(4), 4);
        for _ in 0..7 {
            let _ = b.value(&[0.0, 0.0]);
        }
        assert_eq!(b.remaining(), 3);
        assert_eq!(b.grant(100), 3);
        assert_eq!(b.grant(2), 2);
        assert!(!b.is_exhausted());
    }

    #[test]
    fn counts_value_and_grad_as_one_each() {
        let b = BudgetedOracle::new(&Linear, 5);
        let _ = b.value(&[1.0, 0.0]);
        let _ = b.value_grad(&[1.0, 0.0]);
        assert_eq!(b.used(), 2);
        assert_eq!(b.name(), "linear");
        assert_eq!(b.dim(), 2);
    }

    #[test]
    fn overruns_are_recorded_not_panicked() {
        let b = BudgetedOracle::new(&Linear, 1);
        let _ = b.value(&[0.0, 0.0]);
        assert!(b.is_exhausted());
        // A misbehaving consumer that skipped grant() still gets an answer,
        // but the violation is visible.
        let v = b.value(&[2.0, 0.0]);
        assert_eq!(v, 2.0);
        assert_eq!(b.overruns(), 1);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn stacks_on_counting_oracle() {
        let counting = CountingOracle::new(&Linear);
        let budgeted = BudgetedOracle::new(&counting, 100);
        for _ in 0..12 {
            let _ = budgeted.value(&[0.0, 0.0]);
        }
        assert_eq!(budgeted.used(), 12);
        assert_eq!(counting.calls(), 12);
    }
}
