//! Hard simulator-call budgets.
//!
//! Rare-event pipelines must never silently overrun their simulation
//! budget: a production run that was promised `B` simulator calls has to
//! stop at `B`, degrade gracefully, and report how far it got. A
//! [`BudgetedOracle`] wraps any [`LimitState`] (typically a
//! [`CountingOracle`](crate::CountingOracle), so external accounting still
//! sees every call) and meters consumption against a fixed budget. Callers
//! plan each chunk of work with [`BudgetedOracle::grant`], which truncates
//! the request to what is affordable instead of letting the work overrun.

use crate::LimitState;
use nofis_faults as faults;
use nofis_telemetry as tele;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// Announces an injected fault at one of this wrapper's seams. Warn-level:
/// chaos runs must be able to line injections up with their consequences
/// in the trace.
fn record_fault(kind: faults::FaultKind, site: faults::Site) {
    tele::event(tele::Level::Warn, "fault.injected")
        .field("site", site.as_str())
        .field("kind", kind.as_str())
        .emit();
}

/// The fault-injection seam at [`faults::Site::BudgetGrant`]: when the
/// installed plan schedules [`faults::FaultKind::BudgetExhaust`] for this
/// visit, the budget is forced to exhaustion *before* the planning call
/// computes the affordable count — the caller then sees a clean grant of 0
/// and degrades exactly as if the budget had genuinely run dry.
fn budget_fault(used: &AtomicU64, budget: u64) {
    if !faults::active() {
        return;
    }
    if let Some(kind @ faults::FaultKind::BudgetExhaust) = faults::check(faults::Site::BudgetGrant)
    {
        record_fault(kind, faults::Site::BudgetGrant);
        used.fetch_max(budget, Ordering::Relaxed);
    }
}

/// Emits budget-spend telemetry for a planned/reserved chunk: a
/// per-grant trace record, plus a debug-level truncation event whenever
/// the affordable count fell short of the request (the moment a run
/// starts degrading). Purely observational — never affects the grant.
fn record_grant(op: &'static str, want: usize, granted: usize, used: u64, budget: u64) {
    if tele::enabled(tele::Level::Trace) {
        tele::event(tele::Level::Trace, "budget.grant")
            .field("op", op)
            .field("want", want)
            .field("granted", granted)
            .field("used", used)
            .field("budget", budget)
            .emit();
    }
    if granted < want && tele::enabled(tele::Level::Debug) {
        tele::event(tele::Level::Debug, "budget.truncated")
            .field("op", op)
            .field("want", want)
            .field("granted", granted)
            .field("remaining", budget.saturating_sub(used))
            .emit();
    }
}

/// A [`LimitState`] wrapper enforcing a hard simulator-call budget.
///
/// The oracle counts every `value`/`value_grad` invocation. Consumers are
/// expected to reserve work via [`BudgetedOracle::grant`] *before* spending
/// calls; any call made beyond the budget is recorded in
/// [`BudgetedOracle::overruns`] so tests can assert the cooperative
/// protocol was honored (the call still delegates to the wrapped limit
/// state rather than panicking — budget violations must degrade loudly,
/// not abort).
///
/// # Example
///
/// ```
/// use nofis_prob::{BudgetedOracle, CountingOracle, LimitState};
///
/// struct Sphere;
/// impl LimitState for Sphere {
///     fn dim(&self) -> usize { 2 }
///     fn value(&self, x: &[f64]) -> f64 { x[0] * x[0] + x[1] * x[1] - 1.0 }
/// }
///
/// let counting = CountingOracle::new(&Sphere);
/// let budgeted = BudgetedOracle::new(&counting, 3);
/// assert_eq!(budgeted.grant(2), 2);   // plan a 2-call chunk
/// let _ = budgeted.value(&[0.0, 0.0]);
/// let _ = budgeted.value(&[1.0, 1.0]);
/// assert_eq!(budgeted.remaining(), 1);
/// assert_eq!(budgeted.grant(5), 1);   // truncated, not overrun
/// let _ = budgeted.value(&[0.5, 0.5]);
/// assert!(budgeted.is_exhausted());
/// assert_eq!(budgeted.overruns(), 0);
/// assert_eq!(counting.calls(), 3);    // outer accounting still exact
/// ```
#[derive(Debug)]
pub struct BudgetedOracle<'a, T: LimitState + ?Sized> {
    inner: &'a T,
    budget: u64,
    used: AtomicU64,
}

impl<'a, T: LimitState + ?Sized> BudgetedOracle<'a, T> {
    /// Wraps `inner` with a hard budget of `budget` simulator calls.
    pub fn new(inner: &'a T, budget: u64) -> Self {
        BudgetedOracle {
            inner,
            budget,
            used: AtomicU64::new(0),
        }
    }

    /// The total call budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Calls consumed so far.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Calls still affordable (0 when exhausted).
    pub fn remaining(&self) -> u64 {
        self.budget.saturating_sub(self.used())
    }

    /// Whether the budget is fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Synonym for [`BudgetedOracle::used`] named for the checkpoint
    /// payload: the spent-call count a durable checkpoint must persist so a
    /// resumed run keeps honoring the same budget.
    pub fn spent(&self) -> u64 {
        self.used()
    }

    /// Restores a spent-call count saved by a previous process (via
    /// [`BudgetedOracle::spent`]) into this — freshly constructed — oracle,
    /// so the crash boundary cannot reset the meter: across the original
    /// and resumed runs together, at most `budget` calls are ever made.
    ///
    /// Overwrites the counter; call it before any call is spent here.
    pub fn restore_spent(&self, spent: u64) {
        self.used.store(spent, Ordering::Relaxed);
    }

    /// Truncates a planned chunk of `want` calls to what the remaining
    /// budget affords. Returns the affordable count (possibly 0) without
    /// consuming anything; consumption happens as calls are made.
    pub fn grant(&self, want: usize) -> usize {
        budget_fault(&self.used, self.budget);
        let granted = (want as u64).min(self.remaining()) as usize;
        record_grant("grant", want, granted, self.used(), self.budget);
        granted
    }

    /// Atomically reserves up to `want` calls, *consuming* them from the
    /// budget immediately, and returns how many were actually granted.
    ///
    /// Unlike [`BudgetedOracle::grant`] — which only inspects the remaining
    /// budget and relies on a single consumer spending it afterwards —
    /// `reserve` pre-charges `used`, so concurrent reservations can never
    /// jointly exceed the budget. Parallel batch evaluation (see
    /// [`batch_values_budgeted`](crate::batch_values_budgeted)) reserves
    /// each chunk up front and then spends the reserved calls with
    /// [`BudgetedOracle::value_prepaid`].
    pub fn reserve(&self, want: usize) -> usize {
        budget_fault(&self.used, self.budget);
        let want = want as u64;
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let granted = want.min(self.budget.saturating_sub(cur));
            if granted == 0 {
                record_grant("reserve", want as usize, 0, cur, self.budget);
                return 0;
            }
            match self.used.compare_exchange(
                cur,
                cur + granted,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    record_grant(
                        "reserve",
                        want as usize,
                        granted as usize,
                        cur + granted,
                        self.budget,
                    );
                    return granted as usize;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Evaluates the wrapped limit state without charging the budget; the
    /// call must have been paid for via [`BudgetedOracle::reserve`].
    pub(crate) fn value_prepaid(&self, x: &[f64]) -> f64 {
        self.eval_value(x)
    }

    /// Decides the injected fault (if any) for one oracle evaluation and
    /// handles the terminal kind in place: [`faults::FaultKind::Kill`]
    /// flushes telemetry and exits the process with
    /// [`faults::KILL_EXIT_CODE`] — a deterministic stand-in for `kill -9`
    /// at an exact call index, used by the chaos resume tests.
    fn oracle_fault(&self) -> Option<faults::FaultKind> {
        if !faults::active() {
            return None;
        }
        let fault = faults::check(faults::Site::OracleCall)?;
        record_fault(fault, faults::Site::OracleCall);
        if fault == faults::FaultKind::Kill {
            tele::flush();
            std::process::exit(faults::KILL_EXIT_CODE);
        }
        Some(fault)
    }

    /// One guarded simulator evaluation: applies any injected oracle fault,
    /// and converts a panicking simulator (injected or genuine) into a NaN
    /// response — the same sanitized path a non-finite simulator value
    /// takes — instead of unwinding through the training loop. The call has
    /// already been charged to the budget by the caller.
    fn eval_value(&self, x: &[f64]) -> f64 {
        let fault = self.oracle_fault();
        match fault {
            Some(faults::FaultKind::OracleNan) => return f64::NAN,
            Some(faults::FaultKind::OracleInf) => return f64::INFINITY,
            _ => {}
        }
        let inject_panic = matches!(fault, Some(faults::FaultKind::OraclePanic));
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected fault: oracle panic (nofis-faults)");
            }
            self.inner.value(x)
        }));
        match result {
            Ok(v) => v,
            Err(_) => {
                tele::event(tele::Level::Warn, "oracle.panic_caught")
                    .field("op", "value")
                    .emit();
                f64::NAN
            }
        }
    }

    /// Gradient-carrying twin of [`BudgetedOracle::eval_value`].
    fn eval_value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let fault = self.oracle_fault();
        match fault {
            Some(faults::FaultKind::OracleNan) => return (f64::NAN, vec![f64::NAN; x.len()]),
            Some(faults::FaultKind::OracleInf) => {
                return (f64::INFINITY, vec![f64::INFINITY; x.len()])
            }
            _ => {}
        }
        let inject_panic = matches!(fault, Some(faults::FaultKind::OraclePanic));
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected fault: oracle panic (nofis-faults)");
            }
            self.inner.value_grad(x)
        }));
        match result {
            Ok(vg) => vg,
            Err(_) => {
                tele::event(tele::Level::Warn, "oracle.panic_caught")
                    .field("op", "value_grad")
                    .emit();
                (f64::NAN, vec![f64::NAN; x.len()])
            }
        }
    }

    /// Calls made *beyond* the budget (0 when every consumer planned its
    /// chunks with [`BudgetedOracle::grant`]).
    pub fn overruns(&self) -> u64 {
        self.used().saturating_sub(self.budget)
    }

    /// Borrows the wrapped limit state without counting.
    pub fn inner(&self) -> &'a T {
        self.inner
    }
}

impl<T: LimitState + ?Sized> LimitState for BudgetedOracle<'_, T> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn value(&self, x: &[f64]) -> f64 {
        self.used.fetch_add(1, Ordering::Relaxed);
        self.eval_value(x)
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        // One simulation, like CountingOracle: sensitivities ride along.
        self.used.fetch_add(1, Ordering::Relaxed);
        self.eval_value_grad(x)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountingOracle;

    struct Linear;
    impl LimitState for Linear {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            x[0] - x[1]
        }
        fn name(&self) -> &str {
            "linear"
        }
    }

    #[test]
    fn grant_truncates_to_remaining() {
        let b = BudgetedOracle::new(&Linear, 10);
        assert_eq!(b.grant(4), 4);
        for _ in 0..7 {
            let _ = b.value(&[0.0, 0.0]);
        }
        assert_eq!(b.remaining(), 3);
        assert_eq!(b.grant(100), 3);
        assert_eq!(b.grant(2), 2);
        assert!(!b.is_exhausted());
    }

    #[test]
    fn counts_value_and_grad_as_one_each() {
        let b = BudgetedOracle::new(&Linear, 5);
        let _ = b.value(&[1.0, 0.0]);
        let _ = b.value_grad(&[1.0, 0.0]);
        assert_eq!(b.used(), 2);
        assert_eq!(b.name(), "linear");
        assert_eq!(b.dim(), 2);
    }

    #[test]
    fn overruns_are_recorded_not_panicked() {
        let b = BudgetedOracle::new(&Linear, 1);
        let _ = b.value(&[0.0, 0.0]);
        assert!(b.is_exhausted());
        // A misbehaving consumer that skipped grant() still gets an answer,
        // but the violation is visible.
        let v = b.value(&[2.0, 0.0]);
        assert_eq!(v, 2.0);
        assert_eq!(b.overruns(), 1);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn restore_spent_survives_the_crash_boundary() {
        // Simulate a crash/resume: 7 calls in "process one", its spent
        // count checkpointed, then a fresh oracle in "process two" restores
        // it — the two runs together can never exceed the budget.
        let first = BudgetedOracle::new(&Linear, 10);
        for _ in 0..first.grant(7) {
            let _ = first.value(&[0.0, 0.0]);
        }
        let spent = first.spent();
        assert_eq!(spent, 7);

        let resumed = BudgetedOracle::new(&Linear, 10);
        resumed.restore_spent(spent);
        assert_eq!(resumed.used(), 7);
        assert_eq!(resumed.remaining(), 3);
        assert_eq!(resumed.grant(100), 3);
        for _ in 0..3 {
            let _ = resumed.value(&[0.0, 0.0]);
        }
        assert!(resumed.is_exhausted());
        assert_eq!(resumed.grant(1), 0);
        assert_eq!(resumed.overruns(), 0);
    }

    #[test]
    fn panicking_simulator_degrades_to_nan() {
        struct Grenade;
        impl LimitState for Grenade {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, x: &[f64]) -> f64 {
                if x[0] > 0.5 {
                    panic!("simulator crashed");
                }
                x[0]
            }
        }
        let b = BudgetedOracle::new(&Grenade, 10);
        assert_eq!(b.value(&[0.0, 0.0]), 0.0);
        // The panic is contained and surfaces as the sanitized NaN path;
        // the call still counts against the budget.
        assert!(b.value(&[1.0, 0.0]).is_nan());
        let (v, g) = b.value_grad(&[1.0, 0.0]);
        assert!(v.is_nan() && g.iter().all(|gi| gi.is_nan()));
        assert_eq!(b.used(), 3);
    }

    #[test]
    fn stacks_on_counting_oracle() {
        let counting = CountingOracle::new(&Linear);
        let budgeted = BudgetedOracle::new(&counting, 100);
        for _ in 0..12 {
            let _ = budgeted.value(&[0.0, 0.0]);
        }
        assert_eq!(budgeted.used(), 12);
        assert_eq!(counting.calls(), 12);
    }
}
