//! Importance-weight diagnostics.
//!
//! An IS estimate can be silently catastrophic: if the proposal misses a
//! region of `Ω` carrying most of the `p`-mass, the estimator looks
//! low-variance while being badly biased-in-practice. These diagnostics
//! catch the detectable half of that failure mode — heavy right tails in
//! the realized weights.

/// Summary statistics of a set of importance weights.
///
/// # Example
///
/// ```
/// use nofis_prob::WeightDiagnostics;
///
/// // Well-behaved weights.
/// let d = WeightDiagnostics::from_log_weights(&[0.0, 0.1, -0.1, 0.05]);
/// assert!(d.max_weight_share < 0.5);
/// assert!(d.effective_sample_size > 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightDiagnostics {
    /// Number of weights.
    pub count: usize,
    /// Kish effective sample size `(Σw)² / Σw²`.
    pub effective_sample_size: f64,
    /// Largest single weight's share of the total (1.0 = one sample
    /// dominates completely).
    pub max_weight_share: f64,
    /// Hill estimator of the weight tail index over the top 20% order
    /// statistics; values **below ~2** indicate infinite-variance weights
    /// (the IS estimate cannot be trusted), `None` when fewer than 10
    /// weights are available.
    pub hill_tail_index: Option<f64>,
}

impl WeightDiagnostics {
    /// Computes diagnostics from log-weights (numerically stable for the
    /// extreme ratios rare-event IS produces).
    ///
    /// # Panics
    ///
    /// Panics if `log_weights` is empty or contains NaN.
    pub fn from_log_weights(log_weights: &[f64]) -> Self {
        assert!(!log_weights.is_empty(), "need at least one weight");
        assert!(
            log_weights.iter().all(|w| !w.is_nan()),
            "NaN log-weight encountered"
        );
        let max_lw = log_weights
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let scaled: Vec<f64> = log_weights.iter().map(|lw| (lw - max_lw).exp()).collect();
        let sum: f64 = scaled.iter().sum();
        let sum_sq: f64 = scaled.iter().map(|w| w * w).sum();
        let ess = if sum_sq > 0.0 {
            sum * sum / sum_sq
        } else {
            0.0
        };
        let max_share = scaled.iter().copied().fold(0.0_f64, f64::max) / sum.max(1e-300);

        let hill = if log_weights.len() >= 10 {
            let mut sorted = log_weights.to_vec();
            sorted.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
            let k = (sorted.len() / 5).max(2);
            let threshold = sorted[k];
            let mean_excess: f64 =
                sorted[..k].iter().map(|lw| lw - threshold).sum::<f64>() / k as f64;
            if mean_excess > 0.0 {
                Some(1.0 / mean_excess)
            } else {
                // All top weights equal: effectively bounded tail.
                Some(f64::INFINITY)
            }
        } else {
            None
        };

        WeightDiagnostics {
            count: log_weights.len(),
            effective_sample_size: ess,
            max_weight_share: max_share,
            hill_tail_index: hill,
        }
    }

    /// A conservative health verdict: `true` when the weights show no
    /// infinite-variance symptoms — no single weight above 50% of the
    /// mass, and a tail index ≥ 2 when estimable. An estimated index in
    /// `[1, 2)` is borderline (finite mean, possibly infinite variance) and
    /// the Hill estimator is noisy at typical sample sizes, so the realized
    /// effective sample size adjudicates: at least 5% of nominal passes.
    /// An index below 1 (infinite mean) always fails.
    pub fn looks_healthy(&self) -> bool {
        if self.max_weight_share >= 0.5 {
            return false;
        }
        match self.hill_tail_index {
            None => true,
            Some(a) if a >= 2.0 => true,
            Some(a) if a >= 1.0 => self.effective_sample_size >= 0.05 * self.count as f64,
            Some(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_are_healthy() {
        let lw = vec![0.0; 100];
        let d = WeightDiagnostics::from_log_weights(&lw);
        assert_eq!(d.count, 100);
        assert!((d.effective_sample_size - 100.0).abs() < 1e-9);
        assert!((d.max_weight_share - 0.01).abs() < 1e-9);
        assert!(d.looks_healthy());
    }

    #[test]
    fn single_dominant_weight_is_flagged() {
        let mut lw = vec![0.0; 50];
        lw[0] = 15.0; // one weight e^15 times the rest
        let d = WeightDiagnostics::from_log_weights(&lw);
        assert!(d.max_weight_share > 0.99);
        assert!(d.effective_sample_size < 1.5);
        assert!(!d.looks_healthy());
    }

    #[test]
    fn heavy_tail_has_small_hill_index() {
        // log-weights ~ Exp(1/alpha) ⇒ weights Pareto with index alpha.
        let alpha = 0.8; // infinite variance
        let lw: Vec<f64> = (1..=500)
            .map(|k| {
                let u = k as f64 / 501.0;
                -(1.0 - u).ln() / alpha
            })
            .collect();
        let d = WeightDiagnostics::from_log_weights(&lw);
        let hill = d.hill_tail_index.unwrap();
        assert!((hill - alpha).abs() < 0.25, "hill = {hill}");
        assert!(!d.looks_healthy());
    }

    #[test]
    fn light_tail_has_large_hill_index() {
        let alpha = 5.0; // comfortably finite variance
        let lw: Vec<f64> = (1..=500)
            .map(|k| {
                let u = k as f64 / 501.0;
                -(1.0 - u).ln() / alpha
            })
            .collect();
        let d = WeightDiagnostics::from_log_weights(&lw);
        assert!(d.hill_tail_index.unwrap() > 3.0);
    }

    #[test]
    fn tiny_samples_skip_hill() {
        let d = WeightDiagnostics::from_log_weights(&[0.0, 1.0, 2.0]);
        assert!(d.hill_tail_index.is_none());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        let _ = WeightDiagnostics::from_log_weights(&[]);
    }
}
