//! Gaussian mixture proposals.
//!
//! Mixture importance sampling (Kanj, Joshi, Nassif — DAC 2006, the
//! paper's reference [10]) is the classical circuit-yield proposal family:
//! a mixture of the base distribution with Gaussians centered on observed
//! or suspected failure points. The mixture keeps the base as a component,
//! which bounds the importance weights by the inverse mixture weight and
//! guarantees finite variance.

use crate::{Proposal, LN_2PI};
use rand::{Rng, RngCore};
use rand_distr::StandardNormal;

/// A mixture of isotropic Gaussians over `R^D` with explicit weights.
///
/// # Example
///
/// ```
/// use nofis_prob::{GaussianMixture, Proposal};
/// use rand::SeedableRng;
///
/// // Base-plus-shifted-mode mixture for a known failure region near x=4.
/// let q = GaussianMixture::new(vec![
///     (0.5, vec![0.0, 0.0], 1.0),
///     (0.5, vec![4.0, 0.0], 0.7),
/// ]).expect("valid mixture");
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let x = q.sample(&mut rng);
/// assert_eq!(x.len(), 2);
/// assert!(q.log_density(&x).is_finite());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture {
    /// `(weight, mean, std)` per component; weights sum to 1.
    components: Vec<(f64, Vec<f64>, f64)>,
    dim: usize,
}

impl GaussianMixture {
    /// Builds a mixture from `(weight, mean, std)` components.
    ///
    /// # Errors
    ///
    /// Returns a message if the component list is empty, dimensions are
    /// inconsistent, any weight/std is non-positive, or the weights do not
    /// sum to 1 (within 1e-9; they are re-normalized when close).
    pub fn new(components: Vec<(f64, Vec<f64>, f64)>) -> Result<Self, String> {
        if components.is_empty() {
            return Err("mixture needs at least one component".into());
        }
        let dim = components[0].1.len();
        if dim == 0 {
            return Err("mixture components must be non-empty vectors".into());
        }
        for (w, mean, std) in &components {
            if mean.len() != dim {
                return Err("inconsistent component dimensions".into());
            }
            if *w <= 0.0 || w.is_nan() || *std <= 0.0 || std.is_nan() {
                return Err("weights and stds must be positive".into());
            }
        }
        let total: f64 = components.iter().map(|(w, _, _)| w).sum();
        if (total - 1.0).abs() > 1e-9 && (total - 1.0).abs() > 1e-3 {
            return Err(format!("weights sum to {total}, expected 1"));
        }
        let components = components
            .into_iter()
            .map(|(w, m, s)| (w / total, m, s))
            .collect();
        Ok(GaussianMixture { components, dim })
    }

    /// The classic mixture-IS construction: keep the base `N(0, I)` with
    /// weight `base_weight` and spread the rest uniformly over Gaussians
    /// centered at `centers` with standard deviation `std`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GaussianMixture::new`]; additionally requires
    /// `base_weight` in `(0, 1)` and a non-empty center list.
    pub fn base_plus_centers(
        dim: usize,
        base_weight: f64,
        centers: &[Vec<f64>],
        std: f64,
    ) -> Result<Self, String> {
        if !(base_weight > 0.0 && base_weight < 1.0) {
            return Err("base_weight must be in (0, 1)".into());
        }
        if centers.is_empty() {
            return Err("need at least one failure center".into());
        }
        let w = (1.0 - base_weight) / centers.len() as f64;
        let mut components = vec![(base_weight, vec![0.0; dim], 1.0)];
        for c in centers {
            components.push((w, c.clone(), std));
        }
        GaussianMixture::new(components)
    }

    /// Number of components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }
}

impl Proposal for GaussianMixture {
    fn dim(&self) -> usize {
        self.dim
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        let mut shim = RngShim(rng);
        let u: f64 = shim.gen();
        let mut acc = 0.0;
        let mut chosen = &self.components[self.components.len() - 1];
        for comp in &self.components {
            acc += comp.0;
            if u <= acc {
                chosen = comp;
                break;
            }
        }
        let (_, mean, std) = chosen;
        mean.iter()
            .map(|&m| {
                let z: f64 = shim.sample(StandardNormal);
                m + std * z
            })
            .collect()
    }

    fn log_density(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "dimension mismatch in mixture density");
        // Log-sum-exp over components.
        let logs: Vec<f64> = self
            .components
            .iter()
            .map(|(w, mean, std)| {
                let sq: f64 = x
                    .iter()
                    .zip(mean)
                    .map(|(xi, mi)| {
                        let z = (xi - mi) / std;
                        z * z
                    })
                    .sum();
                w.ln() - 0.5 * self.dim as f64 * LN_2PI - self.dim as f64 * std.ln() - 0.5 * sq
            })
            .collect();
        let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        max + logs.iter().map(|l| (l - max).exp()).sum::<f64>().ln()
    }
}

struct RngShim<'a>(&'a mut dyn RngCore);

impl RngCore for RngShim<'_> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{importance_sampling, normal_cdf, LimitState, StandardGaussian};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_component_matches_standard_gaussian() {
        let q = GaussianMixture::new(vec![(1.0, vec![0.0, 0.0], 1.0)]).unwrap();
        let p = StandardGaussian::new(2);
        for x in [[0.0, 0.0], [1.0, -2.0], [3.0, 0.5]] {
            assert!((Proposal::log_density(&q, &x) - p.log_density(&x)).abs() < 1e-12);
        }
    }

    #[test]
    fn density_integrates_to_one_on_grid() {
        let q = GaussianMixture::new(vec![
            (0.3, vec![-2.0, 0.0], 0.8),
            (0.7, vec![2.0, 1.0], 1.2),
        ])
        .unwrap();
        let res = 121;
        let extent = 9.0;
        let step = 2.0 * extent / (res - 1) as f64;
        let mut mass = 0.0;
        for iy in 0..res {
            for ix in 0..res {
                let x = -extent + ix as f64 * step;
                let y = -extent + iy as f64 * step;
                mass += Proposal::log_density(&q, &[x, y]).exp();
            }
        }
        mass *= step * step;
        assert!((mass - 1.0).abs() < 1e-3, "mass = {mass}");
    }

    #[test]
    fn mixture_is_estimates_two_mode_event_well() {
        // Two symmetric failure disks — exactly what single-Gaussian
        // Adapt-IS struggles with and mixture IS was designed for.
        struct TwoDisks;
        impl LimitState for TwoDisks {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, x: &[f64]) -> f64 {
                let d1 = (x[0] - 3.5).powi(2) + x[1].powi(2);
                let d2 = (x[0] + 3.5).powi(2) + x[1].powi(2);
                d1.min(d2) - 1.0
            }
        }
        let q = GaussianMixture::base_plus_centers(2, 0.2, &[vec![3.5, 0.0], vec![-3.5, 0.0]], 0.7)
            .unwrap();
        let p = StandardGaussian::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        let r = importance_sampling(&TwoDisks, 0.0, &q, &p, 20_000, &mut rng);
        // Golden 5.67e-3 by 2e7-sample MC (the Bessel factor I₀(3.5)
        // makes the naive density-times-area guess 5× too small).
        assert!(
            (r.estimate / 5.67e-3 - 1.0).abs() < 0.25,
            "p = {}",
            r.estimate
        );
        assert!(r.effective_sample_size > 500.0);
    }

    #[test]
    fn sampling_respects_weights() {
        let q = GaussianMixture::new(vec![(0.9, vec![-5.0], 0.5), (0.1, vec![5.0], 0.5)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 5_000;
        let right = (0..n)
            .filter(|_| Proposal::sample(&q, &mut rng)[0] > 0.0)
            .count();
        let frac = right as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn rejects_invalid_mixtures() {
        assert!(GaussianMixture::new(vec![]).is_err());
        assert!(GaussianMixture::new(vec![(1.0, vec![], 1.0)]).is_err());
        assert!(
            GaussianMixture::new(vec![(0.5, vec![0.0], 1.0), (0.5, vec![0.0, 0.0], 1.0)]).is_err()
        );
        assert!(GaussianMixture::new(vec![(-1.0, vec![0.0], 1.0)]).is_err());
        assert!(GaussianMixture::new(vec![(0.2, vec![0.0], 1.0)]).is_err());
        assert!(GaussianMixture::base_plus_centers(2, 1.5, &[vec![0.0, 0.0]], 1.0).is_err());
        assert!(GaussianMixture::base_plus_centers(2, 0.5, &[], 1.0).is_err());
    }

    #[test]
    fn bounded_weights_with_base_component() {
        // With the base kept at weight w0, importance weights are bounded
        // by 1/w0 — check empirically.
        let q = GaussianMixture::base_plus_centers(1, 0.25, &[vec![4.0]], 1.0).unwrap();
        let p = StandardGaussian::new(1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2_000 {
            let x = Proposal::sample(&q, &mut rng);
            let w = (p.log_density(&x) - Proposal::log_density(&q, &x)).exp();
            assert!(w <= 4.0 + 1e-9, "weight {w} exceeds 1/base_weight");
        }
        let _ = normal_cdf(0.0); // keep import used
    }
}
