//! Chunked parallel batch evaluation of limit-state oracles.
//!
//! Oracle calls `g(x)` dominate NOFIS wall-clock, and batches of samples
//! are embarrassingly parallel. This module splits a batch into fixed
//! [`ORACLE_CHUNK`]-sized chunks (boundaries depend only on the batch size,
//! never the thread count), evaluates chunks across a
//! [`ThreadPool`](nofis_parallel::ThreadPool), and reassembles results in
//! chunk order — so the output `Vec` is bitwise identical to a serial
//! sample-by-sample loop for any thread count.
//!
//! For budget-metered oracles, [`batch_values_budgeted`] reserves each
//! chunk's calls up front on the calling thread (in chunk order, via
//! [`BudgetedOracle::reserve`]) before any worker runs, so the set of
//! evaluated samples is a deterministic prefix of the batch and the call
//! count is exact: never an overrun, even when `max_calls` is not divisible
//! by the chunk size.

use crate::{BudgetedOracle, LimitState};
use nofis_parallel::chunks::{chunk_count, chunk_range};
use nofis_parallel::ThreadPool;

/// Samples per parallel oracle chunk. Fixed so chunk boundaries are a
/// function of the batch size only — the determinism contract's first rule.
pub const ORACLE_CHUNK: usize = 32;

/// Evaluates `g(x)` for every sample in `xs` on the process-wide
/// [`nofis_parallel::global`] pool, returning values in sample order.
///
/// Every sample costs exactly one oracle call, the same as a serial loop;
/// wrappers like [`CountingOracle`](crate::CountingOracle) count correctly
/// because their counters are atomic.
pub fn batch_values(limit_state: &(impl LimitState + ?Sized + Sync), xs: &[Vec<f64>]) -> Vec<f64> {
    batch_values_with(limit_state, xs, nofis_parallel::global())
}

/// [`batch_values`] on an explicit pool.
pub fn batch_values_with(
    limit_state: &(impl LimitState + ?Sized + Sync),
    xs: &[Vec<f64>],
    pool: &ThreadPool,
) -> Vec<f64> {
    let n = xs.len();
    let per_chunk: Vec<Vec<f64>> = pool.map_chunks(chunk_count(n, ORACLE_CHUNK), |ci| {
        let (start, end) = chunk_range(n, ORACLE_CHUNK, ci);
        xs[start..end]
            .iter()
            .map(|x| limit_state.value(x))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Budget-exact parallel batch evaluation.
///
/// Reserves each chunk's calls up front — in chunk order, on the calling
/// thread — so the evaluated samples are always the longest affordable
/// *prefix* of `xs`, regardless of scheduling. Returns that prefix's values
/// (`result.len() <= xs.len()`, shorter exactly when the budget ran out).
/// The oracle's `used` count increases by exactly `result.len()` and never
/// exceeds the budget.
pub fn batch_values_budgeted<T: LimitState + ?Sized + Sync>(
    budgeted: &BudgetedOracle<'_, T>,
    xs: &[Vec<f64>],
    pool: &ThreadPool,
) -> Vec<f64> {
    let n = xs.len();
    let n_chunks = chunk_count(n, ORACLE_CHUNK);
    // Serial, chunk-ordered reservation: under a tight budget the granted
    // counts form a deterministic prefix (full chunks, then one partial,
    // then zeros) no matter how many threads later run the evaluation.
    let granted: Vec<usize> = (0..n_chunks)
        .map(|ci| {
            let (start, end) = chunk_range(n, ORACLE_CHUNK, ci);
            budgeted.reserve(end - start)
        })
        .collect();
    let per_chunk: Vec<Vec<f64>> = pool.map_chunks(n_chunks, |ci| {
        let (start, _) = chunk_range(n, ORACLE_CHUNK, ci);
        xs[start..start + granted[ci]]
            .iter()
            .map(|x| budgeted.value_prepaid(x))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountingOracle;

    struct Norm2;
    impl LimitState for Norm2 {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            x[0] * x[0] + x[1] * x[1] - 1.0
        }
    }

    fn samples(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![(i as f64) * 0.01, 1.0 - (i as f64) * 0.005])
            .collect()
    }

    #[test]
    fn batch_matches_serial_loop_bitwise() {
        let xs = samples(103); // not divisible by ORACLE_CHUNK
        let serial: Vec<f64> = xs.iter().map(|x| Norm2.value(x)).collect();
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let par = batch_values_with(&Norm2, &xs, &pool);
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn batch_counts_every_call() {
        let xs = samples(77);
        let counting = CountingOracle::new(&Norm2);
        let pool = ThreadPool::new(4);
        let vals = batch_values_with(&counting, &xs, &pool);
        assert_eq!(vals.len(), 77);
        assert_eq!(counting.calls(), 77);
    }

    #[test]
    fn budgeted_batch_evaluates_exact_prefix() {
        let xs = samples(100);
        let counting = CountingOracle::new(&Norm2);
        let budgeted = BudgetedOracle::new(&counting, 45); // not divisible by 32
        let pool = ThreadPool::new(4);
        let vals = batch_values_budgeted(&budgeted, &xs, &pool);
        assert_eq!(vals.len(), 45);
        assert_eq!(budgeted.used(), 45);
        assert_eq!(budgeted.overruns(), 0);
        assert_eq!(counting.calls(), 45);
        // The prefix is the same one a serial loop would evaluate.
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(v.to_bits(), Norm2.value(&xs[i]).to_bits());
        }
        // A second batch finds the budget exhausted.
        assert!(batch_values_budgeted(&budgeted, &xs, &pool).is_empty());
    }

    #[test]
    fn budgeted_batch_with_ample_budget_covers_all() {
        let xs = samples(64);
        let budgeted = BudgetedOracle::new(&Norm2, 1000);
        let pool = ThreadPool::new(2);
        let vals = batch_values_budgeted(&budgeted, &xs, &pool);
        assert_eq!(vals.len(), 64);
        assert_eq!(budgeted.remaining(), 1000 - 64);
    }

    #[test]
    fn empty_batch_is_free() {
        let budgeted = BudgetedOracle::new(&Norm2, 10);
        let pool = ThreadPool::new(2);
        assert!(batch_values_budgeted(&budgeted, &[], &pool).is_empty());
        assert_eq!(budgeted.used(), 0);
        assert!(batch_values(&Norm2, &[]).is_empty());
    }
}
