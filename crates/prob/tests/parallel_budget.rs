//! Budget accounting under parallel oracle evaluation.
//!
//! `BudgetedOracle` promises exact call accounting: a budget of `B` calls
//! means at most `B` simulator invocations, ever, no matter how many
//! threads are spending them. These tests drive the parallel batch
//! evaluator with budgets that are deliberately not multiples of the
//! 32-sample chunk size, across several pool widths, and assert the counts
//! are exact — against both the budget meter and an independent
//! `CountingOracle` underneath it.

use nofis_parallel::ThreadPool;
use nofis_prob::{
    batch_values_budgeted, importance_sampling_detailed_with_pool, BudgetedOracle, CountingOracle,
    LimitState, StandardGaussian, ORACLE_CHUNK,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Sphere;
impl LimitState for Sphere {
    fn dim(&self) -> usize {
        2
    }
    fn value(&self, x: &[f64]) -> f64 {
        x[0] * x[0] + x[1] * x[1] - 4.0
    }
}

fn samples(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![(i % 17) as f64 * 0.2, (i % 11) as f64 * 0.3])
        .collect()
}

#[test]
fn indivisible_budget_never_overruns_under_parallel_eval() {
    // 103 = 3 full chunks of 32 + a ragged 7; batch of 256 wants more.
    assert_ne!(103 % ORACLE_CHUNK, 0);
    for threads in [1, 2, 8] {
        let xs = samples(256);
        let counting = CountingOracle::new(&Sphere);
        let budgeted = BudgetedOracle::new(&counting, 103);
        let pool = ThreadPool::new(threads);

        let vals = batch_values_budgeted(&budgeted, &xs, &pool);
        assert_eq!(vals.len(), 103, "threads={threads}");
        assert_eq!(budgeted.used(), 103, "threads={threads}");
        assert_eq!(budgeted.overruns(), 0, "threads={threads}");
        assert_eq!(budgeted.remaining(), 0, "threads={threads}");
        assert_eq!(counting.calls(), 103, "threads={threads}");
        // The evaluated samples are exactly the batch prefix, in order.
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(v.to_bits(), Sphere.value(&xs[i]).to_bits());
        }
    }
}

#[test]
fn budget_spans_multiple_batches_exactly() {
    let counting = CountingOracle::new(&Sphere);
    let budgeted = BudgetedOracle::new(&counting, 150);
    let pool = ThreadPool::new(4);
    // 100 + 50(truncated from 100) + 0: the budget is consumed exactly.
    assert_eq!(
        batch_values_budgeted(&budgeted, &samples(100), &pool).len(),
        100
    );
    assert_eq!(
        batch_values_budgeted(&budgeted, &samples(100), &pool).len(),
        50
    );
    assert!(batch_values_budgeted(&budgeted, &samples(100), &pool).is_empty());
    assert_eq!(counting.calls(), 150);
    assert_eq!(budgeted.overruns(), 0);
}

#[test]
fn concurrent_reservations_cannot_jointly_exceed_the_budget() {
    // Hammer reserve() from many threads at once; the grants must sum to
    // exactly the budget no matter how the race interleaves.
    let budgeted = BudgetedOracle::new(&Sphere, 1000);
    let pool = ThreadPool::new(8);
    let granted_total = AtomicUsize::new(0);
    pool.run_chunks(64, |_| {
        let got = budgeted.reserve(37);
        granted_total.fetch_add(got, Ordering::Relaxed);
    });
    // 64 * 37 = 2368 wanted, but only 1000 affordable.
    assert_eq!(granted_total.load(Ordering::Relaxed), 1000);
    assert_eq!(budgeted.used(), 1000);
    assert_eq!(budgeted.overruns(), 0);
    assert_eq!(budgeted.reserve(1), 0, "budget is fully reserved");
}

#[test]
fn grant_plus_parallel_importance_sampling_is_exact() {
    // The estimator protocol: grant n up front, then spend exactly n calls
    // inside the (parallel) sampler — the meter must agree to the call.
    let counting = CountingOracle::new(&Sphere);
    let budgeted = BudgetedOracle::new(&counting, 5000);
    let p = StandardGaussian::new(2);
    for threads in [1, 2, 8] {
        let pool = ThreadPool::new(threads);
        let mut rng = StdRng::seed_from_u64(3);
        let n = budgeted.grant(777);
        assert_eq!(n, 777);
        let before = budgeted.used();
        let (result, _) =
            importance_sampling_detailed_with_pool(&budgeted, 0.0, &p, &p, n, &mut rng, &pool);
        assert!(result.estimate.is_finite());
        assert_eq!(budgeted.used() - before, 777, "threads={threads}");
    }
    assert_eq!(counting.calls(), 3 * 777);
    assert_eq!(budgeted.overruns(), 0);
}
