//! Exhaustive bitwise validation of the blocked SIMD matmul microkernel
//! against the scalar reference, plus FD-checked gradients through the
//! transpose-free backward kernels.
//!
//! # Accumulation-order contract
//!
//! Every kernel in `nofis_parallel::kernels` — scalar reference, blocked
//! microkernel, and the `a·bᵀ` / `aᵀ·b` backward variants — computes each
//! output element as a sum over the reduction index `kk` in **ascending
//! order**, starting from `0.0`, with exactly one multiplication and one
//! addition per term and **no FMA contraction**, skipping terms whose
//! `a`-side factor is exactly `0.0` (load-bearing: `0.0 * inf` would
//! NaN-poison outputs that masking relies on). The blocked microkernel
//! changes only *which register* holds each running sum (a hand-unrolled
//! 4-lane column tile, refilled per `KC`-deep reduction panel), never the
//! order of the additions — so it is bitwise identical to the scalar
//! triple loop, which is what these tests pin: any reassociation (e.g.
//! pairwise summation, FMA, lane-crossing horizontal adds) fails the
//! sweep immediately.
//!
//! The sweep covers all shapes `M, N, K ≤ 9` (every remainder class of
//! the 4-wide column tiling and tiny reductions) plus the blocking-edge
//! shapes 63/64/65 around the row-block and lane boundaries, and shapes
//! crossing the `KC = 512` reduction-panel boundary. Parallel runs are
//! checked at 1, 2, and 4 threads — the determinism contract requires
//! the same bits at any thread count.

use nofis_linalg::Matrix;
use nofis_parallel::kernels::{
    matmul_at_into, matmul_bt_into, matmul_into, matmul_scalar_into, matmul_serial_into,
    PAR_FLOPS_THRESHOLD,
};
use nofis_parallel::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fill(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-2.0..2.0)).collect()
}

/// Sprinkles exact zeros so the zero-skip path runs inside the sweep.
fn fill_sparse(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len)
        .map(|_| {
            if rng.gen_range(0..4) == 0 {
                0.0
            } else {
                rng.gen_range(-2.0..2.0)
            }
        })
        .collect()
}

fn assert_bits(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} drifted ({x:e} vs {y:e})"
        );
    }
}

/// All (m, k, n) the sweeps cover: the exhaustive ≤ 9 cube, the blocking
/// edges, and reduction depths crossing the KC panel boundary.
fn sweep_shapes() -> Vec<(usize, usize, usize)> {
    let mut shapes = Vec::new();
    for m in 1..=9 {
        for k in 1..=9 {
            for n in 1..=9 {
                shapes.push((m, k, n));
            }
        }
    }
    for &e in &[63usize, 64, 65] {
        shapes.push((e, 7, 5));
        shapes.push((5, e, 7));
        shapes.push((7, 5, e));
        shapes.push((e, e, 3));
        shapes.push((3, e, e));
    }
    // Cross the KC = 512 reduction-panel boundary.
    shapes.push((4, 511, 9));
    shapes.push((4, 512, 9));
    shapes.push((4, 513, 9));
    shapes.push((11, 600, 7));
    shapes
}

#[test]
fn blocked_kernel_sweep_matches_scalar_reference_bitwise() {
    let mut rng = StdRng::seed_from_u64(2024);
    let pools: Vec<ThreadPool> = [1usize, 2, 4].iter().map(|&t| ThreadPool::new(t)).collect();
    for (m, k, n) in sweep_shapes() {
        let a = fill_sparse(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let mut want = vec![0.0; m * n];
        matmul_scalar_into(&a, &b, &mut want, m, k, n);
        let mut got = vec![f64::NAN; m * n];
        matmul_serial_into(&a, &b, &mut got, m, k, n);
        assert_bits(&got, &want, &format!("serial ({m},{k},{n})"));
        for pool in &pools {
            let mut got = vec![f64::NAN; m * n];
            matmul_into(pool, &a, &b, &mut got, m, k, n);
            assert_bits(
                &got,
                &want,
                &format!("parallel@{} ({m},{k},{n})", pool.threads()),
            );
        }
    }
}

#[test]
fn backward_kernels_sweep_matches_transpose_composition_bitwise() {
    let mut rng = StdRng::seed_from_u64(4048);
    let pools: Vec<ThreadPool> = [1usize, 2, 4].iter().map(|&t| ThreadPool::new(t)).collect();
    for (m, k, n) in sweep_shapes() {
        // out = a · bᵀ, a: m×k, b: n×k — reference composes an explicit
        // transpose of b with the scalar kernel.
        let a = fill_sparse(&mut rng, m * k);
        let b = fill(&mut rng, n * k);
        let mut bt = vec![0.0; k * n];
        for r in 0..n {
            for c in 0..k {
                bt[c * n + r] = b[r * k + c];
            }
        }
        let mut want = vec![0.0; m * n];
        matmul_scalar_into(&a, &bt, &mut want, m, k, n);
        for pool in &pools {
            let mut got = vec![f64::NAN; m * n];
            matmul_bt_into(pool, &a, &b, &mut got, m, k, n);
            assert_bits(&got, &want, &format!("bt@{} ({m},{k},{n})", pool.threads()));
        }

        // out = aᵀ · b, a: k×m, b: k×n.
        let a2 = fill_sparse(&mut rng, k * m);
        let b2 = fill(&mut rng, k * n);
        let mut at = vec![0.0; m * k];
        for r in 0..k {
            for c in 0..m {
                at[c * k + r] = a2[r * m + c];
            }
        }
        let mut want = vec![0.0; m * n];
        matmul_scalar_into(&at, &b2, &mut want, m, k, n);
        for pool in &pools {
            let mut got = vec![f64::NAN; m * n];
            matmul_at_into(pool, &a2, &b2, &mut got, k, m, n);
            assert_bits(&got, &want, &format!("at@{} ({m},{k},{n})", pool.threads()));
        }
    }
}

#[test]
fn matrix_matmul_rides_the_shared_kernel_bitwise() {
    // `nofis_linalg::Matrix::matmul` delegates to the same kernel layer;
    // pin that wiring so a Matrix-side regression can't drift silently.
    let mut rng = StdRng::seed_from_u64(99);
    for (m, k, n) in [(5, 7, 9), (64, 65, 63), (1, 1, 1)] {
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let ma = Matrix::from_vec(m, k, a.clone()).unwrap();
        let mb = Matrix::from_vec(k, n, b.clone()).unwrap();
        let mc = ma.matmul(&mb).unwrap();
        let mut want = vec![0.0; m * n];
        matmul_scalar_into(&a, &b, &mut want, m, k, n);
        assert_bits(mc.as_slice(), &want, &format!("Matrix ({m},{k},{n})"));
    }
}

/// Central finite difference of `L(a, b) = Σ_ij w_ij (a·b)_ij` with respect
/// to one entry of `a` or `b`, evaluated through the scalar reference.
fn fd_loss(a: &[f64], b: &[f64], w: &[f64], m: usize, k: usize, n: usize) -> f64 {
    let mut out = vec![0.0; m * n];
    matmul_scalar_into(a, b, &mut out, m, k, n);
    out.iter().zip(w).map(|(o, wv)| o * wv).sum()
}

/// FD-checks the analytic gradients computed by the transpose-free
/// backward kernels (`dL/da = w · bᵀ`, `dL/db = aᵀ · w`) for one shape.
fn fd_check_backward(m: usize, k: usize, n: usize, pool: &ThreadPool, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = fill(&mut rng, m * k);
    let b = fill(&mut rng, k * n);
    let w = fill(&mut rng, m * n);

    let mut da = vec![0.0; m * k];
    matmul_bt_into(pool, &w, &b, &mut da, m, n, k);
    let mut db = vec![0.0; k * n];
    matmul_at_into(pool, &a, &w, &mut db, m, k, n);

    let h = 1e-5;
    let check = |buf: &mut Vec<f64>, idx: usize, grad: f64, what: &str, other_is_a: bool| {
        let orig = buf[idx];
        buf[idx] = orig + h;
        let hi = if other_is_a {
            fd_loss(buf, &b, &w, m, k, n)
        } else {
            fd_loss(&a, buf, &w, m, k, n)
        };
        buf[idx] = orig - h;
        let lo = if other_is_a {
            fd_loss(buf, &b, &w, m, k, n)
        } else {
            fd_loss(&a, buf, &w, m, k, n)
        };
        buf[idx] = orig;
        let fd = (hi - lo) / (2.0 * h);
        let tol = 1e-6 * fd.abs().max(1.0);
        assert!(
            (fd - grad).abs() <= tol,
            "{what}[{idx}] @({m},{k},{n}): analytic {grad:e} vs FD {fd:e}"
        );
    };
    // Sample entries across the buffers (every element for small shapes).
    let stride_a = (m * k / 24).max(1);
    let mut ab = a.clone();
    for idx in (0..m * k).step_by(stride_a) {
        check(&mut ab, idx, da[idx], "dL/da", true);
    }
    let stride_b = (k * n / 24).max(1);
    let mut bb = b.clone();
    for idx in (0..k * n).step_by(stride_b) {
        check(&mut bb, idx, db[idx], "dL/db", false);
    }
}

#[test]
fn fd_gradients_through_backward_kernels_straddle_parallel_threshold() {
    let pool = ThreadPool::new(4);
    // Just below the m·k·n = 64·1024 serial-fallback threshold…
    let below = (20usize, 40usize, 40usize);
    assert!(below.0 * below.1 * below.2 < PAR_FLOPS_THRESHOLD);
    fd_check_backward(below.0, below.1, below.2, &pool, 11);
    // …and just above it, so the chunk-ordered parallel path is the one
    // FD-checked (4 threads, deterministic by contract).
    let above = (40usize, 41usize, 40usize);
    assert!(above.0 * above.1 * above.2 >= PAR_FLOPS_THRESHOLD);
    fd_check_backward(above.0, above.1, above.2, &pool, 13);
    // Small sanity shape through the same harness.
    fd_check_backward(3, 5, 4, &pool, 17);
}
