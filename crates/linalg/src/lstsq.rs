//! Linear least squares via the normal equations.
//!
//! Scaled-sigma sampling (SSS) fits the model
//! `ln P(s) = alpha + beta * ln(s) + gamma / s^2` by least squares over a
//! handful of scale points, and the SIR baseline's diagnostics fit small
//! polynomials. The design matrices involved are tiny (tens of rows, 2–4
//! columns), so the normal-equation approach is accurate enough.

use crate::{lu::LuDecomposition, LinalgError, Matrix};

/// Solves `min_x || A x - b ||_2` via the normal equations `AᵀA x = Aᵀb`.
///
/// A small Tikhonov damping `ridge >= 0` may be supplied to stabilize
/// ill-conditioned fits (`ridge = 0` is plain least squares).
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `b.len() != a.rows()`.
/// * [`LinalgError::InvalidArgument`] if `a` has more columns than rows
///   (underdetermined) or `ridge` is negative/non-finite.
/// * [`LinalgError::Singular`] if `AᵀA + ridge·I` is singular.
///
/// # Example
///
/// ```
/// use nofis_linalg::{Matrix, lstsq::lstsq};
///
/// # fn main() -> Result<(), nofis_linalg::LinalgError> {
/// // Fit y = 2x + 1 exactly.
/// let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]])?;
/// let x = lstsq(&a, &[1.0, 3.0, 5.0], 0.0)?;
/// assert!((x[0] - 2.0).abs() < 1e-10 && (x[1] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn lstsq(a: &Matrix, b: &[f64], ridge: f64) -> Result<Vec<f64>, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::shape(format!(
            "lstsq rhs of length {} for design matrix with {} rows",
            b.len(),
            a.rows()
        )));
    }
    if a.cols() > a.rows() {
        return Err(LinalgError::invalid(format!(
            "underdetermined system: {} rows < {} cols",
            a.rows(),
            a.cols()
        )));
    }
    if ridge < 0.0 || !ridge.is_finite() {
        return Err(LinalgError::invalid("ridge must be finite and >= 0"));
    }
    let at = a.transpose();
    let mut ata = at.matmul(a)?;
    for i in 0..ata.rows() {
        ata[(i, i)] += ridge;
    }
    let atb = at.matvec(b)?;
    LuDecomposition::new(&ata)?.solve(&atb)
}

/// Fits a polynomial of degree `degree` to `(x, y)` points, returning
/// coefficients in ascending-power order (`c0 + c1 x + …`).
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `xs` and `ys` differ in length.
/// * [`LinalgError::InvalidArgument`] if fewer than `degree + 1` points.
/// * Propagates solver failures from [`lstsq`].
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Vec<f64>, LinalgError> {
    if xs.len() != ys.len() {
        return Err(LinalgError::shape(format!(
            "polyfit over {} xs but {} ys",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < degree + 1 {
        return Err(LinalgError::invalid(format!(
            "polyfit of degree {degree} needs at least {} points, got {}",
            degree + 1,
            xs.len()
        )));
    }
    let mut design = Matrix::zeros(xs.len(), degree + 1);
    for (i, &x) in xs.iter().enumerate() {
        let mut p = 1.0;
        for j in 0..=degree {
            design[(i, j)] = p;
            p *= x;
        }
    }
    lstsq(&design, ys, 0.0)
}

/// Evaluates a polynomial with ascending-power coefficients at `x`.
pub fn polyval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_is_recovered() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x = lstsq(&a, &[1.0, 2.0, 3.0], 0.0).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_noise_is_averaged() {
        // y = c with observations 1.0 and 3.0 -> least squares gives 2.0.
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let x = lstsq(&a, &[1.0, 3.0], 0.0).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ridge_shrinks_solution() {
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let plain = lstsq(&a, &[2.0, 2.0], 0.0).unwrap()[0];
        let ridged = lstsq(&a, &[2.0, 2.0], 10.0).unwrap()[0];
        assert!(ridged.abs() < plain.abs());
    }

    #[test]
    fn rejects_bad_inputs() {
        let a = Matrix::zeros(2, 3);
        assert!(lstsq(&a, &[0.0, 0.0], 0.0).is_err());
        let a = Matrix::zeros(3, 2);
        assert!(lstsq(&a, &[0.0, 0.0], 0.0).is_err()); // wrong rhs length
        assert!(lstsq(&a, &[0.0; 3], -1.0).is_err());
    }

    #[test]
    fn polyfit_quadratic() {
        let xs: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 - x + 0.5 * x * x).collect();
        let c = polyfit(&xs, &ys, 2).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-9);
        assert!((c[1] + 1.0).abs() < 1e-9);
        assert!((c[2] - 0.5).abs() < 1e-9);
        assert!((polyval(&c, 10.0) - (2.0 - 10.0 + 50.0)).abs() < 1e-7);
    }

    #[test]
    fn polyfit_needs_enough_points() {
        assert!(polyfit(&[0.0, 1.0], &[0.0, 1.0], 2).is_err());
        assert!(polyfit(&[0.0, 1.0], &[0.0], 1).is_err());
    }
}
