use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Used by the AC small-signal circuit solver (admittances `G + jωC`) and the
/// beam-propagation method (complex field envelope).
///
/// # Example
///
/// ```
/// use nofis_linalg::Complex64;
///
/// let j = Complex64::I;
/// let z = Complex64::new(1.0, 0.0) + j * 2.0;
/// assert_eq!(z.im, 2.0);
/// assert!((z.abs() - 5.0_f64.sqrt()).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|^2`, cheaper than [`Complex64::abs`].
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64 {
            re: r * self.im.cos(),
            im: r * self.im.sin(),
        }
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns an infinite value if `z == 0`, mirroring `1.0 / 0.0`.
    pub fn recip(self) -> Self {
        let d = self.abs_sq();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Returns `true` if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z * w^-1
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(2.0, -3.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.5, 2.5);
        let b = Complex64::new(-0.25, 4.0);
        let c = a * b / b;
        assert!((c - a).abs() < 1e-14);
    }

    #[test]
    fn conj_and_abs() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.abs_sq(), 25.0);
        assert_eq!(z.conj().im, -4.0);
        let zz = z * z.conj();
        assert!((zz.re - 25.0).abs() < 1e-12 && zz.im.abs() < 1e-12);
    }

    #[test]
    fn exp_of_imaginary_is_on_unit_circle() {
        let theta = 0.7;
        let z = (Complex64::I * theta).exp();
        assert!((z.abs() - 1.0).abs() < 1e-14);
        assert!((z.arg() - theta).abs() < 1e-14);
    }

    #[test]
    fn recip_roundtrip() {
        let z = Complex64::new(0.3, -1.2);
        let r = z.recip() * z;
        assert!((r - Complex64::ONE).abs() < 1e-14);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex64::new(1.0, -2.0)), "1-2j");
        assert_eq!(format!("{}", Complex64::new(1.0, 2.0)), "1+2j");
    }
}
