use std::fmt;

/// Errors produced by the linear algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes; the payload describes them.
    ShapeMismatch {
        /// Human-readable description of the two shapes and the operation.
        context: String,
    },
    /// A factorization or solve encountered a (numerically) singular matrix.
    Singular {
        /// Pivot index at which singularity was detected.
        pivot: usize,
    },
    /// An argument was structurally invalid (e.g. empty matrix, ragged rows).
    InvalidArgument {
        /// Human-readable description of the violated requirement.
        context: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { context } => {
                write!(f, "shape mismatch: {context}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::InvalidArgument { context } => {
                write!(f, "invalid argument: {context}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

impl LinalgError {
    /// Convenience constructor for [`LinalgError::ShapeMismatch`].
    pub fn shape(context: impl Into<String>) -> Self {
        LinalgError::ShapeMismatch {
            context: context.into(),
        }
    }

    /// Convenience constructor for [`LinalgError::InvalidArgument`].
    pub fn invalid(context: impl Into<String>) -> Self {
        LinalgError::InvalidArgument {
            context: context.into(),
        }
    }
}
