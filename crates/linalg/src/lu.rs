//! LU decomposition with partial pivoting, real and complex.
//!
//! These factorizations back the MNA circuit solver: the DC Newton loop
//! refactorizes the real Jacobian each iteration, while AC analysis solves a
//! complex system `(G + jωC) x = b` per frequency point.

use crate::{CMatrix, Complex64, LinalgError, Matrix};

/// Relative pivot threshold below which a matrix is declared singular.
const PIVOT_EPS: f64 = 1e-13;

/// LU factorization (with partial pivoting) of a real square matrix.
///
/// # Example
///
/// ```
/// use nofis_linalg::{Matrix, lu::LuDecomposition};
///
/// # fn main() -> Result<(), nofis_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12 && (x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Packed L (unit lower, implicit diagonal) and U factors.
    lu: Matrix,
    /// Row permutation applied during pivoting.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot is numerically zero.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::invalid(format!(
                "LU requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let scale = lu.max_abs().max(1.0);

        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at or below row k.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max <= PIVOT_EPS * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= m * ukj;
                }
            }
        }
        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)] // triangular solves read clearest indexed
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::shape(format!(
                "rhs of length {} for a system of dimension {n}",
                b.len()
            )));
        }
        // Apply permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Computes the matrix inverse column by column.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::solve`] (none expected for a
    /// successfully factorized matrix).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e)?;
            e[c] = 0.0;
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
        }
        Ok(inv)
    }
}

/// LU factorization (with partial pivoting) of a complex square matrix.
///
/// The complex analogue of [`LuDecomposition`], used to solve the AC
/// small-signal system `(G + jωC) x = b`.
#[derive(Debug, Clone)]
pub struct CluDecomposition {
    lu: CMatrix,
    perm: Vec<usize>,
}

impl CluDecomposition {
    /// Factorizes a complex square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot is numerically zero.
    pub fn new(a: &CMatrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::invalid(format!(
                "complex LU requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let scale = lu.as_slice().iter().fold(1.0_f64, |m, z| m.max(z.abs()));

        for k in 0..n {
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max <= PIVOT_EPS * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    let delta = m * ukj;
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(CluDecomposition { lu, perm })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` in complex arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)] // triangular solves read clearest indexed
    pub fn solve(&self, b: &[Complex64]) -> Result<Vec<Complex64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::shape(format!(
                "rhs of length {} for a system of dimension {n}",
                b.len()
            )));
        }
        let mut x: Vec<Complex64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x).unwrap();
        ax.iter()
            .zip(b)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_well_conditioned_system() {
        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[2.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(LuDecomposition::new(&a).is_err());
    }

    #[test]
    fn determinant_with_pivoting() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 1.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.det() - (-6.0)).abs() < 1e-12);
    }

    #[test]
    fn inverse_matches_identity() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let eye = Matrix::identity(2);
        assert!((&prod - &eye).max_abs() < 1e-12);
    }

    #[test]
    fn complex_solve_round_trip() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex64::new(1.0, 1.0);
        a[(0, 1)] = Complex64::new(0.0, -2.0);
        a[(1, 0)] = Complex64::new(3.0, 0.0);
        a[(1, 1)] = Complex64::new(1.0, -1.0);
        let b = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 1.0)];
        let lu = CluDecomposition::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (p, q) in ax.iter().zip(&b) {
            assert!((*p - *q).abs() < 1e-12);
        }
    }

    #[test]
    fn complex_detects_singular() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex64::ONE;
        a[(0, 1)] = Complex64::ONE;
        a[(1, 0)] = Complex64::ONE;
        a[(1, 1)] = Complex64::ONE;
        assert!(matches!(
            CluDecomposition::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
