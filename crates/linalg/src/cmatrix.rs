use crate::{Complex64, LinalgError};
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of [`Complex64`] values.
///
/// Used by AC small-signal analysis, where the MNA system matrix is
/// `G + jωC`.
///
/// # Example
///
/// ```
/// use nofis_linalg::{CMatrix, Complex64};
///
/// let mut y = CMatrix::zeros(2, 2);
/// y[(0, 0)] = Complex64::new(1.0, 0.5);
/// assert_eq!(y[(0, 0)].im, 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a complex matrix from separate real and imaginary parts.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the two parts have
    /// different shapes.
    pub fn from_parts(re: &crate::Matrix, im: &crate::Matrix) -> Result<Self, LinalgError> {
        if re.rows() != im.rows() || re.cols() != im.cols() {
            return Err(LinalgError::shape(format!(
                "from_parts of {}x{} and {}x{}",
                re.rows(),
                re.cols(),
                im.rows(),
                im.cols()
            )));
        }
        let data = re
            .as_slice()
            .iter()
            .zip(im.as_slice())
            .map(|(&r, &i)| Complex64::new(r, i))
            .collect();
        Ok(CMatrix {
            rows: re.rows(),
            cols: re.cols(),
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the flat row-major buffer.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[Complex64]) -> Result<Vec<Complex64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::shape(format!(
                "matvec of {}x{} by vector of length {}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        let mut out = vec![Complex64::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex64::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|z| z.is_finite())
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;

    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn identity_matvec_is_identity() {
        let eye = CMatrix::identity(3);
        let v = vec![
            Complex64::new(1.0, 2.0),
            Complex64::new(-1.0, 0.5),
            Complex64::new(0.0, -3.0),
        ];
        assert_eq!(eye.matvec(&v).unwrap(), v);
    }

    #[test]
    fn from_parts_builds_complex_entries() {
        let re = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let im = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let c = CMatrix::from_parts(&re, &im).unwrap();
        assert_eq!(c[(0, 1)], Complex64::new(2.0, 4.0));
    }

    #[test]
    fn from_parts_rejects_mismatch() {
        let re = Matrix::zeros(1, 2);
        let im = Matrix::zeros(2, 1);
        assert!(CMatrix::from_parts(&re, &im).is_err());
    }

    #[test]
    fn matvec_shape_check() {
        let m = CMatrix::zeros(2, 3);
        assert!(m.matvec(&[Complex64::ZERO; 2]).is_err());
    }
}
