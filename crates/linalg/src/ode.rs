//! Fixed-step classic Runge–Kutta (RK4) integration.
//!
//! The oscillator test case integrates a nonlinear two-degree-of-freedom
//! oscillator over a load pulse; RK4 with a fixed step is plenty for the
//! smooth dynamics involved.

use crate::LinalgError;

/// Integrates `dy/dt = f(t, y)` from `t0` to `t1` with `steps` RK4 steps.
///
/// `observer` is invoked after every step with `(t, y)`; use it to track
/// quantities such as the peak displacement without storing the full
/// trajectory.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `steps == 0`, `t1 <= t0`, or
/// `y0` is empty.
///
/// # Example
///
/// ```
/// use nofis_linalg::ode::rk4_integrate;
///
/// # fn main() -> Result<(), nofis_linalg::LinalgError> {
/// // dy/dt = -y  =>  y(1) = e^{-1}
/// let y = rk4_integrate(0.0, 1.0, &[1.0], 100, |_, y, dy| dy[0] = -y[0], |_, _| {})?;
/// assert!((y[0] - (-1.0_f64).exp()).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn rk4_integrate(
    t0: f64,
    t1: f64,
    y0: &[f64],
    steps: usize,
    mut f: impl FnMut(f64, &[f64], &mut [f64]),
    mut observer: impl FnMut(f64, &[f64]),
) -> Result<Vec<f64>, LinalgError> {
    if steps == 0 {
        return Err(LinalgError::invalid("rk4 requires at least one step"));
    }
    if t1 <= t0 || t1.is_nan() || t0.is_nan() {
        return Err(LinalgError::invalid(format!(
            "rk4 requires t1 > t0, got t0={t0}, t1={t1}"
        )));
    }
    if y0.is_empty() {
        return Err(LinalgError::invalid("rk4 state must be non-empty"));
    }

    let n = y0.len();
    let h = (t1 - t0) / steps as f64;
    let mut y = y0.to_vec();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];

    let mut t = t0;
    for _ in 0..steps {
        f(t, &y, &mut k1);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * h * k1[i];
        }
        f(t + 0.5 * h, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * h * k2[i];
        }
        f(t + 0.5 * h, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = y[i] + h * k3[i];
        }
        f(t + h, &tmp, &mut k4);
        for i in 0..n {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t += h;
        observer(t, &y);
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_decay() {
        let y = rk4_integrate(
            0.0,
            2.0,
            &[3.0],
            200,
            |_, y, dy| dy[0] = -0.5 * y[0],
            |_, _| {},
        )
        .unwrap();
        let exact = 3.0 * (-1.0_f64).exp();
        assert!((y[0] - exact).abs() < 1e-9);
    }

    #[test]
    fn harmonic_oscillator_conserves_energy() {
        // y'' = -y as a first-order system; energy = y^2 + v^2 should be ~constant.
        let y = rk4_integrate(
            0.0,
            2.0 * std::f64::consts::PI,
            &[1.0, 0.0],
            1000,
            |_, y, dy| {
                dy[0] = y[1];
                dy[1] = -y[0];
            },
            |_, _| {},
        )
        .unwrap();
        assert!((y[0] - 1.0).abs() < 1e-8);
        assert!(y[1].abs() < 1e-8);
    }

    #[test]
    fn observer_sees_every_step() {
        let mut count = 0;
        rk4_integrate(
            0.0,
            1.0,
            &[0.0],
            17,
            |_, _, dy| dy[0] = 1.0,
            |_, _| count += 1,
        )
        .unwrap();
        assert_eq!(count, 17);
    }

    #[test]
    fn observer_can_track_peak() {
        let mut peak = f64::NEG_INFINITY;
        rk4_integrate(
            0.0,
            std::f64::consts::PI,
            &[0.0, 1.0],
            500,
            |_, y, dy| {
                dy[0] = y[1];
                dy[1] = -y[0];
            },
            |_, y| peak = peak.max(y[0]),
        )
        .unwrap();
        assert!((peak - 1.0).abs() < 1e-5);
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(rk4_integrate(0.0, 1.0, &[0.0], 0, |_, _, _| {}, |_, _| {}).is_err());
        assert!(rk4_integrate(1.0, 0.0, &[0.0], 10, |_, _, _| {}, |_, _| {}).is_err());
        assert!(rk4_integrate(0.0, 1.0, &[], 10, |_, _, _| {}, |_, _| {}).is_err());
    }
}
