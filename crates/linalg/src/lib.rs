//! Dense real and complex linear algebra substrate for the NOFIS reproduction.
//!
//! This crate provides exactly the numerical kernels the rest of the
//! workspace needs — no more, no less:
//!
//! * [`Matrix`] — dense, row-major `f64` matrices with the usual algebra.
//! * [`Complex64`] / [`CMatrix`] — complex scalars and matrices for AC
//!   small-signal circuit analysis and the photonic beam-propagation method.
//! * [`lu::LuDecomposition`] / [`lu::CluDecomposition`] — LU with partial
//!   pivoting (real and complex), used by the MNA circuit solver.
//! * [`tridiag::solve_complex_tridiagonal`] — Thomas algorithm, used by the
//!   Crank–Nicolson BPM stepper.
//! * [`lstsq::lstsq`] — linear least squares, used by scaled-sigma sampling's
//!   model regression.
//! * [`ode::rk4_integrate`] — classic Runge–Kutta, used by the oscillator
//!   test case.
//!
//! # Example
//!
//! ```
//! use nofis_linalg::{Matrix, lu::LuDecomposition};
//!
//! # fn main() -> Result<(), nofis_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuDecomposition::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod cmatrix;
mod complex;
mod error;
mod matrix;

pub mod lstsq;
pub mod lu;
pub mod ode;
pub mod tridiag;

pub use cmatrix::CMatrix;
pub use complex::Complex64;
pub use error::LinalgError;
pub use matrix::Matrix;
