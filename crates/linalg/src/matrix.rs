use crate::LinalgError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse real-matrix type of the workspace: the MNA
/// circuit assembler builds conductance matrices with it, the least-squares
/// helper regresses over it, and tests use it as the reference
/// implementation for the autograd tensor ops.
///
/// # Example
///
/// ```
/// use nofis_linalg::Matrix;
///
/// # fn main() -> Result<(), nofis_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c[(1, 0)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `rows` is empty or the
    /// rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::invalid(
                "from_rows requires a non-empty matrix",
            ));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::invalid(format!(
                    "row {i} has length {} but row 0 has length {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::invalid(format!(
                "buffer of length {} cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the flat row-major data buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the flat row-major data buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Large products are row-partitioned across the process-wide
    /// [`nofis_parallel::global`] pool; small ones stay serial. Either way
    /// the result is bitwise identical to the serial kernel (see the
    /// determinism contract in `nofis_parallel`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.matmul_with(rhs, nofis_parallel::global())
    }

    /// Matrix product `self * rhs` executed on an explicit pool.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul_with(
        &self,
        rhs: &Matrix,
        pool: &nofis_parallel::ThreadPool,
    ) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::shape(format!(
                "matmul of {}x{} by {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        nofis_parallel::kernels::matmul_into(
            pool,
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::shape(format!(
                "matvec of {}x{} by vector of length {}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (infinity norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix addition requires equal shapes"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix subtraction requires equal shapes"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidArgument { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0, 2.0], &[0.5, 3.0, -4.0]]).unwrap();
        let v = [2.0, 1.0, -1.0];
        let got = a.matvec(&v).unwrap();
        assert_eq!(got, vec![-1.0, 8.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, -1.0]]).unwrap();
        assert_eq!((&a + &b).as_slice(), &[4.0, 1.0]);
        assert_eq!((&a - &b).as_slice(), &[-2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.max_abs(), 4.0);
        assert!(a.is_finite());
        let b = Matrix::from_rows(&[&[f64::NAN]]).unwrap();
        assert!(!b.is_finite());
    }

    #[test]
    fn row_access() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1), &[3.0, 4.0]);
        a.row_mut(0)[1] = 9.0;
        assert_eq!(a[(0, 1)], 9.0);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }
}
